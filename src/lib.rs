//! # multiem
//!
//! A Rust reproduction of **MultiEM: Efficient and Effective Unsupervised
//! Multi-Table Entity Matching** (ICDE 2024).
//!
//! This facade crate re-exports the whole workspace so applications can depend
//! on a single crate:
//!
//! * [`core`] — the MultiEM pipeline (enhanced entity representation,
//!   table-wise hierarchical merging, density-based pruning);
//! * [`table`] — the relational data model (schemas, records, datasets,
//!   ground truth, CSV I/O);
//! * [`embed`] — entity serialization and the embedding backend;
//! * [`ann`] — brute-force and HNSW nearest-neighbour indexes;
//! * [`cluster`] — union-find, DBSCAN, HAC and affinity propagation;
//! * [`datagen`] — synthetic multi-source benchmark datasets;
//! * [`eval`] — tuple / pair metrics and profiling;
//! * [`baselines`] — the comparison methods of the paper's evaluation;
//! * [`online`] — the incremental [`EntityStore`](online::EntityStore) for
//!   streaming ingestion, online matching and snapshot persistence;
//! * [`serve`] — the sharded, WAL-durable HTTP serving layer
//!   ([`MatchServer`](serve::MatchServer)) over the online store.
//!
//! ## Quickstart
//!
//! ```
//! use multiem::prelude::*;
//!
//! // Generate a small multi-source dataset (an analogue of the paper's Geo benchmark).
//! let data = multiem::datagen::benchmark_dataset("geo", 0.02).expect("known preset");
//!
//! // Run the unsupervised pipeline.
//! let pipeline = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default());
//! let output = pipeline.run(&data.dataset).expect("pipeline runs");
//!
//! // Score against the generator's ground truth.
//! let report = evaluate(&output.tuples, data.dataset.ground_truth().unwrap());
//! assert!(report.pair.f1 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use multiem_ann as ann;
pub use multiem_baselines as baselines;
pub use multiem_cluster as cluster;
pub use multiem_core as core;
pub use multiem_datagen as datagen;
pub use multiem_embed as embed;
pub use multiem_eval as eval;
pub use multiem_online as online;
pub use multiem_serve as serve;
pub use multiem_table as table;

/// Commonly used items, importable with `use multiem::prelude::*`.
pub mod prelude {
    pub use multiem_core::{MultiEm, MultiEmConfig, MultiEmOutput};
    pub use multiem_datagen::{benchmark_dataset, BenchmarkDataset};
    pub use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};
    pub use multiem_eval::{evaluate, EvaluationReport, Metrics};
    pub use multiem_online::{EntityStore, OnlineConfig, SnapshotFormat};
    pub use multiem_serve::{MatchServer, ServeConfig, ShardedEntityStore};
    pub use multiem_table::{
        Dataset, EntityId, GroundTruth, MatchTuple, Record, Schema, Table, Value,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let data = crate::datagen::benchmark_dataset("geo", 0.02).unwrap();
        let pipeline = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default());
        let output = pipeline.run(&data.dataset).unwrap();
        let report = evaluate(&output.tuples, data.dataset.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.3);
    }
}
