//! Integration tests comparing MultiEM with the baseline methods on shared data.

use multiem::baselines::{
    AlmserGb, AutoFjMatcher, ChainExtension, EmbeddingThresholdMatcher, MatchContext, MscdHac,
    MultiTableMatcher, PairwiseExtension, SupervisedMatcher,
};
use multiem::eval::{sample_labeled_pairs, SamplingConfig};
use multiem::prelude::*;

fn geo_data(scale: f64) -> BenchmarkDataset {
    multiem::datagen::benchmark_dataset("geo", scale).expect("preset exists")
}

#[test]
fn every_baseline_runs_and_produces_valid_tuples() {
    let data = geo_data(0.05);
    let dataset = &data.dataset;
    let encoder = HashedLexicalEncoder::default();
    let labeled = sample_labeled_pairs(dataset, &SamplingConfig::default());
    let ctx = MatchContext::build(dataset, &encoder, labeled);

    let mut ditto = SupervisedMatcher::ditto_like();
    ditto.train(&ctx);
    let methods: Vec<Box<dyn MultiTableMatcher>> = vec![
        Box::new(PairwiseExtension::new(EmbeddingThresholdMatcher::default())),
        Box::new(ChainExtension::new(EmbeddingThresholdMatcher::default())),
        Box::new(PairwiseExtension::new(AutoFjMatcher::default())),
        Box::new(ChainExtension::new(AutoFjMatcher::default())),
        Box::new(PairwiseExtension::new(ditto)),
        Box::new(AlmserGb::default()),
        Box::new(MscdHac::default()),
    ];
    for method in &methods {
        let tuples = method.run(&ctx);
        for t in &tuples {
            assert!(t.len() >= 2, "{} produced a singleton tuple", method.name());
            for &id in t.members() {
                assert!(
                    dataset.record(id).is_ok(),
                    "{} referenced a missing record",
                    method.name()
                );
            }
        }
        // Every method should find at least some structure on light-noise geo data.
        assert!(!tuples.is_empty(), "{} found nothing", method.name());
    }
}

#[test]
fn multiem_outperforms_unsupervised_pairwise_and_chain_extensions() {
    // The headline comparison of Table IV, on a small Music-20 analogue:
    // MultiEM (with its per-dataset grid over `m`, as in Section IV-A) beats
    // the pairwise / chain extensions of the unsupervised two-table matchers,
    // which embed every attribute (no EER) and suffer transitive conflicts.
    let data = multiem::datagen::benchmark_dataset("music-20", 0.03).expect("preset exists");
    let dataset = &data.dataset;
    let gt = dataset.ground_truth().expect("ground truth");
    let encoder = HashedLexicalEncoder::default();
    let ctx = MatchContext::build(dataset, &encoder, Vec::new());

    // Grid-search the distance threshold as the paper does.
    let multiem_best = [0.2f32, 0.35, 0.5]
        .iter()
        .map(|&m| {
            let pipeline = MultiEm::new(
                MultiEmConfig {
                    m,
                    ..MultiEmConfig::default()
                },
                HashedLexicalEncoder::default(),
            );
            let out = pipeline.run(dataset).expect("pipeline runs");
            evaluate(&out.tuples, gt).tuple.f1
        })
        .fold(0.0f64, f64::max);

    let pairwise = evaluate(
        &PairwiseExtension::new(EmbeddingThresholdMatcher::default()).run(&ctx),
        gt,
    );
    let chain = evaluate(
        &ChainExtension::new(EmbeddingThresholdMatcher::default()).run(&ctx),
        gt,
    );

    // The embedding mutual-NN extensions reuse MultiEM's own matching
    // primitive, so on small, lightly-corrupted data they can tie with the
    // full pipeline; MultiEM must never be meaningfully worse than them.
    assert!(
        multiem_best >= pairwise.tuple.f1 - 0.02,
        "MultiEM {multiem_best:.3} vs pairwise {:.3}",
        pairwise.tuple.f1
    );
    assert!(
        multiem_best >= chain.tuple.f1 - 0.02,
        "MultiEM {multiem_best:.3} vs chain {:.3}",
        chain.tuple.f1
    );

    // On the Geo analogue (short place names, numeric noise attributes) the
    // paper's gap between MultiEM and the unsupervised AutoFJ baseline
    // reproduces clearly: check it there.
    let geo = geo_data(0.1);
    let geo_gt = geo.dataset.ground_truth().expect("ground truth");
    let geo_ctx = MatchContext::build(&geo.dataset, &encoder, Vec::new());
    let geo_multiem = [0.2f32, 0.35, 0.5]
        .iter()
        .map(|&m| {
            let out = MultiEm::new(
                MultiEmConfig {
                    m,
                    ..MultiEmConfig::default()
                },
                HashedLexicalEncoder::default(),
            )
            .run(&geo.dataset)
            .expect("pipeline runs");
            evaluate(&out.tuples, geo_gt).tuple.f1
        })
        .fold(0.0f64, f64::max);
    let geo_autofj = evaluate(
        &PairwiseExtension::new(AutoFjMatcher::default()).run(&geo_ctx),
        geo_gt,
    );
    assert!(
        geo_multiem > geo_autofj.tuple.f1 + 0.1,
        "MultiEM {geo_multiem:.3} vs AutoFJ (pw) {:.3} on geo",
        geo_autofj.tuple.f1
    );
}

#[test]
fn autofj_is_precision_oriented() {
    // Table IV shows AutoFJ with very high precision and low recall on Geo.
    let data = geo_data(0.1);
    let dataset = &data.dataset;
    let encoder = HashedLexicalEncoder::default();
    let ctx = MatchContext::build(dataset, &encoder, Vec::new());
    let report = evaluate(
        &PairwiseExtension::new(AutoFjMatcher::default()).run(&ctx),
        dataset.ground_truth().expect("ground truth"),
    );
    assert!(
        report.pair.precision > 0.7,
        "AutoFJ pair precision {:?}",
        report.pair
    );
}

#[test]
fn supervised_baseline_benefits_from_labels() {
    let data = geo_data(0.08);
    let dataset = &data.dataset;
    let gt = dataset.ground_truth().expect("ground truth");
    let encoder = HashedLexicalEncoder::default();

    // Without labels the matcher is untrained (predicts indifferently); with
    // the 5 % sample it should do clearly better.
    let ctx_unlabeled = MatchContext::build(dataset, &encoder, Vec::new());
    let untrained = SupervisedMatcher::ditto_like();
    let untrained_report = evaluate(&PairwiseExtension::new(untrained).run(&ctx_unlabeled), gt);

    let labeled = sample_labeled_pairs(dataset, &SamplingConfig::default());
    let ctx_labeled = MatchContext::build(dataset, &encoder, labeled);
    let mut trained = SupervisedMatcher::ditto_like();
    trained.train(&ctx_labeled);
    let trained_report = evaluate(&PairwiseExtension::new(trained).run(&ctx_labeled), gt);

    assert!(
        trained_report.pair.f1 >= untrained_report.pair.f1 - 1e-9,
        "training hurt the supervised baseline: {:?} vs {:?}",
        trained_report.pair,
        untrained_report.pair
    );
    // The paper observes that for the supervised two-table baselines "the
    // recall substantially exceeds the precision on all datasets"; the
    // stand-in reproduces exactly that profile.
    assert!(
        trained_report.pair.recall > 0.7,
        "trained baseline recall too low: {:?}",
        trained_report.pair
    );
    assert!(
        trained_report.pair.recall > trained_report.pair.precision,
        "expected recall >> precision: {:?}",
        trained_report.pair
    );
}

#[test]
fn mscd_hac_works_but_only_at_small_scale() {
    // MSCD-HAC is cubic; we only ever run it on small inputs, mirroring the
    // paper where it finishes solely on Geo.
    let data = geo_data(0.05);
    let dataset = &data.dataset;
    let encoder = HashedLexicalEncoder::default();
    let ctx = MatchContext::build(dataset, &encoder, Vec::new());
    let report = evaluate(
        &MscdHac::default().run(&ctx),
        dataset.ground_truth().unwrap(),
    );
    assert!(report.pair.f1 > 0.4, "MSCD-HAC pair-F1 {:?}", report.pair);
}
