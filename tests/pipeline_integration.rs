//! Integration tests spanning datagen → core pipeline → eval.

use multiem::core::{IndexBackend, MultiEmError};
use multiem::prelude::*;

fn run(dataset: &Dataset, config: MultiEmConfig) -> (MultiEmOutput, EvaluationReport) {
    let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
    let output = pipeline.run(dataset).expect("pipeline runs");
    let report = evaluate(
        &output.tuples,
        dataset.ground_truth().expect("ground truth"),
    );
    (output, report)
}

#[test]
fn multiem_is_effective_on_every_benchmark_preset() {
    // Small scales keep the test fast; thresholds are deliberately loose for
    // the noisy shopee analogue (the paper itself reports F1 ≈ 26 there).
    let cases = [
        ("geo", 0.08, 0.35, 0.55),
        ("music-20", 0.02, 0.35, 0.55),
        ("person", 0.0004, 0.2, 0.5),
        ("shopee", 0.02, 0.5, 0.15),
    ];
    for (name, scale, m, min_pair_f1) in cases {
        let data = multiem::datagen::benchmark_dataset(name, scale).expect("preset exists");
        let config = MultiEmConfig {
            m,
            ..MultiEmConfig::default()
        };
        let (_output, report) = run(&data.dataset, config);
        assert!(
            report.pair.f1 >= min_pair_f1,
            "{name}: pair-F1 {:.3} below {min_pair_f1}",
            report.pair.f1
        );
    }
}

#[test]
fn ablations_degrade_music_quality() {
    // Table IV: removing EER or DP lowers F1 on the music datasets.
    let data = multiem::datagen::benchmark_dataset("music-20", 0.03).expect("preset exists");
    let base = MultiEmConfig {
        m: 0.35,
        ..MultiEmConfig::default()
    };
    let (_, full) = run(&data.dataset, base.clone());
    let (_, no_eer) = run(&data.dataset, base.clone().without_attribute_selection());
    let (_, no_dp) = run(&data.dataset, base.clone().without_pruning());
    assert!(
        full.tuple.f1 >= no_eer.tuple.f1 - 1e-9,
        "EER should not hurt: full {:.3} vs w/o EER {:.3}",
        full.tuple.f1,
        no_eer.tuple.f1
    );
    assert!(
        full.tuple.f1 >= no_dp.tuple.f1 - 1e-9,
        "DP should not hurt: full {:.3} vs w/o DP {:.3}",
        full.tuple.f1,
        no_dp.tuple.f1
    );
    // At least one of the two modules must contribute measurably on this data.
    assert!(
        full.tuple.f1 > no_eer.tuple.f1 + 1e-6 || full.tuple.f1 > no_dp.tuple.f1 + 1e-6,
        "ablations match full pipeline exactly; modules contribute nothing"
    );
}

#[test]
fn parallel_mode_reproduces_sequential_output_on_all_domains() {
    for (name, scale) in [("geo", 0.05), ("music-20", 0.01), ("shopee", 0.01)] {
        let data = multiem::datagen::benchmark_dataset(name, scale).expect("preset exists");
        let seq = MultiEmConfig {
            m: 0.35,
            parallel: false,
            ..MultiEmConfig::default()
        };
        let par = MultiEmConfig {
            m: 0.35,
            parallel: true,
            ..MultiEmConfig::default()
        };
        let (mut out_seq, _) = run(&data.dataset, seq);
        let (mut out_par, _) = run(&data.dataset, par);
        out_seq.tuples.sort();
        out_par.tuples.sort();
        assert_eq!(out_seq.tuples, out_par.tuples, "parallel differs on {name}");
    }
}

#[test]
fn hnsw_backend_is_close_to_bruteforce_quality() {
    let data = multiem::datagen::benchmark_dataset("music-20", 0.02).expect("preset exists");
    let brute = MultiEmConfig {
        m: 0.35,
        index_backend: IndexBackend::BruteForce,
        ..MultiEmConfig::default()
    };
    let hnsw = MultiEmConfig {
        m: 0.35,
        index_backend: IndexBackend::Hnsw,
        ..MultiEmConfig::default()
    };
    let (_, exact) = run(&data.dataset, brute);
    let (_, approx) = run(&data.dataset, hnsw);
    assert!(
        (exact.pair.f1 - approx.pair.f1).abs() < 0.08,
        "HNSW pair-F1 {:.3} deviates too far from exact {:.3}",
        approx.pair.f1,
        exact.pair.f1
    );
}

#[test]
fn predictions_respect_dataset_bounds_and_source_diversity() {
    let data = multiem::datagen::benchmark_dataset("geo", 0.08).expect("preset exists");
    let (output, _) = run(&data.dataset, MultiEmConfig::default());
    for tuple in &output.tuples {
        assert!(tuple.len() >= 2);
        assert!(
            tuple.len() <= data.dataset.num_sources(),
            "tuple larger than source count"
        );
        for &id in tuple.members() {
            assert!(
                data.dataset.record(id).is_ok(),
                "prediction references missing record"
            );
        }
    }
}

#[test]
fn merge_order_insensitivity_figure_6b() {
    // Figure 6(b): F1 varies only slightly with the random merge order.
    let data = multiem::datagen::benchmark_dataset("music-20", 0.02).expect("preset exists");
    let mut f1s = Vec::new();
    for seed in [0u64, 1, 2, 3] {
        let config = MultiEmConfig {
            m: 0.35,
            merge_seed: seed,
            ..MultiEmConfig::default()
        };
        let (_, report) = run(&data.dataset, config);
        f1s.push(report.tuple.f1);
    }
    let max = f1s.iter().cloned().fold(f64::MIN, f64::max);
    let min = f1s.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.12, "merge order changes F1 too much: {f1s:?}");
}

#[test]
fn invalid_inputs_are_rejected_cleanly() {
    let schema = Schema::new(["a"]).shared();
    let empty = Dataset::new("empty", schema.clone());
    let pipeline = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default());
    assert!(matches!(
        pipeline.run(&empty),
        Err(MultiEmError::EmptyDataset)
    ));

    let bad_config = MultiEmConfig {
        sample_ratio: 0.0,
        ..MultiEmConfig::default()
    };
    let data = multiem::datagen::benchmark_dataset("geo", 0.02).expect("preset exists");
    let bad = MultiEm::new(bad_config, HashedLexicalEncoder::default());
    assert!(matches!(
        bad.run(&data.dataset),
        Err(MultiEmError::InvalidConfig(_))
    ));
}
