//! Batch / online equivalence: ingesting a dataset table-by-table through the
//! streaming [`EntityStore`] must reach (within tolerance) the same matching
//! quality as one batch `MultiEm::run` over the full dataset.
//!
//! The two paths are not bit-identical by construction — hierarchical merging
//! pairs whole tables in a seeded random order while the online store merges
//! record-at-a-time against current representatives, and pruning cadence
//! differs — so the property is stated the way the paper compares methods:
//! pair-F1 against ground truth, required to agree within 2 points, across
//! several seeds and domains.

use multiem::eval::evaluate;
use multiem::online::{EntityStore, OnlineConfig};
use multiem::prelude::*;
use multiem_datagen::{CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator};

fn dataset(domain: Domain, seed: u64) -> Dataset {
    let factory = domain.factory();
    let corruptor = Corruptor::new(CorruptionConfig::light());
    let cfg = GeneratorConfig {
        name: format!("equiv-{seed}"),
        num_sources: 5,
        num_tuples: 50,
        num_singletons: 25,
        min_tuple_size: 2,
        max_tuple_size: 4,
        seed,
    };
    MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
}

fn batch_config() -> MultiEmConfig {
    // Attribute selection is disabled on both sides: the batch pipeline runs
    // Algorithm 1 over the full dataset while the online store would run it
    // over its first batch only, which is a deliberate cadence difference the
    // equivalence property should not depend on.
    MultiEmConfig {
        m: 0.35,
        attribute_selection: false,
        ..MultiEmConfig::default()
    }
}

fn run_batch(ds: &Dataset) -> f64 {
    let pipeline = MultiEm::new(batch_config(), HashedLexicalEncoder::default());
    let output = pipeline.run(ds).unwrap();
    evaluate(&output.tuples, ds.ground_truth().unwrap()).pair.f1
}

fn run_online(ds: &Dataset) -> f64 {
    let config = OnlineConfig::new(batch_config()).with_all_attributes();
    let mut store = EntityStore::new(config, HashedLexicalEncoder::default());
    for table in ds.tables() {
        store.ingest_batch(table).unwrap();
    }
    // Final pruning pass, the online counterpart of the batch phase P.
    store.refresh();
    evaluate(&store.tuples(), ds.ground_truth().unwrap())
        .pair
        .f1
}

#[test]
fn online_ingest_matches_batch_quality_music() {
    for seed in [1u64, 7, 23] {
        let ds = dataset(Domain::Music, seed);
        let batch = run_batch(&ds);
        let online = run_online(&ds);
        assert!(
            batch > 0.5,
            "batch baseline degenerate (seed {seed}): {batch}"
        );
        assert!(
            (batch - online).abs() <= 0.02,
            "pair-F1 diverged on music seed {seed}: batch {batch:.4} vs online {online:.4}"
        );
    }
}

#[test]
fn online_ingest_matches_batch_quality_geo() {
    let ds = dataset(Domain::Geo, 11);
    let batch = run_batch(&ds);
    let online = run_online(&ds);
    assert!(batch > 0.5, "batch baseline degenerate: {batch}");
    assert!(
        (batch - online).abs() <= 0.02,
        "pair-F1 diverged on geo: batch {batch:.4} vs online {online:.4}"
    );
}

/// Arrival order must not matter much either: ingesting the tables in
/// reverse order stays within the same tolerance.
#[test]
fn online_quality_is_order_insensitive() {
    let ds = dataset(Domain::Music, 13);
    let forward = run_online(&ds);

    let config = OnlineConfig::new(batch_config()).with_all_attributes();
    let mut store = EntityStore::new(config, HashedLexicalEncoder::default());
    for table in ds.tables().iter().rev() {
        store.ingest_batch(table).unwrap();
    }
    store.refresh();
    // Reversed ingestion renumbers sources, so compare via ground truth after
    // mapping: the generator's ground truth uses original source ids, while
    // the store assigned 0..S in reverse. Remap store tuples back.
    let sources = ds.num_sources() as u32;
    let remapped: Vec<MatchTuple> = store
        .tuples()
        .into_iter()
        .map(|t| {
            MatchTuple::new(
                t.members()
                    .iter()
                    .map(|id| EntityId::new(sources - 1 - id.source, id.row)),
            )
        })
        .collect();
    let reversed = evaluate(&remapped, ds.ground_truth().unwrap()).pair.f1;
    assert!(
        (forward - reversed).abs() <= 0.02,
        "pair-F1 order-sensitive: forward {forward:.4} vs reversed {reversed:.4}"
    );
}

/// The spill-to-disk record store must be invisible to matching: ingesting
/// through a disk-backed store produces exactly the tuples of the resident
/// store (hence, transitively, batch-equivalent pair-F1 within the same 2
/// points), while keeping less resident than it spills.
#[test]
fn disk_storage_backend_preserves_online_quality() {
    let dir = std::env::temp_dir().join(format!("multiem-equiv-disk-{}", std::process::id()));
    let ds = dataset(Domain::Music, 7);

    let mut disk_cfg = OnlineConfig::new(batch_config())
        .with_all_attributes()
        .with_disk_storage(dir.display().to_string());
    if let multiem::online::StorageConfig::Disk(d) = &mut disk_cfg.storage {
        d.segment_records = 32; // force plenty of sealed segments
        d.cache_records = 16;
    }
    let mut on_disk = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
    let config = OnlineConfig::new(batch_config()).with_all_attributes();
    let mut in_mem = EntityStore::new(config, HashedLexicalEncoder::default());
    for table in ds.tables() {
        on_disk.ingest_batch(table).unwrap();
        in_mem.ingest_batch(table).unwrap();
    }
    on_disk.refresh();
    in_mem.refresh();

    let mut a = on_disk.tuples();
    let mut b = in_mem.tuples();
    a.sort();
    b.sort();
    assert_eq!(a, b, "storage backend must not change matching");

    let batch = run_batch(&ds);
    let disk_f1 = evaluate(&on_disk.tuples(), ds.ground_truth().unwrap())
        .pair
        .f1;
    assert!(
        (batch - disk_f1).abs() <= 0.02,
        "pair-F1 diverged with disk storage: batch {batch:.4} vs disk {disk_f1:.4}"
    );

    let storage = on_disk.storage_stats();
    assert!(storage.spilled_records > 0, "test must exercise spilling");
    assert!(
        storage.resident_records < storage.records,
        "disk backend keeps a bounded resident set: {storage:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Snapshot/restore round-trip in the middle of a streaming run: the restored
/// store finishes ingestion and lands on identical tuples.
#[test]
fn snapshot_mid_stream_then_finish() {
    let ds = dataset(Domain::Music, 5);
    let config = OnlineConfig::new(batch_config()).with_all_attributes();
    let mut store = EntityStore::new(config, HashedLexicalEncoder::default());

    let tables = ds.tables();
    let half = tables.len() / 2;
    for table in &tables[..half] {
        store.ingest_batch(table).unwrap();
    }

    let snapshot = store.snapshot_json().unwrap();
    let mut restored = EntityStore::restore_json(&snapshot, HashedLexicalEncoder::default())
        .expect("snapshot restores");

    for table in &tables[half..] {
        store.ingest_batch(table).unwrap();
        restored.ingest_batch(table).unwrap();
    }
    store.refresh();
    restored.refresh();

    let mut a = store.tuples();
    let mut b = restored.tuples();
    a.sort();
    b.sort();
    assert_eq!(a, b, "restored store must continue identically");
    assert_eq!(store.stats(), restored.stats());
}
