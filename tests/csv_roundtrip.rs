//! Integration test: persist a generated dataset as CSV, reload it, and verify
//! the pipeline produces equivalent results on the reloaded copy.

use multiem::prelude::*;
use multiem::table::csv_io;

#[test]
fn csv_roundtrip_preserves_pipeline_results() {
    let data = multiem::datagen::benchmark_dataset("music-20", 0.01).expect("preset exists");
    let dataset = &data.dataset;

    // Write to a temporary directory.
    let dir = std::env::temp_dir().join(format!("multiem_it_csv_{}", std::process::id()));
    csv_io::write_dataset_to_dir(dataset, &dir).expect("write dataset");

    // Reload the tables and the ground truth.
    let paths: Vec<_> = (0..dataset.num_sources())
        .map(|i| dir.join(format!("source_{i}.csv")))
        .collect();
    let mut reloaded = csv_io::read_dataset_from_paths("music-20-reloaded", &paths).expect("read");
    let gt_file = std::fs::File::open(dir.join("ground_truth.csv")).expect("gt file");
    let gt = csv_io::read_ground_truth_from_reader(gt_file).expect("read gt");
    reloaded.set_ground_truth(gt);

    assert_eq!(reloaded.num_sources(), dataset.num_sources());
    assert_eq!(reloaded.total_entities(), dataset.total_entities());
    assert_eq!(
        reloaded.ground_truth().unwrap().pairs(),
        dataset.ground_truth().unwrap().pairs()
    );

    // The pipeline should behave the same on the reloaded dataset.
    let config = MultiEmConfig {
        m: 0.35,
        ..MultiEmConfig::default()
    };
    let run = |ds: &Dataset| {
        let out = MultiEm::new(config.clone(), HashedLexicalEncoder::default())
            .run(ds)
            .expect("pipeline runs");
        let mut tuples = out.tuples;
        tuples.sort();
        tuples
    };
    let original_tuples = run(dataset);
    let reloaded_tuples = run(&reloaded);

    // CSV round-trips numbers through text, which can change float rendering;
    // allow a tiny difference in the prediction sets but require near-identity.
    let set: std::collections::BTreeSet<_> = original_tuples.iter().collect();
    let overlap = reloaded_tuples.iter().filter(|t| set.contains(t)).count();
    let denom = original_tuples.len().max(reloaded_tuples.len()).max(1);
    assert!(
        overlap as f64 / denom as f64 > 0.95,
        "only {overlap} of {denom} tuples survived the CSV round trip"
    );

    std::fs::remove_dir_all(&dir).ok();
}
