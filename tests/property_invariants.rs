//! Property-based tests of core invariants.
//!
//! The crates.io `proptest` crate is not available offline, so these
//! properties are exercised with seeded random generation: every case draws
//! many random inputs from a deterministic RNG and asserts the invariant for
//! each. Failures print the offending case so they stay reproducible.

use multiem::ann::{mutual_top_k, BruteForceIndex, Metric, VectorIndex};
use multiem::cluster::{classify_points, DbscanConfig, PointClass, UnionFind};
use multiem::embed::{cosine_similarity, EmbeddingModel, HashedLexicalEncoder};
use multiem::eval::Metrics;
use multiem::prelude::*;
use multiem::table::{serialize_record, serialize_record_projected, SerializeOptions};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 64;

fn arb_text(rng: &mut ChaCha8Rng) -> String {
    let words = rng.gen_range(0usize..8);
    (0..words)
        .map(|_| {
            let len = rng.gen_range(1usize..=8);
            (0..len)
                .map(|_| {
                    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
                    alphabet[rng.gen_range(0..alphabet.len())] as char
                })
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn arb_word(rng: &mut ChaCha8Rng, min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn arb_vec(rng: &mut ChaCha8Rng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

/// The encoder is deterministic and produces unit-norm (or zero) vectors.
#[test]
fn encoder_is_deterministic_and_normalised() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0C0);
    let enc = HashedLexicalEncoder::with_dim(96);
    for _ in 0..CASES {
        let text = arb_text(&mut rng);
        let a = enc.encode(&text);
        let b = enc.encode(&text);
        assert_eq!(a, b, "non-deterministic encoding for {text:?}");
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(
            norm < 1e-6 || (norm - 1.0).abs() < 1e-3,
            "bad norm {norm} for {text:?}"
        );
    }
}

/// Cosine similarity of any two encodings stays in [-1, 1].
#[test]
fn encoder_similarity_is_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51B1);
    let enc = HashedLexicalEncoder::with_dim(64);
    for _ in 0..CASES {
        let a = arb_text(&mut rng);
        let b = arb_text(&mut rng);
        let sim = cosine_similarity(&enc.encode(&a), &enc.encode(&b));
        assert!(
            (-1.0..=1.0).contains(&sim),
            "similarity {sim} out of range for {a:?} / {b:?}"
        );
    }
}

/// Entity serialization with a projected attribute list only ever produces
/// tokens that the full serialization also contains.
#[test]
fn projected_serialization_is_a_subset() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E51);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..6);
        let values: Vec<String> = (0..n).map(|_| arb_text(&mut rng)).collect();
        let record = Record::from_texts(values.clone());
        let opts = SerializeOptions {
            max_tokens: None,
            ..SerializeOptions::default()
        };
        let full = serialize_record(&record, &opts);
        let full_tokens: std::collections::HashSet<&str> = full.split_whitespace().collect();
        let attrs: Vec<usize> = (0..values.len()).step_by(2).collect();
        let projected = serialize_record_projected(&record, &attrs, &opts);
        for tok in projected.split_whitespace() {
            assert!(
                full_tokens.contains(tok),
                "token {tok} missing from full serialization"
            );
        }
    }
}

/// Mutual top-K matches are symmetric, within-threshold and unique per
/// (left, right) pair.
#[test]
fn mutual_top_k_respects_threshold_and_mutuality() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x707B);
    for _ in 0..CASES {
        let nl = rng.gen_range(1usize..12);
        let nr = rng.gen_range(1usize..12);
        let left: Vec<Vec<f32>> = (0..nl).map(|_| arb_vec(&mut rng, 4)).collect();
        let right: Vec<Vec<f32>> = (0..nr).map(|_| arb_vec(&mut rng, 4)).collect();
        let k = rng.gen_range(1usize..3);
        let threshold = rng.gen_range(0.1f32..5.0);
        let li =
            BruteForceIndex::from_vectors(4, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(4, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let lrefs: Vec<&[f32]> = left.iter().map(|v| v.as_slice()).collect();
        let rrefs: Vec<&[f32]> = right.iter().map(|v| v.as_slice()).collect();
        let matches = mutual_top_k(&li, &ri, &lrefs, &rrefs, k, threshold);
        let mut seen = std::collections::HashSet::new();
        for m in &matches {
            assert!(m.distance <= threshold + 1e-6);
            assert!(seen.insert((m.left, m.right)), "duplicate pair");
            // Mutuality: each side is within the other's top-k.
            let l_top: Vec<usize> = ri
                .search(lrefs[m.left], k)
                .into_iter()
                .map(|n| n.index)
                .collect();
            let r_top: Vec<usize> = li
                .search(rrefs[m.right], k)
                .into_iter()
                .map(|n| n.index)
                .collect();
            assert!(l_top.contains(&m.right));
            assert!(r_top.contains(&m.left));
        }
    }
}

/// Union-find groups partition the universe and respect the union calls.
#[test]
fn union_find_groups_partition() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0F1D);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let num_edges = rng.gen_range(0usize..60);
        let edges: Vec<(usize, usize)> = (0..num_edges)
            .map(|_| (rng.gen_range(0usize..40), rng.gen_range(0usize..40)))
            .collect();
        let mut uf = UnionFind::new(n);
        for (a, b) in edges.iter().filter(|(a, b)| *a < n && *b < n) {
            uf.union(*a, *b);
        }
        let groups = uf.groups();
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        assert_eq!(groups.len(), uf.num_groups());
        for (a, b) in edges.iter().filter(|(a, b)| *a < n && *b < n) {
            assert!(uf.connected(*a, *b));
        }
    }
}

/// DBSCAN point classification: core points always have enough neighbours,
/// and reachable points always have a core neighbour.
#[test]
fn density_classification_is_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDB5C);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..25);
        let points: Vec<Vec<f32>> = (0..n).map(|_| arb_vec(&mut rng, 3)).collect();
        let eps = rng.gen_range(0.5f32..5.0);
        let min_pts = rng.gen_range(1usize..5);
        let refs: Vec<&[f32]> = points.iter().map(|v| v.as_slice()).collect();
        let cfg = DbscanConfig {
            eps,
            min_pts,
            metric: Metric::Euclidean,
        };
        let classes = classify_points(&refs, &cfg);
        for (i, class) in classes.iter().enumerate() {
            let neighbours: Vec<usize> = (0..points.len())
                .filter(|&j| Metric::Euclidean.distance(&points[i], &points[j]) <= eps)
                .collect();
            match class {
                PointClass::Core => assert!(neighbours.len() >= min_pts),
                PointClass::Reachable => {
                    assert!(neighbours.len() < min_pts);
                    assert!(neighbours.iter().any(|&j| classes[j] == PointClass::Core));
                }
                PointClass::Outlier => {
                    assert!(neighbours.len() < min_pts);
                    assert!(neighbours.iter().all(|&j| classes[j] != PointClass::Core));
                }
            }
        }
    }
}

/// Metrics stay within [0, 1] and F1 is between min and max of P and R.
#[test]
fn metrics_are_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3E7C);
    for _ in 0..CASES {
        let tp = rng.gen_range(0usize..50);
        let extra_pred = rng.gen_range(0usize..50);
        let extra_actual = rng.gen_range(0usize..50);
        let m = Metrics::from_counts(tp, tp + extra_pred, tp + extra_actual);
        assert!((0.0..=1.0).contains(&m.precision));
        assert!((0.0..=1.0).contains(&m.recall));
        assert!((0.0..=1.0).contains(&m.f1));
        assert!(m.f1 <= m.precision.max(m.recall) + 1e-9);
        if m.precision > 0.0 && m.recall > 0.0 {
            assert!(m.f1 >= m.precision.min(m.recall) - 1e-9);
        }
    }
}

/// A MatchTuple built from arbitrary ids deduplicates, sorts, and exposes
/// exactly C(n, 2) pairs.
#[test]
fn match_tuple_pair_count() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7A1E);
    for _ in 0..CASES {
        let count = rng.gen_range(0usize..12);
        let ids: Vec<(u32, u32)> = (0..count)
            .map(|_| (rng.gen_range(0u32..5), rng.gen_range(0u32..50)))
            .collect();
        let tuple = MatchTuple::new(ids.iter().map(|&(s, r)| EntityId::new(s, r)));
        let n = tuple.len();
        assert_eq!(tuple.pairs().len(), n * n.saturating_sub(1) / 2);
        let members = tuple.members();
        for w in members.windows(2) {
            assert!(w[0] < w[1], "members must be strictly increasing");
        }
    }
}

/// Pruning never invents entities: kept ∪ removed == input members, and the
/// surviving tuple is a subset of the candidate.
#[test]
fn pruning_preserves_membership() {
    use multiem::core::{prune_item, EmbeddingStore, MultiEmConfig};
    let mut rng = ChaCha8Rng::seed_from_u64(0x9B0E);
    for _ in 0..12 {
        let n = rng.gen_range(2usize..6);
        let titles: Vec<String> = (0..n)
            .map(|_| {
                let extra = rng.gen_range(0usize..=3);
                let mut words = vec![arb_word(&mut rng, 3, 8)];
                for _ in 0..extra {
                    words.push(arb_word(&mut rng, 3, 8));
                }
                words.join(" ")
            })
            .collect();
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("prop-prune", schema.clone());
        for (i, t) in titles.iter().enumerate() {
            let table = Table::with_records(
                format!("s{i}"),
                schema.clone(),
                vec![Record::from_texts([t.clone()])],
            )
            .unwrap();
            ds.add_table(table).unwrap();
        }
        let encoder = HashedLexicalEncoder::with_dim(64);
        let config = MultiEmConfig::default();
        let store = EmbeddingStore::build(&ds, &encoder, &[0], &config);
        let members: Vec<EntityId> = (0..titles.len() as u32)
            .map(|s| EntityId::new(s, 0))
            .collect();
        let outcome = prune_item(&members, &store, &config);
        let mut union: Vec<EntityId> = outcome
            .kept
            .iter()
            .chain(outcome.removed.iter())
            .copied()
            .collect();
        union.sort();
        let mut original = members.clone();
        original.sort();
        assert_eq!(union, original);
        if let Some(t) = outcome.tuple() {
            for id in t.members() {
                assert!(members.contains(id));
            }
        }
    }
}
