//! Property-based tests of core invariants (proptest).

use multiem::ann::{mutual_top_k, BruteForceIndex, Metric, VectorIndex};
use multiem::cluster::{classify_points, DbscanConfig, PointClass, UnionFind};
use multiem::embed::{cosine_similarity, EmbeddingModel, HashedLexicalEncoder};
use multiem::eval::Metrics;
use multiem::prelude::*;
use multiem::table::{serialize_record, serialize_record_projected, SerializeOptions};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,8}", 0..8).prop_map(|words| words.join(" "))
}

fn arb_vec(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The encoder is deterministic and produces unit-norm (or zero) vectors.
    #[test]
    fn encoder_is_deterministic_and_normalised(text in arb_text()) {
        let enc = HashedLexicalEncoder::with_dim(96);
        let a = enc.encode(&text);
        let b = enc.encode(&text);
        prop_assert_eq!(a.clone(), b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-3);
    }

    /// Cosine similarity of any two encodings stays in [-1, 1].
    #[test]
    fn encoder_similarity_is_bounded(a in arb_text(), b in arb_text()) {
        let enc = HashedLexicalEncoder::with_dim(64);
        let sim = cosine_similarity(&enc.encode(&a), &enc.encode(&b));
        prop_assert!((-1.0..=1.0).contains(&sim));
    }

    /// Entity serialization with a projected attribute list only ever produces
    /// tokens that the full serialization also contains.
    #[test]
    fn projected_serialization_is_a_subset(values in proptest::collection::vec(arb_text(), 1..6)) {
        let record = Record::from_texts(values.clone());
        let opts = SerializeOptions { max_tokens: None, ..SerializeOptions::default() };
        let full = serialize_record(&record, &opts);
        let full_tokens: std::collections::HashSet<&str> = full.split_whitespace().collect();
        let attrs: Vec<usize> = (0..values.len()).step_by(2).collect();
        let projected = serialize_record_projected(&record, &attrs, &opts);
        for tok in projected.split_whitespace() {
            prop_assert!(full_tokens.contains(tok), "token {tok} missing from full serialization");
        }
    }

    /// Mutual top-K matches are symmetric, within-threshold and unique per
    /// (left, right) pair.
    #[test]
    fn mutual_top_k_respects_threshold_and_mutuality(
        left in proptest::collection::vec(arb_vec(4), 1..12),
        right in proptest::collection::vec(arb_vec(4), 1..12),
        k in 1usize..3,
        threshold in 0.1f32..5.0,
    ) {
        let li = BruteForceIndex::from_vectors(4, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri = BruteForceIndex::from_vectors(4, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let lrefs: Vec<&[f32]> = left.iter().map(|v| v.as_slice()).collect();
        let rrefs: Vec<&[f32]> = right.iter().map(|v| v.as_slice()).collect();
        let matches = mutual_top_k(&li, &ri, &lrefs, &rrefs, k, threshold);
        let mut seen = std::collections::HashSet::new();
        for m in &matches {
            prop_assert!(m.distance <= threshold + 1e-6);
            prop_assert!(seen.insert((m.left, m.right)), "duplicate pair");
            // Mutuality: each side is within the other's top-k.
            let l_top: Vec<usize> = ri.search(lrefs[m.left], k).into_iter().map(|n| n.index).collect();
            let r_top: Vec<usize> = li.search(rrefs[m.right], k).into_iter().map(|n| n.index).collect();
            prop_assert!(l_top.contains(&m.right));
            prop_assert!(r_top.contains(&m.left));
        }
    }

    /// Union-find groups partition the universe and respect the union calls.
    #[test]
    fn union_find_groups_partition(
        n in 1usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let mut uf = UnionFind::new(n);
        for (a, b) in edges.iter().filter(|(a, b)| *a < n && *b < n) {
            uf.union(*a, *b);
        }
        let groups = uf.groups();
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(groups.len(), uf.num_groups());
        for (a, b) in edges.iter().filter(|(a, b)| *a < n && *b < n) {
            prop_assert!(uf.connected(*a, *b));
        }
    }

    /// DBSCAN point classification: core points always have enough neighbours,
    /// and reachable points always have a core neighbour.
    #[test]
    fn density_classification_is_consistent(
        points in proptest::collection::vec(arb_vec(3), 1..25),
        eps in 0.5f32..5.0,
        min_pts in 1usize..5,
    ) {
        let refs: Vec<&[f32]> = points.iter().map(|v| v.as_slice()).collect();
        let cfg = DbscanConfig { eps, min_pts, metric: Metric::Euclidean };
        let classes = classify_points(&refs, &cfg);
        for (i, class) in classes.iter().enumerate() {
            let neighbours: Vec<usize> = (0..points.len())
                .filter(|&j| Metric::Euclidean.distance(&points[i], &points[j]) <= eps)
                .collect();
            match class {
                PointClass::Core => prop_assert!(neighbours.len() >= min_pts),
                PointClass::Reachable => {
                    prop_assert!(neighbours.len() < min_pts);
                    prop_assert!(neighbours.iter().any(|&j| classes[j] == PointClass::Core));
                }
                PointClass::Outlier => {
                    prop_assert!(neighbours.len() < min_pts);
                    prop_assert!(neighbours.iter().all(|&j| classes[j] != PointClass::Core));
                }
            }
        }
    }

    /// Metrics stay within [0, 1] and F1 is between min and max of P and R.
    #[test]
    fn metrics_are_bounded(tp in 0usize..50, extra_pred in 0usize..50, extra_actual in 0usize..50) {
        let m = Metrics::from_counts(tp, tp + extra_pred, tp + extra_actual);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-9);
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-9);
        }
    }

    /// A MatchTuple built from arbitrary ids deduplicates, sorts, and exposes
    /// exactly C(n, 2) pairs.
    #[test]
    fn match_tuple_pair_count(ids in proptest::collection::vec((0u32..5, 0u32..50), 0..12)) {
        let tuple = MatchTuple::new(ids.iter().map(|&(s, r)| EntityId::new(s, r)));
        let n = tuple.len();
        prop_assert_eq!(tuple.pairs().len(), n * n.saturating_sub(1) / 2);
        let members = tuple.members();
        for w in members.windows(2) {
            prop_assert!(w[0] < w[1], "members must be strictly increasing");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pruning never invents entities: kept ∪ removed == input members, and the
    /// surviving tuple is a subset of the candidate.
    #[test]
    fn pruning_preserves_membership(titles in proptest::collection::vec("[a-z]{3,8}( [a-z]{3,8}){0,3}", 2..6)) {
        use multiem::core::{prune_item, EmbeddingStore, MultiEmConfig};
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("prop-prune", schema.clone());
        for (i, t) in titles.iter().enumerate() {
            let table = Table::with_records(
                format!("s{i}"),
                schema.clone(),
                vec![Record::from_texts([t.clone()])],
            )
            .unwrap();
            ds.add_table(table).unwrap();
        }
        let encoder = HashedLexicalEncoder::with_dim(64);
        let config = MultiEmConfig::default();
        let store = EmbeddingStore::build(&ds, &encoder, &[0], &config);
        let members: Vec<EntityId> = (0..titles.len() as u32).map(|s| EntityId::new(s, 0)).collect();
        let outcome = prune_item(&members, &store, &config);
        let mut union: Vec<EntityId> = outcome.kept.iter().chain(outcome.removed.iter()).copied().collect();
        union.sort();
        let mut original = members.clone();
        original.sort();
        prop_assert_eq!(union, original);
        if let Some(t) = outcome.tuple() {
            for id in t.members() {
                prop_assert!(members.contains(id));
            }
        }
    }
}
