//! Price-comparison scenario from the paper's introduction (Figure 1):
//! the same product is listed with different titles on several e-commerce
//! platforms, and we want to group the listings that refer to the same
//! real-world product.
//!
//! This example builds the four source tables by hand (no generator) to show
//! how to feed your own data into MultiEM.
//!
//! ```bash
//! cargo run --release --example price_comparison
//! ```

use multiem::prelude::*;
use std::sync::Arc;

fn listings(schema: &Arc<Schema>, name: &str, rows: &[(&str, &str, f64)]) -> Table {
    let records = rows
        .iter()
        .map(|(title, color, price)| {
            Record::new(vec![
                Value::Text((*title).to_string()),
                Value::Text((*color).to_string()),
                Value::Number(*price),
            ])
        })
        .collect();
    Table::with_records(name, schema.clone(), records).expect("rows match schema")
}

fn main() {
    let schema = Schema::new(["title", "color", "price"]).shared();
    let mut dataset = Dataset::new("price-comparison", schema.clone());

    // Four platforms listing overlapping products with different surface forms.
    dataset
        .add_table(listings(
            &schema,
            "platform-A",
            &[
                ("apple iphone 8 plus 64gb", "silver", 599.0),
                ("samsung galaxy s10 128gb dual sim", "prism black", 649.0),
                (
                    "sony wh-1000xm4 wireless noise cancelling headphones",
                    "black",
                    278.0,
                ),
            ],
        ))
        .unwrap();
    dataset
        .add_table(listings(
            &schema,
            "platform-B",
            &[
                (
                    "apple iphone 8 plus 5.5 64gb 4g unlocked sim free",
                    "",
                    612.5,
                ),
                ("galaxy s10 samsung 128 gb dual-sim prism", "black", 655.0),
                (
                    "logitech mx master 3 advanced wireless mouse",
                    "graphite",
                    99.0,
                ),
            ],
        ))
        .unwrap();
    dataset
        .add_table(listings(
            &schema,
            "platform-C",
            &[
                (
                    "apple iphone 8 plus 14 cm 5.5 64 gb 12 mp ios 11",
                    "silver",
                    589.0,
                ),
                (
                    "sony wh1000xm4 noise cancelling bluetooth headphones",
                    "black",
                    271.0,
                ),
                ("logitech mx master 3 mouse graphite", "", 95.5),
            ],
        ))
        .unwrap();
    dataset
        .add_table(listings(
            &schema,
            "platform-D",
            &[
                (
                    "apple iphone 8 plus 5.5 single sim 4g 64gb",
                    "silver",
                    604.0,
                ),
                (
                    "dyson v11 absolute cordless vacuum cleaner",
                    "nickel",
                    499.0,
                ),
            ],
        ))
        .unwrap();

    // A slightly looser distance threshold suits short, noisy product titles.
    let config = MultiEmConfig {
        m: 0.5,
        epsilon: 1.1,
        ..MultiEmConfig::default()
    };
    let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
    let output = pipeline.run(&dataset).expect("pipeline runs");

    println!(
        "selected attributes: {:?}\n",
        output.selection.selected_names()
    );
    println!("product groups found: {}\n", output.tuples.len());
    for (i, tuple) in output.tuples.iter().enumerate() {
        println!("group {}:", i + 1);
        let mut prices = Vec::new();
        for &id in tuple.members() {
            let record = dataset.record(id).expect("valid id");
            let title = record.value(0).map(Value::render).unwrap_or_default();
            let price = record
                .value(2)
                .and_then(Value::as_number)
                .unwrap_or(f64::NAN);
            let platform = dataset
                .table(id.source)
                .expect("valid source")
                .name()
                .to_string();
            prices.push(price);
            println!("  {platform:<11} ${price:>6.2}  {title}");
        }
        let best = prices.iter().copied().fold(f64::INFINITY, f64::min);
        println!("  -> best deal: ${best:.2}\n");
    }
}
