//! Music-catalogue deduplication with attribute selection and ablations.
//!
//! Demonstrates the Enhanced Entity Representation module: the music schema
//! mixes informative attributes (title, artist, album) with noise (opaque ids,
//! track numbers, lengths). The example prints the per-attribute significance
//! scores of Algorithm 1, then compares the full pipeline against the
//! `w/o EER` and `w/o DP` ablations (Table IV, bottom rows).
//!
//! ```bash
//! cargo run --release --example music_catalog_dedup
//! ```

use multiem::prelude::*;

fn run_and_score(
    name: &str,
    config: MultiEmConfig,
    dataset: &Dataset,
) -> (String, EvaluationReport) {
    let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
    let output = pipeline.run(dataset).expect("pipeline runs");
    let report = evaluate(
        &output.tuples,
        dataset.ground_truth().expect("generated ground truth"),
    );
    (name.to_string(), report)
}

fn main() {
    let data = multiem::datagen::benchmark_dataset("music-20", 0.05).expect("known preset");
    let dataset = &data.dataset;
    println!(
        "music catalogue: {} sources, {} records, {} true duplicate groups\n",
        dataset.num_sources(),
        dataset.total_entities(),
        dataset.ground_truth().map(|g| g.len()).unwrap_or(0)
    );

    // Show the attribute significance scores computed by Algorithm 1.
    let config = MultiEmConfig {
        m: 0.35,
        ..MultiEmConfig::default()
    };
    let encoder = HashedLexicalEncoder::default();
    let selection =
        multiem::core::select_attributes(dataset, &encoder, &config).expect("selection runs");
    println!("attribute significance (mean similarity after shuffling; lower = more informative):");
    for score in &selection.scores {
        println!(
            "  {:<10} similarity {:.3}  -> {}",
            score.name,
            score.mean_similarity,
            if score.selected {
                "selected"
            } else {
                "dropped"
            }
        );
    }
    println!();

    // Compare the full pipeline with its ablations.
    let variants = vec![
        ("MultiEM", config.clone()),
        (
            "MultiEM w/o EER",
            config.clone().without_attribute_selection(),
        ),
        ("MultiEM w/o DP", config.clone().without_pruning()),
    ];
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "method", "P", "R", "F1", "pair-F1"
    );
    for (name, cfg) in variants {
        let (name, report) = run_and_score(name, cfg, dataset);
        let (p, r, f1) = report.tuple.as_percentages();
        let (_, _, pf1) = report.pair.as_percentages();
        println!("{name:<18} {p:>8.1} {r:>8.1} {f1:>8.1} {pf1:>8.1}");
    }
}
