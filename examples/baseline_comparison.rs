//! Compare MultiEM against the paper's baselines on one small dataset.
//!
//! A miniature version of Table IV: every method runs on the same generated
//! Geo analogue and is scored with tuple-F1 and pair-F1. Supervised baselines
//! receive the 5 % labelled sample described in Section IV-A.
//!
//! ```bash
//! cargo run --release --example baseline_comparison
//! ```

use multiem::baselines::{
    AlmserGb, AutoFjMatcher, ChainExtension, MatchContext, MscdAp, MscdHac, MultiTableMatcher,
    PairwiseExtension, SupervisedMatcher,
};
use multiem::eval::{sample_labeled_pairs, SamplingConfig};
use multiem::prelude::*;
use std::time::Instant;

fn main() {
    let data = multiem::datagen::benchmark_dataset("geo", 0.15).expect("known preset");
    let dataset = &data.dataset;
    let gt = dataset.ground_truth().expect("generated ground truth");
    println!(
        "geo dataset: {} sources, {} entities, {} true tuples\n",
        dataset.num_sources(),
        dataset.total_entities(),
        gt.len()
    );

    let encoder = HashedLexicalEncoder::default();
    // 5 % labelled pairs for the supervised methods (Ditto / PromptEM / ALMSER).
    let labeled = sample_labeled_pairs(dataset, &SamplingConfig::default());
    let ctx = MatchContext::build(dataset, &encoder, labeled);

    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>10}",
        "method", "F1", "pair-F1", "tuples", "time"
    );

    // Baselines.
    let mut supervised_pw = SupervisedMatcher::ditto_like();
    supervised_pw.train(&ctx);
    let mut supervised_c = SupervisedMatcher::ditto_like();
    supervised_c.train(&ctx);
    let methods: Vec<Box<dyn MultiTableMatcher>> = vec![
        Box::new(PairwiseExtension::new(AutoFjMatcher::default())),
        Box::new(ChainExtension::new(AutoFjMatcher::default())),
        Box::new(PairwiseExtension::new(supervised_pw)),
        Box::new(ChainExtension::new(supervised_c)),
        Box::new(AlmserGb::default()),
        Box::new(MscdHac::default()),
        Box::new(MscdAp::default()),
    ];
    for method in &methods {
        let start = Instant::now();
        let tuples = method.run(&ctx);
        let elapsed = start.elapsed();
        let report = evaluate(&tuples, gt);
        let (_, _, f1) = report.tuple.as_percentages();
        let (_, _, pf1) = report.pair.as_percentages();
        println!(
            "{:<22} {f1:>7.1} {pf1:>7.1} {:>9} {:>10}",
            method.name(),
            tuples.len(),
            multiem::eval::format_duration(elapsed)
        );
    }

    // MultiEM itself.
    for (label, parallel) in [("MultiEM", false), ("MultiEM (parallel)", true)] {
        let config = MultiEmConfig {
            m: 0.35,
            parallel,
            ..MultiEmConfig::default()
        };
        let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
        let start = Instant::now();
        let output = pipeline.run(dataset).expect("pipeline runs");
        let elapsed = start.elapsed();
        let report = evaluate(&output.tuples, gt);
        let (_, _, f1) = report.tuple.as_percentages();
        let (_, _, pf1) = report.pair.as_percentages();
        println!(
            "{:<22} {f1:>7.1} {pf1:>7.1} {:>9} {:>10}",
            label,
            output.tuples.len(),
            multiem::eval::format_duration(elapsed)
        );
    }
}
