//! Quickstart: run MultiEM end-to-end on a generated multi-source dataset.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use multiem::prelude::*;

fn main() {
    // 1. Get a multi-source dataset. Here we generate a small analogue of the
    //    paper's Music-20 benchmark; in a real application you would load your
    //    own CSV tables with `multiem::table::csv_io`.
    let data = multiem::datagen::benchmark_dataset("music-20", 0.02).expect("known preset");
    let dataset = &data.dataset;
    println!(
        "dataset `{}`: {} sources, {} entities, {} ground-truth tuples",
        dataset.name(),
        dataset.num_sources(),
        dataset.total_entities(),
        dataset.ground_truth().map(|g| g.len()).unwrap_or(0)
    );

    // 2. Configure the pipeline. The defaults follow the paper: k = 1,
    //    MinPts = 2, cosine distance for merging, Euclidean for pruning.
    let config = MultiEmConfig {
        m: 0.35,
        gamma: 0.9,
        ..MultiEmConfig::default()
    };
    let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());

    // 3. Run it (fully unsupervised — the ground truth is only used for scoring).
    let output = pipeline.run(dataset).expect("pipeline runs");

    println!(
        "\nselected attributes: {:?}",
        output.selection.selected_names()
    );
    println!("predicted matched tuples: {}", output.tuples.len());
    println!("merge levels: {}", output.merge_levels);
    println!("outliers pruned: {}", output.outliers_removed);
    for (label, duration) in output.phases.as_pairs() {
        println!("phase {label}: {duration:?}");
    }

    // 4. Show a few predicted groups with their original record texts.
    println!("\nsample predictions:");
    for tuple in output.tuples.iter().take(3) {
        println!("---");
        for &id in tuple.members() {
            let record = dataset.record(id).expect("valid id");
            let text = multiem::table::serialize_record(
                record,
                &multiem::table::SerializeOptions::default(),
            );
            println!("  [{id}] {text}");
        }
    }

    // 5. Score against the generator's ground truth.
    if let Some(gt) = dataset.ground_truth() {
        let report = evaluate(&output.tuples, gt);
        let (p, r, f1) = report.tuple.as_percentages();
        let (_, _, pair_f1) = report.pair.as_percentages();
        println!("\ntuple precision {p:.1}  recall {r:.1}  F1 {f1:.1}  |  pair-F1 {pair_f1:.1}");
    }
}
