//! Person-record linkage at a larger scale, sequential vs parallel.
//!
//! The Person benchmark of the paper is administrative data (given name,
//! surname, suburb, postcode) spread over five sources. This example runs the
//! pipeline on a scaled-down analogue in both execution modes and reports the
//! per-phase running times (the data behind Figure 5 and the
//! MultiEM / MultiEM (parallel) rows of Table V).
//!
//! ```bash
//! cargo run --release --example person_records
//! ```

use multiem::prelude::*;
use std::time::Duration;

fn fmt(d: Duration) -> String {
    multiem::eval::format_duration(d)
}

fn main() {
    // Scale 0.002 of the 500k-tuple Person benchmark ≈ 1 000 tuples ≈ 10 000 records.
    let data = multiem::datagen::benchmark_dataset("person", 0.002).expect("known preset");
    let dataset = &data.dataset;
    println!(
        "person dataset: {} sources, {} records, {} true clusters",
        dataset.num_sources(),
        dataset.total_entities(),
        dataset.ground_truth().map(|g| g.len()).unwrap_or(0)
    );

    for parallel in [false, true] {
        let label = if parallel {
            "MultiEM (parallel)"
        } else {
            "MultiEM"
        };
        let config = MultiEmConfig {
            m: 0.2,
            sample_ratio: 0.05,
            parallel,
            ..MultiEmConfig::default()
        };
        let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
        let output = pipeline.run(dataset).expect("pipeline runs");
        let report = evaluate(
            &output.tuples,
            dataset.ground_truth().expect("ground truth"),
        );
        let (_, _, f1) = report.tuple.as_percentages();
        let (_, _, pf1) = report.pair.as_percentages();

        println!("\n== {label} ==");
        println!("total time: {}", fmt(output.total_time));
        for (phase, d) in output.phases.as_pairs() {
            println!("  phase {phase}: {}", fmt(d));
        }
        println!(
            "memory (accounted): {}",
            multiem::eval::format_bytes(output.total_memory_bytes())
        );
        println!(
            "tuples predicted: {}   F1 {f1:.1}   pair-F1 {pf1:.1}",
            output.tuples.len()
        );
    }
}
