//! Streaming deduplication with the incremental [`EntityStore`].
//!
//! Simulates a production feed: an initial corpus is bootstrapped with the
//! batch pipeline, further source tables stream in one at a time, and single
//! records are matched / inserted interactively. Finally the online result is
//! scored against the same ground truth as a full batch run, to show the two
//! paths agree.
//!
//! ```bash
//! cargo run --release --example streaming_dedup
//! ```

use multiem::eval::evaluate;
use multiem::online::{EntityStore, OnlineConfig};
use multiem::prelude::*;

fn main() {
    // A 5-source music catalogue with ground truth (an analogue of the
    // paper's Music-20 benchmark).
    let data = multiem::datagen::benchmark_dataset("music-20", 0.03).expect("known preset");
    let dataset = &data.dataset;
    let tables = dataset.tables();
    println!(
        "dataset `{}`: {} sources, {} entities",
        dataset.name(),
        dataset.num_sources(),
        dataset.total_entities()
    );

    // The store reuses the batch hyper-parameters; attribute selection is
    // fixed here so the demo is self-contained (AutoOnFirstData would run
    // Algorithm 1 over the bootstrap corpus instead).
    let base = MultiEmConfig {
        m: 0.35,
        attribute_selection: false,
        ..MultiEmConfig::default()
    };
    let config = OnlineConfig::new(base.clone()).with_all_attributes();
    let mut store = EntityStore::new(config, HashedLexicalEncoder::default());

    // 1. Bootstrap from the first three sources using the batch pipeline.
    let mut bootstrap = Dataset::new("bootstrap", dataset.schema().clone());
    for table in &tables[..3] {
        bootstrap.add_table(table.clone()).expect("same schema");
    }
    let report = store.bootstrap(&bootstrap).expect("bootstrap runs");
    println!(
        "bootstrap: {} records, {} already matched into tuples",
        report.records, report.merged
    );

    // 2. Stream the remaining sources in as batches.
    for table in &tables[3..] {
        let report = store.ingest_batch(table).expect("ingest runs");
        println!(
            "ingested `{}`: {} records ({} merged, {} new singletons)",
            table.name(),
            report.records,
            report.merged,
            report.singletons
        );
    }

    // 3. Interactive use: match a record without inserting it...
    let probe = dataset
        .record(EntityId::new(0, 0))
        .expect("record exists")
        .clone();
    let hits = store.match_record(&probe);
    println!(
        "match_record on a known record returns {} hit(s)",
        hits.len()
    );
    if let Some((id, dist)) = hits.first() {
        println!("  closest entity: {id} at merge distance {dist:.3}");
    }

    // ... then actually insert one.
    let id = store.insert(probe).expect("insert runs");
    let members = store.cluster_members(id).expect("cluster exists");
    println!(
        "inserted as {id}; its cluster now has {} members",
        members.len()
    );

    // 4. Final pruning pass + scoreboard vs. the batch pipeline.
    store.refresh();
    let stats = store.stats();
    println!(
        "store: {} records, {} clusters ({} tuples), index {} nodes ({} stale, {} rebuilds), {} pruned outliers",
        stats.records,
        stats.clusters,
        stats.tuples,
        stats.index_nodes,
        stats.stale_nodes,
        stats.rebuilds,
        stats.pruned_outliers
    );

    let truth = dataset
        .ground_truth()
        .expect("generated dataset has ground truth");
    let online_report = evaluate(&store.tuples(), truth);
    let batch_output = MultiEm::new(base, HashedLexicalEncoder::default())
        .run(dataset)
        .expect("batch pipeline runs");
    let batch_report = evaluate(&batch_output.tuples, truth);
    println!(
        "pair-F1: online {:.4} vs batch {:.4} (Δ {:+.4})",
        online_report.pair.f1,
        batch_report.pair.f1,
        online_report.pair.f1 - batch_report.pair.f1
    );

    // 5. Persistence: snapshot the store and restore it.
    let snapshot = store.snapshot_json().expect("snapshot serializes");
    let restored = EntityStore::restore_json(&snapshot, HashedLexicalEncoder::default())
        .expect("snapshot restores");
    println!(
        "snapshot: {} bytes of JSON, restored store has {} clusters",
        snapshot.len(),
        restored.stats().clusters
    );
}
