//! Run the sharded matching service in-process and talk to it over HTTP.
//!
//! Spins up a [`MatchServer`] on a loopback port with WAL durability in a
//! temporary directory, ingests a handful of product records, issues
//! read-only match queries, checkpoints, and shows that a "restarted" server
//! reloads the identical state from the checkpoint + WAL.
//!
//! ```bash
//! cargo run --release --example matching_service
//! ```

use multiem::prelude::*;
use multiem::serve::http::HttpClient;
use multiem::serve::{MatchServer, ServeConfig};

fn main() {
    let data_dir = std::env::temp_dir().join(format!("multiem-example-{}", std::process::id()));
    let config = ServeConfig {
        shards: 4,
        workers: 4,
        data_dir: Some(data_dir.clone()),
        ..ServeConfig::default()
    };

    // First life: ingest and match over loopback HTTP.
    let server = MatchServer::bind(
        config.clone(),
        HashedLexicalEncoder::default(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.spawn().expect("spawn");
    println!("serving on http://{addr} (data dir {})", data_dir.display());

    let mut client = HttpClient::connect(&addr).expect("connect");
    let (_, body) = client
        .request(
            "POST",
            "/records",
            Some(
                "{\"records\":[[\"apple iphone 8 plus 64gb silver\"],\
                 [\"sony bravia tv 55\"],\
                 [\"apple iphone 8 plus 64 gb silver\"],\
                 [\"dyson v11 vacuum\"]]}",
            ),
        )
        .expect("ingest");
    println!("ingest  -> {body}");

    let (_, body) = client
        .request(
            "POST",
            "/match",
            Some("{\"record\":[\"apple iphone 8 silver\"]}"),
        )
        .expect("match");
    println!("match   -> {body}");

    let (_, stats) = client.request("GET", "/stats", None).expect("stats");
    println!("stats   -> {stats}");

    let (_, body) = client.request("POST", "/snapshot", None).expect("snapshot");
    println!("snapshot-> {body}");
    drop(client);
    handle.shutdown();

    // Second life: the checkpoint (plus any WAL tail) restores everything.
    let server =
        MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0").expect("rebind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.spawn().expect("respawn");
    let mut client = HttpClient::connect(&addr).expect("reconnect");
    let (_, restored) = client.request("GET", "/stats", None).expect("stats");
    println!("restart -> {restored}");
    assert!(restored.contains("\"records\":4"), "restore lost records");
    drop(client);
    handle.shutdown();

    std::fs::remove_dir_all(&data_dir).ok();
    println!("restart restored all 4 records from checkpoint + WAL ✓");
}
