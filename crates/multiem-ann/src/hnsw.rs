//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI 2020).
//!
//! A from-scratch HNSW implementation covering the parts MultiEM needs:
//! incremental insertion with exponentially-distributed level assignment,
//! greedy descent through the upper layers, best-first `ef`-bounded search at
//! the base layer, and the *heuristic* neighbour-selection rule (Algorithm 4 of
//! the HNSW paper) that keeps the graph navigable on clustered data.
//!
//! The index is deterministic given its seed, which keeps pipeline runs and
//! the sensitivity experiments (Figure 6(b)) reproducible.

use crate::metric::Metric;
use crate::{DynamicVectorIndex, Neighbor, VectorIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of an [`HnswIndex`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Maximum number of bidirectional links per node on layers > 0 (the
    /// HNSW `M` parameter).
    pub m: usize,
    /// Maximum links on layer 0 (usually `2 * m`).
    pub m0: usize,
    /// Size of the dynamic candidate list during construction.
    pub ef_construction: usize,
    /// Size of the dynamic candidate list during search (raised to `k` when
    /// `k > ef_search`).
    pub ef_search: usize,
    /// Seed of the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            m0: 32,
            ef_construction: 128,
            ef_search: 64,
            seed: 42,
        }
    }
}

impl HnswConfig {
    /// A configuration tuned for small collections (tests, tiny tables).
    pub fn small() -> Self {
        Self {
            m: 8,
            m0: 16,
            ef_construction: 64,
            ef_search: 32,
            seed: 42,
        }
    }
}

/// Max-heap entry ordered by distance (for the result set).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FarthestFirst {
    dist: f32,
    node: usize,
}

impl Eq for FarthestFirst {}

impl Ord for FarthestFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for FarthestFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry ordered by distance (for the candidate queue); implemented as
/// a max-heap over reversed ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ClosestFirst {
    dist: f32,
    node: usize,
}

impl Eq for ClosestFirst {}

impl Ord for ClosestFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for ClosestFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An HNSW approximate nearest-neighbour index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    config: HnswConfig,
    metric: Metric,
    dim: usize,
    /// Flat row-major vector storage.
    data: Vec<f32>,
    /// `links[node][layer]` = neighbour list of `node` at `layer`.
    links: Vec<Vec<Vec<u32>>>,
    /// Highest layer currently present.
    max_layer: usize,
    /// Entry point node for searches.
    entry_point: Option<usize>,
    /// Level-assignment RNG.
    rng: ChaCha8Rng,
    /// `1 / ln(M)` — the level normalisation factor from the HNSW paper.
    level_mult: f64,
}

impl HnswIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, config: HnswConfig) -> Self {
        let level_mult = 1.0 / (config.m.max(2) as f64).ln();
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Self {
            config,
            metric,
            dim,
            data: Vec::new(),
            links: Vec::new(),
            max_layer: 0,
            entry_point: None,
            rng,
            level_mult,
        }
    }

    /// Build an index from a set of vectors.
    pub fn build<'a, I>(dim: usize, metric: Metric, config: HnswConfig, vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut idx = Self::new(dim, metric, config);
        for v in vectors {
            idx.add(v);
        }
        idx
    }

    /// The index configuration.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    #[inline]
    fn dist_to(&self, query: &[f32], node: usize) -> f32 {
        self.metric.distance(query, self.vector(node))
    }

    fn random_level(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln()) * self.level_mult).floor() as usize
    }

    /// Greedy search restricted to one layer, returning up to `ef` closest
    /// candidates to `query` starting from `entry_points`.
    fn search_layer(
        &self,
        query: &[f32],
        entry_points: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<Neighbor> {
        let mut visited = vec![false; self.len()];
        let mut candidates: BinaryHeap<ClosestFirst> = BinaryHeap::new();
        let mut results: BinaryHeap<FarthestFirst> = BinaryHeap::new();

        for &ep in entry_points {
            if visited[ep] {
                continue;
            }
            visited[ep] = true;
            let d = self.dist_to(query, ep);
            candidates.push(ClosestFirst { dist: d, node: ep });
            results.push(FarthestFirst { dist: d, node: ep });
        }

        while let Some(ClosestFirst { dist, node }) = candidates.pop() {
            let worst = results.peek().map(|f| f.dist).unwrap_or(f32::INFINITY);
            if dist > worst && results.len() >= ef {
                break;
            }
            for &nb in &self.links[node][layer] {
                let nb = nb as usize;
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let d = self.dist_to(query, nb);
                let worst = results.peek().map(|f| f.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    candidates.push(ClosestFirst { dist: d, node: nb });
                    results.push(FarthestFirst { dist: d, node: nb });
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }

        let mut out: Vec<Neighbor> = results
            .into_iter()
            .map(|f| Neighbor::new(f.node, f.dist))
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        out
    }

    /// Heuristic neighbour selection (HNSW paper, Algorithm 4): prefer
    /// candidates that are closer to the new node than to any already-selected
    /// neighbour, which preserves graph navigability between clusters.
    fn select_neighbors_heuristic(&self, candidates: &[Neighbor], m: usize) -> Vec<usize> {
        let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
        for &cand in candidates {
            if selected.len() >= m {
                break;
            }
            let cand_vec = self.vector(cand.index);
            let dominated = selected
                .iter()
                .any(|s| self.metric.distance(cand_vec, self.vector(s.index)) < cand.distance);
            if !dominated {
                selected.push(cand);
            }
        }
        // Fill up with remaining nearest candidates if the heuristic was too strict.
        if selected.len() < m {
            for &cand in candidates {
                if selected.len() >= m {
                    break;
                }
                if !selected.iter().any(|s| s.index == cand.index) {
                    selected.push(cand);
                }
            }
        }
        selected.into_iter().map(|n| n.index).collect()
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m0
        } else {
            self.config.m
        }
    }

    /// Re-prune the neighbour list of `node` at `layer` to the layer's link cap.
    fn shrink_links(&mut self, node: usize, layer: usize) {
        let cap = self.max_links(layer);
        if self.links[node][layer].len() <= cap {
            return;
        }
        let node_vec: Vec<f32> = self.vector(node).to_vec();
        let mut cands: Vec<Neighbor> = self.links[node][layer]
            .iter()
            .map(|&nb| {
                Neighbor::new(
                    nb as usize,
                    self.metric.distance(&node_vec, self.vector(nb as usize)),
                )
            })
            .collect();
        cands.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        let kept = self.select_neighbors_heuristic(&cands, cap);
        self.links[node][layer] = kept.into_iter().map(|i| i as u32).collect();
    }

    /// Insert a vector; returns its index.
    ///
    /// # Panics
    /// Panics if `vector.len() != dim`.
    pub fn add(&mut self, vector: &[f32]) -> usize {
        assert_eq!(vector.len(), self.dim, "vector dimensionality mismatch");
        let new_id = self.len();
        self.data.extend_from_slice(vector);
        let level = self.random_level();
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(entry) = self.entry_point else {
            self.entry_point = Some(new_id);
            self.max_layer = level;
            return new_id;
        };

        let query: Vec<f32> = vector.to_vec();
        let mut current = entry;

        // Phase 1: greedy descent through layers above the new node's level.
        let mut layer = self.max_layer;
        while layer > level {
            let found = self.search_layer(&query, &[current], 1, layer);
            if let Some(best) = found.first() {
                current = best.index;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // Phase 2: connect on every layer from min(level, max_layer) down to 0.
        let top = level.min(self.max_layer);
        let mut entry_points = vec![current];
        for layer in (0..=top).rev() {
            let candidates =
                self.search_layer(&query, &entry_points, self.config.ef_construction, layer);
            let m = self.max_links(layer);
            let selected = self.select_neighbors_heuristic(&candidates, m);
            for &nb in &selected {
                self.links[new_id][layer].push(nb as u32);
                self.links[nb][layer].push(new_id as u32);
                self.shrink_links(nb, layer);
            }
            entry_points = candidates.iter().map(|n| n.index).collect();
            if entry_points.is_empty() {
                entry_points = vec![current];
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry_point = Some(new_id);
        }
        new_id
    }
}

/// The serializable part of an [`HnswIndex`].
///
/// The level-assignment RNG is not stored: it is a pure function of the
/// config seed and the number of insertions, so deserialization recreates it
/// from the seed and replays the level draws. This keeps snapshots compact
/// and guarantees a restored index continues the exact insertion sequence the
/// original would have produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HnswIndexState {
    config: HnswConfig,
    metric: Metric,
    dim: usize,
    data: Vec<f32>,
    links: Vec<Vec<Vec<u32>>>,
    max_layer: usize,
    entry_point: Option<usize>,
}

impl Serialize for HnswIndex {
    fn to_value(&self) -> serde::Value {
        HnswIndexState {
            config: self.config.clone(),
            metric: self.metric,
            dim: self.dim,
            data: self.data.clone(),
            links: self.links.clone(),
            max_layer: self.max_layer,
            entry_point: self.entry_point,
        }
        .to_value()
    }
}

impl Deserialize for HnswIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let state = HnswIndexState::from_value(v)?;
        // Cross-field validation: a malformed (e.g. hand-edited or truncated)
        // snapshot must fail here with an error, not panic later in search.
        let nodes = state.links.len();
        if state.dim == 0 && !state.data.is_empty() {
            return Err(serde::Error::type_mismatch(
                "HnswIndex",
                "dim > 0 for non-empty data",
            ));
        }
        if state.dim != 0 && state.data.len() != nodes * state.dim {
            return Err(serde::Error::type_mismatch(
                "HnswIndex",
                "data length matching links length times dim",
            ));
        }
        match state.entry_point {
            Some(ep) if ep >= nodes => {
                return Err(serde::Error::type_mismatch(
                    "HnswIndex",
                    "entry_point within bounds",
                ))
            }
            None if nodes > 0 => {
                return Err(serde::Error::type_mismatch(
                    "HnswIndex",
                    "entry_point present for a non-empty index",
                ))
            }
            _ => {}
        }
        for layers in &state.links {
            if layers.is_empty() || layers.len() > state.max_layer + 1 {
                return Err(serde::Error::type_mismatch(
                    "HnswIndex",
                    "per-node layer lists within max_layer",
                ));
            }
            for layer in layers {
                if layer.iter().any(|&nb| nb as usize >= nodes) {
                    return Err(serde::Error::type_mismatch(
                        "HnswIndex",
                        "neighbour links within bounds",
                    ));
                }
            }
        }
        let mut index = HnswIndex::new(state.dim, state.metric, state.config);
        index.data = state.data;
        index.links = state.links;
        index.max_layer = state.max_layer;
        index.entry_point = state.entry_point;
        // Replay the level draws so future insertions continue the stream.
        for _ in 0..nodes {
            index.random_level();
        }
        Ok(index)
    }
}

impl DynamicVectorIndex for HnswIndex {
    fn insert(&mut self, vector: &[f32]) -> usize {
        self.add(vector)
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let entry = self
            .entry_point
            .expect("non-empty index has an entry point");
        let mut current = entry;
        // Greedy descent to layer 1.
        for layer in (1..=self.max_layer).rev() {
            let found = self.search_layer(query, &[current], 1, layer);
            if let Some(best) = found.first() {
                current = best.index;
            }
        }
        let ef = self.config.ef_search.max(k);
        let mut results = self.search_layer(query, &[current], ef, 0);
        results.truncate(k);
        results
    }

    fn vector(&self, index: usize) -> &[f32] {
        let start = index * self.dim;
        &self.data[start..start + self.dim]
    }

    fn approx_bytes(&self) -> usize {
        let link_bytes: usize = self
            .links
            .iter()
            .map(|layers| {
                layers
                    .iter()
                    .map(|l| l.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
                    .sum::<usize>()
            })
            .sum();
        self.data.capacity() * 4 + link_bytes + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use rand::Rng;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn empty_and_single_element() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::small());
        assert!(idx.is_empty());
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());

        let mut idx = HnswIndex::new(2, Metric::Euclidean, HnswConfig::small());
        idx.add(&[1.0, 1.0]);
        let res = idx.search(&[0.0, 0.0], 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].index, 0);
    }

    #[test]
    fn exact_on_tiny_collections() {
        let points: Vec<Vec<f32>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let idx = HnswIndex::build(
            2,
            Metric::Euclidean,
            HnswConfig::small(),
            points.iter().map(|p| p.as_slice()),
        );
        let res = idx.search(&[5.05, 5.0], 2);
        let found: Vec<usize> = res.iter().map(|n| n.index).collect();
        assert!(found.contains(&3) && found.contains(&4));
    }

    #[test]
    fn recall_against_brute_force() {
        let dim = 16;
        let n = 400;
        let vectors = random_vectors(n, dim, 7);
        let hnsw = HnswIndex::build(
            dim,
            Metric::Cosine,
            HnswConfig::default(),
            vectors.iter().map(|v| v.as_slice()),
        );
        let exact = BruteForceIndex::from_vectors(
            dim,
            Metric::Cosine,
            vectors.iter().map(|v| v.as_slice()),
        );

        let queries = random_vectors(30, dim, 99);
        let k = 10;
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let approx: std::collections::HashSet<usize> =
                hnsw.search(q, k).into_iter().map(|n| n.index).collect();
            let truth: Vec<usize> = exact.search(q, k).into_iter().map(|n| n.index).collect();
            total += truth.len();
            hits += truth.iter().filter(|t| approx.contains(t)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.85, "HNSW recall too low: {recall}");
    }

    #[test]
    fn results_sorted_by_distance() {
        let vectors = random_vectors(100, 8, 3);
        let idx = HnswIndex::build(
            8,
            Metric::Euclidean,
            HnswConfig::small(),
            vectors.iter().map(|v| v.as_slice()),
        );
        let res = idx.search(&vectors[0], 10);
        for w in res.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // The query point itself is in the index; it must be the closest.
        assert_eq!(res[0].index, 0);
        assert!(res[0].distance < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let vectors = random_vectors(200, 8, 11);
        let build = || {
            HnswIndex::build(
                8,
                Metric::Cosine,
                HnswConfig::default(),
                vectors.iter().map(|v| v.as_slice()),
            )
        };
        let a = build();
        let b = build();
        let qa = a.search(&vectors[5], 7);
        let qb = b.search(&vectors[5], 7);
        assert_eq!(qa, qb);
    }

    #[test]
    fn link_counts_respect_caps() {
        let vectors = random_vectors(300, 8, 21);
        let config = HnswConfig {
            m: 6,
            m0: 12,
            ..HnswConfig::default()
        };
        let idx = HnswIndex::build(
            8,
            Metric::Cosine,
            config,
            vectors.iter().map(|v| v.as_slice()),
        );
        for layers in &idx.links {
            for (layer, l) in layers.iter().enumerate() {
                let cap = if layer == 0 { 12 } else { 6 };
                assert!(
                    l.len() <= cap,
                    "layer {layer} has {} links (cap {cap})",
                    l.len()
                );
            }
        }
    }

    #[test]
    fn approx_bytes_nonzero_and_grows() {
        let vectors = random_vectors(50, 8, 5);
        let small = HnswIndex::build(
            8,
            Metric::Cosine,
            HnswConfig::small(),
            vectors[..10].iter().map(|v| v.as_slice()),
        );
        let large = HnswIndex::build(
            8,
            Metric::Cosine,
            HnswConfig::small(),
            vectors.iter().map(|v| v.as_slice()),
        );
        assert!(large.approx_bytes() > small.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn add_rejects_wrong_dim() {
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::small());
        idx.add(&[1.0, 2.0]);
    }

    #[test]
    fn serde_roundtrip_preserves_search_and_insertion_stream() {
        let vectors = random_vectors(150, 8, 17);
        let mut original = HnswIndex::build(
            8,
            Metric::Cosine,
            HnswConfig::small(),
            vectors[..100].iter().map(|v| v.as_slice()),
        );
        let json = serde_json::to_string(&original).unwrap();
        let mut restored: HnswIndex = serde_json::from_str(&json).unwrap();

        // Same graph: identical search results.
        assert_eq!(
            original.search(&vectors[3], 10),
            restored.search(&vectors[3], 10)
        );

        // Same RNG position: further insertions keep the indexes identical.
        for v in &vectors[100..] {
            original.add(v);
            restored.add(v);
        }
        assert_eq!(
            original.search(&vectors[120], 10),
            restored.search(&vectors[120], 10)
        );
        assert_eq!(original.max_layer, restored.max_layer);
        assert_eq!(original.links, restored.links);
    }

    #[test]
    fn deserialize_rejects_malformed_snapshots() {
        let vectors = random_vectors(20, 4, 9);
        let idx = HnswIndex::build(
            4,
            Metric::Cosine,
            HnswConfig::small(),
            vectors.iter().map(|v| v.as_slice()),
        );
        let json = serde_json::to_string(&idx).unwrap();
        // Out-of-bounds entry point (replace whatever value it has with 999).
        let key = "\"entry_point\":";
        let start = json.find(key).unwrap() + key.len();
        let end = start + json[start..].find(|c: char| !c.is_ascii_digit()).unwrap();
        let bad = format!("{}999{}", &json[..start], &json[end..]);
        assert!(serde_json::from_str::<HnswIndex>(&bad).is_err());
        // Data length inconsistent with dim * nodes.
        let bad = json.replace("\"dim\":4", "\"dim\":5");
        assert!(serde_json::from_str::<HnswIndex>(&bad).is_err());
    }

    #[test]
    fn dynamic_insert_trait_matches_inherent_add() {
        use crate::DynamicVectorIndex;
        let mut a = HnswIndex::new(2, Metric::Euclidean, HnswConfig::small());
        let mut b = HnswIndex::new(2, Metric::Euclidean, HnswConfig::small());
        for v in [[0.0f32, 0.0], [1.0, 0.0], [0.0, 1.0]] {
            assert_eq!(a.add(&v), DynamicVectorIndex::insert(&mut b, &v));
        }
        assert_eq!(a.search(&[0.1, 0.1], 3), b.search(&[0.1, 0.1], 3));
    }
}
