//! Mutual top-K joins between two vector collections (Eq. 1 of the paper).
//!
//! The two-table merging strategy of MultiEM declares a pair `(e, e')` matched
//! when `e' ∈ topK(e)`, `e ∈ topK(e')`, **and** `dist(e, e') ≤ m`. This module
//! implements that join generically over any [`VectorIndex`] so it can run on
//! the exact brute-force index (small tables) or the HNSW index (large tables).

use crate::{Neighbor, VectorIndex};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One mutual match between row `left` of collection A and row `right` of
/// collection B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutualMatch {
    /// Row index in the left collection.
    pub left: usize,
    /// Row index in the right collection.
    pub right: usize,
    /// Distance between the two vectors.
    pub distance: f32,
}

/// Compute the mutual top-K matches between `left_vectors` and `right_vectors`.
///
/// * `left_index` must index exactly `left_vectors` (same order); likewise for
///   the right side. The function only uses the indexes for searching and the
///   raw slices for queries, so callers can pass HNSW or brute-force indexes.
/// * `k` is the top-K bound of Eq. 1 (the paper uses `k = 1`).
/// * `max_distance` is the threshold `m`; pairs farther apart are discarded.
///
/// The result is sorted by `(left, right)` for determinism.
pub fn mutual_top_k<IL, IR>(
    left_index: &IL,
    right_index: &IR,
    left_vectors: &[&[f32]],
    right_vectors: &[&[f32]],
    k: usize,
    max_distance: f32,
) -> Vec<MutualMatch>
where
    IL: VectorIndex,
    IR: VectorIndex,
{
    if k == 0 || left_vectors.is_empty() || right_vectors.is_empty() {
        return Vec::new();
    }

    // top-K of every left row in the right collection.
    let left_to_right: Vec<Vec<Neighbor>> = left_vectors
        .par_iter()
        .map(|v| right_index.search(v, k))
        .collect();
    // top-K of every right row in the left collection.
    let right_to_left: Vec<Vec<Neighbor>> = right_vectors
        .par_iter()
        .map(|v| left_index.search(v, k))
        .collect();

    let mut matches: Vec<MutualMatch> = Vec::new();
    for (l, neighbors) in left_to_right.iter().enumerate() {
        for n in neighbors {
            if n.distance > max_distance {
                continue;
            }
            let reciprocal = right_to_left[n.index].iter().any(|back| back.index == l);
            if reciprocal {
                matches.push(MutualMatch {
                    left: l,
                    right: n.index,
                    distance: n.distance,
                });
            }
        }
    }
    matches.sort_by(|a, b| a.left.cmp(&b.left).then(a.right.cmp(&b.right)));
    matches
}

/// Fan-in merge of per-partition candidate lists into one global top-`k`.
///
/// Each input list must already be sorted by increasing distance (the order
/// every [`VectorIndex::search`] and `EntityStore::match_record` returns).
/// The output interleaves the lists by distance, breaking ties by input
/// order (list index, then position), and truncates to `k` — exactly the
/// rank a single un-partitioned index would have produced for candidates it
/// scored with the same distances. The serving layer uses this to merge
/// per-shard match results.
///
/// Non-finite distances (NaN, ±∞) are dropped before ranking: a NaN would
/// make any comparator non-total and scramble the merged order, and a
/// candidate without a finite distance is meaningless to rank. The sort
/// itself uses [`f32::total_cmp`], so the comparator is total even if a
/// new non-finite class ever slips through.
pub fn merge_ranked<T: Clone>(lists: &[Vec<(T, f32)>], k: usize) -> Vec<(T, f32)> {
    let mut all: Vec<(T, f32)> = lists
        .iter()
        .flatten()
        .filter(|(_, distance)| distance.is_finite())
        .cloned()
        .collect();
    // Stable sort: equal distances keep (list, position) order.
    all.sort_by(|a, b| a.1.total_cmp(&b.1));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use crate::hnsw::{HnswConfig, HnswIndex};
    use crate::metric::Metric;

    fn slices(v: &[Vec<f32>]) -> Vec<&[f32]> {
        v.iter().map(|x| x.as_slice()).collect()
    }

    #[test]
    fn simple_mutual_match() {
        // Left: two clusters; Right: one point near left[0], one far away.
        let left = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let right = vec![vec![0.1, 0.0], vec![50.0, 50.0]];
        let li =
            BruteForceIndex::from_vectors(2, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(2, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let m = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 1.0);
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].left, m[0].right), (0, 0));
    }

    #[test]
    fn threshold_filters_far_pairs() {
        let left = vec![vec![0.0, 0.0]];
        let right = vec![vec![5.0, 0.0]];
        let li =
            BruteForceIndex::from_vectors(2, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(2, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        // Mutual nearest, but distance 5 > threshold 1 → no match.
        assert!(mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 1.0).is_empty());
        // Raising the threshold admits it.
        assert_eq!(
            mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 10.0).len(),
            1
        );
    }

    #[test]
    fn mutuality_is_required() {
        // right[0] is closest to left[1], but left[1]'s nearest right point is
        // right[1]; with k = 1 there is no mutual agreement for (1, 0).
        let left = vec![vec![0.0], vec![2.0]];
        let right = vec![vec![1.3], vec![2.1]];
        let li =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let matches = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 10.0);
        assert_eq!(matches.len(), 1);
        assert_eq!((matches[0].left, matches[0].right), (1, 1));
    }

    #[test]
    fn k_zero_or_empty_inputs() {
        let left: Vec<Vec<f32>> = vec![vec![0.0]];
        let li =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let empty: Vec<Vec<f32>> = Vec::new();
        let ei = BruteForceIndex::new(1, Metric::Euclidean);
        assert!(mutual_top_k(&li, &li, &slices(&left), &slices(&left), 0, 1.0).is_empty());
        assert!(mutual_top_k(&li, &ei, &slices(&left), &slices(&empty), 1, 1.0).is_empty());
    }

    #[test]
    fn larger_k_recovers_more_pairs() {
        let left = vec![vec![0.0], vec![0.4]];
        let right = vec![vec![0.1], vec![0.3]];
        let li =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let k1 = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 1.0);
        let k2 = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 2, 1.0);
        assert!(k2.len() >= k1.len());
        assert_eq!(k2.len(), 4);
    }

    #[test]
    fn merge_ranked_interleaves_and_truncates() {
        let lists = vec![
            vec![("a0", 0.1), ("a1", 0.4)],
            vec![],
            vec![("c0", 0.05), ("c1", 0.4), ("c2", 0.9)],
        ];
        let merged = merge_ranked(&lists, 4);
        let names: Vec<&str> = merged.iter().map(|(n, _)| *n).collect();
        // Tie at 0.4 keeps list order (a1 before c1).
        assert_eq!(names, vec!["c0", "a0", "a1", "c1"]);
        assert!(merge_ranked::<&str>(&[], 5).is_empty());
        assert_eq!(merge_ranked(&lists, 0).len(), 0);
    }

    #[test]
    fn merge_ranked_drops_non_finite_distances() {
        // One NaN used to poison the whole comparator (`partial_cmp(..)
        // .unwrap_or(Equal)` is non-total), leaving the merged ranking
        // unspecified. NaN and ±∞ must be filtered, finite order preserved.
        let lists = vec![
            vec![("nan", f32::NAN), ("a", 0.2), ("inf", f32::INFINITY)],
            vec![("b", 0.1), ("neg-inf", f32::NEG_INFINITY), ("c", 0.3)],
        ];
        let merged = merge_ranked(&lists, 10);
        let names: Vec<&str> = merged.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
        assert!(merged.iter().all(|(_, d)| d.is_finite()));
        // An all-NaN input merges to nothing rather than garbage.
        assert!(merge_ranked(&[vec![("x", f32::NAN)]], 3).is_empty());
    }

    #[test]
    fn merge_ranked_k_beyond_candidates_and_tie_stability() {
        // `k` larger than the total candidate count returns everything.
        let lists = vec![vec![("a", 0.5)], vec![("b", 0.25)]];
        let merged = merge_ranked(&lists, 100);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].0, "b");

        // Equal distances across shards keep (list, position) order no
        // matter how many ties pile up — the stable-sort guarantee the
        // sharded read path leans on for deterministic responses.
        let tied = vec![
            vec![("s0-a", 0.4), ("s0-b", 0.4)],
            vec![("s1-a", 0.4)],
            vec![("s2-a", 0.4), ("s2-b", 0.4)],
        ];
        let merged = merge_ranked(&tied, 10);
        let names: Vec<&str> = merged.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["s0-a", "s0-b", "s1-a", "s2-a", "s2-b"]);
    }

    #[test]
    fn results_deterministically_sorted() {
        let left = vec![vec![0.0], vec![1.0], vec![2.0]];
        let right = vec![vec![0.0], vec![1.0], vec![2.0]];
        let li =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, left.iter().map(|v| v.as_slice()));
        let ri =
            BruteForceIndex::from_vectors(1, Metric::Euclidean, right.iter().map(|v| v.as_slice()));
        let m = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 0.5);
        let pairs: Vec<(usize, usize)> = m.iter().map(|x| (x.left, x.right)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn works_with_hnsw_indexes() {
        let left: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, 0.0]).collect();
        let right: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 + 0.05, 0.0]).collect();
        let li = HnswIndex::build(
            2,
            Metric::Euclidean,
            HnswConfig::small(),
            left.iter().map(|v| v.as_slice()),
        );
        let ri = HnswIndex::build(
            2,
            Metric::Euclidean,
            HnswConfig::small(),
            right.iter().map(|v| v.as_slice()),
        );
        let m = mutual_top_k(&li, &ri, &slices(&left), &slices(&right), 1, 0.2);
        // Every i should match its shifted counterpart.
        assert!(
            m.len() >= 45,
            "HNSW mutual join found only {} of 50 pairs",
            m.len()
        );
        assert!(m.iter().all(|x| x.left == x.right));
    }
}
