//! Approximate nearest-neighbour search substrate for MultiEM.
//!
//! The merging phase of MultiEM builds an ANN index over the embeddings of each
//! table and queries *mutual top-K* neighbours with a distance threshold `m`
//! (Eq. 1 of the paper). The paper uses hnswlib; this crate provides:
//!
//! * [`Metric`] — cosine / Euclidean / inner-product distances;
//! * [`BruteForceIndex`] — exact k-NN, used for small inputs and as the
//!   correctness oracle in tests and recall benchmarks;
//! * [`HnswIndex`] — a from-scratch implementation of Hierarchical Navigable
//!   Small World graphs (Malkov & Yashunin, TPAMI 2020) with heuristic
//!   neighbour selection, `ef_construction` / `ef_search` control and
//!   deterministic seeding;
//! * [`mutual_top_k`] — the mutual top-K join used by the two-table merging
//!   strategy (Algorithm 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod hnsw;
pub mod metric;
pub mod mutual;

pub use bruteforce::BruteForceIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use metric::Metric;
pub use mutual::{merge_ranked, mutual_top_k, MutualMatch};

use serde::{Deserialize, Serialize};

/// One search result: the index of a stored vector and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the matched vector within the index (insertion order).
    pub index: usize,
    /// Distance from the query to the matched vector under the index metric.
    pub distance: f32,
}

impl Neighbor {
    /// Create a neighbor result.
    pub fn new(index: usize, distance: f32) -> Self {
        Self { index, distance }
    }
}

/// Vector indexes that support online insertion after construction.
///
/// Both [`BruteForceIndex`] and [`HnswIndex`] implement this: HNSW insertion
/// is `O(log N)` (the graph is built incrementally anyway), which is what the
/// streaming entity store in `multiem-online` relies on.
pub trait DynamicVectorIndex: VectorIndex {
    /// Insert a vector into the (possibly already built) index, returning its
    /// storage index.
    ///
    /// # Panics
    /// Implementations panic if `vector.len() != self.dim()`.
    fn insert(&mut self, vector: &[f32]) -> usize;
}

/// Common interface over exact and approximate vector indexes.
pub trait VectorIndex: Send + Sync {
    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance metric used by the index.
    fn metric(&self) -> Metric;

    /// Return (up to) the `k` nearest stored vectors to `query`, ordered by
    /// increasing distance.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// Borrow the stored vector at `index`.
    fn vector(&self, index: usize) -> &[f32];

    /// Approximate heap footprint of the index in bytes (memory accounting).
    fn approx_bytes(&self) -> usize;
}
