//! Distance metrics.

use serde::{Deserialize, Serialize};

/// Distance metric used by the vector indexes.
///
/// The paper uses cosine distance in the merging phase and Euclidean distance
/// in the pruning phase (Section IV-A, implementation details).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Cosine distance `1 - cos(a, b)`, range `[0, 2]`.
    #[default]
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Negative inner product (so that smaller is closer).
    InnerProduct,
}

impl Metric {
    /// Distance between two equal-length vectors under this metric.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
            }
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
            Metric::InnerProduct => -a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>(),
        }
    }

    /// Short name used in experiment records.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::Euclidean => "euclidean",
            Metric::InnerProduct => "inner-product",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let m = Metric::Cosine;
        assert!(m.distance(&a, &a) < 1e-6);
        assert!((m.distance(&a, &b) - 1.0).abs() < 1e-6);
        // Opposite vectors: distance 2.
        assert!((m.distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(m.distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn euclidean_distance_matches_hand_computed() {
        let m = Metric::Euclidean;
        assert!((m.distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(m.distance(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn inner_product_is_negated() {
        let m = Metric::InnerProduct;
        assert_eq!(m.distance(&[1.0, 2.0], &[3.0, 4.0]), -11.0);
        // Larger inner product = smaller (more negative) distance.
        assert!(m.distance(&[1.0, 0.0], &[5.0, 0.0]) < m.distance(&[1.0, 0.0], &[1.0, 0.0]));
    }

    #[test]
    fn names() {
        assert_eq!(Metric::Cosine.name(), "cosine");
        assert_eq!(Metric::Euclidean.name(), "euclidean");
        assert_eq!(Metric::InnerProduct.name(), "inner-product");
        assert_eq!(Metric::default(), Metric::Cosine);
    }
}
