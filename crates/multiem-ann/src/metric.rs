//! Distance metrics.

use serde::{Deserialize, Serialize};

/// Distance metric used by the vector indexes.
///
/// The paper uses cosine distance in the merging phase and Euclidean distance
/// in the pruning phase (Section IV-A, implementation details).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Cosine distance `1 - cos(a, b)`, range `[0, 2]`.
    #[default]
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Negative inner product (so that smaller is closer).
    InnerProduct,
}

impl Metric {
    /// Distance between two equal-length vectors under this metric.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
            }
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt(),
            Metric::InnerProduct => -a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>(),
        }
    }

    /// [`Metric::distance`] with the query's squared norm `na` precomputed.
    ///
    /// A scan evaluates one query against many stored vectors; for
    /// [`Metric::Cosine`] that makes `Σa²` loop-invariant, so hoisting it
    /// drops the per-pair work from three accumulations to two (dot product
    /// and the candidate's norm). Bit-identical to `distance`: each
    /// accumulation is its own chain in the fused loop, so summing them in
    /// separate passes yields the same floats. Other metrics have no
    /// norm term and fall through to `distance` unchanged.
    #[inline]
    pub fn distance_qnormed(&self, a: &[f32], b: &[f32], na: f32) -> f32 {
        match self {
            Metric::Cosine => {
                let (dot, nb) = dot_and_norm_lanes(a, b);
                Self::cosine_from_parts(dot, na, nb)
            }
            _ => self.distance(a, b),
        }
    }

    /// [`Metric::distance`] with **both** squared norms precomputed, leaving
    /// only the dot product per pair.
    ///
    /// This is the kernel of a *batched* scan, and the reason batching a
    /// memory- and compute-bound linear scan genuinely saves work: the
    /// candidate's norm `nb` is computed once per stored vector and shared
    /// by every query of the batch, which a single-query scan cannot do
    /// (each candidate is visited once per scan, so there is nothing to
    /// amortize its norm over). Bit-identical to `distance` for the same
    /// pair. Other metrics fall through to `distance` unchanged.
    #[inline]
    pub fn distance_prenormed(&self, a: &[f32], b: &[f32], na: f32, nb: f32) -> f32 {
        match self {
            Metric::Cosine => Self::cosine_from_parts(dot_lanes(a, b), na, nb),
            _ => self.distance(a, b),
        }
    }

    /// Squared L2 norm with the same lane structure as the norm chain of
    /// [`Metric::distance_qnormed`] (required for bit-parity when hoisted).
    #[inline]
    pub fn squared_norm(v: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks = v.chunks_exact(LANES);
        for c in &mut chunks {
            for (lane, x) in acc.iter_mut().zip(c) {
                *lane += x * x;
            }
        }
        let mut n = sum_lanes(acc);
        for x in chunks.remainder() {
            n += x * x;
        }
        n
    }

    #[inline]
    fn cosine_from_parts(dot: f32, na: f32, nb: f32) -> f32 {
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }
}

/// Accumulator lanes of the unrolled scan kernels. A single-accumulator
/// f32 reduction is bound by FMA latency (one chain); eight independent
/// lanes keep the multiplier ports busy and let LLVM vectorize the body.
const LANES: usize = 8;

#[inline]
fn sum_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Lane-unrolled dot product. Same lane assignment as the dot chain of
/// [`dot_and_norm_lanes`], so the two produce bit-identical dots.
#[inline]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for ((lane, x), y) in acc.iter_mut().zip(xs).zip(ys) {
            *lane += x * y;
        }
    }
    let mut dot = sum_lanes(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        dot += x * y;
    }
    dot
}

/// Fused lane-unrolled dot product and squared norm of `b` — one pass over
/// both slices, two independent lane sets (bit-identical to [`dot_lanes`]
/// and [`Metric::squared_norm`] computed separately).
#[inline]
fn dot_and_norm_lanes(a: &[f32], b: &[f32]) -> (f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut dot_acc = [0.0f32; LANES];
    let mut norm_acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for (((dlane, nlane), x), y) in dot_acc.iter_mut().zip(norm_acc.iter_mut()).zip(xs).zip(ys)
        {
            *dlane += x * y;
            *nlane += y * y;
        }
    }
    let mut dot = sum_lanes(dot_acc);
    let mut norm = sum_lanes(norm_acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        dot += x * y;
        norm += y * y;
    }
    (dot, norm)
}

impl Metric {
    /// Short name used in experiment records.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::Euclidean => "euclidean",
            Metric::InnerProduct => "inner-product",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_distance_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let m = Metric::Cosine;
        assert!(m.distance(&a, &a) < 1e-6);
        assert!((m.distance(&a, &b) - 1.0).abs() < 1e-6);
        // Opposite vectors: distance 2.
        assert!((m.distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        // Zero vector convention.
        assert_eq!(m.distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn euclidean_distance_matches_hand_computed() {
        let m = Metric::Euclidean;
        assert!((m.distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(m.distance(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn inner_product_is_negated() {
        let m = Metric::InnerProduct;
        assert_eq!(m.distance(&[1.0, 2.0], &[3.0, 4.0]), -11.0);
        // Larger inner product = smaller (more negative) distance.
        assert!(m.distance(&[1.0, 0.0], &[5.0, 0.0]) < m.distance(&[1.0, 0.0], &[1.0, 0.0]));
    }

    #[test]
    fn names() {
        assert_eq!(Metric::Cosine.name(), "cosine");
        assert_eq!(Metric::Euclidean.name(), "euclidean");
        assert_eq!(Metric::InnerProduct.name(), "inner-product");
        assert_eq!(Metric::default(), Metric::Cosine);
    }
}
