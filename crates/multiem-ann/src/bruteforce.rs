//! Exact k-nearest-neighbour search by linear scan.
//!
//! Used as the correctness oracle for [`crate::HnswIndex`], for the small
//! per-tuple neighbourhood computations in the pruning phase, and as a simple
//! fallback for tiny tables where building a graph index is not worth it.

use crate::metric::Metric;
use crate::{DynamicVectorIndex, Neighbor, VectorIndex};
use serde::{Deserialize, Serialize};

/// Exact nearest-neighbour index backed by a flat array of vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BruteForceIndex {
    metric: Metric,
    dim: usize,
    data: Vec<f32>,
}

impl BruteForceIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self {
            metric,
            dim,
            data: Vec::new(),
        }
    }

    /// Create an index pre-populated with `vectors`.
    ///
    /// # Panics
    /// Panics if any vector has the wrong dimensionality.
    pub fn from_vectors<'a, I>(dim: usize, metric: Metric, vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut idx = Self::new(dim, metric);
        for v in vectors {
            idx.add(v);
        }
        idx
    }

    /// Add a vector; returns its index.
    ///
    /// # Panics
    /// Panics if `vector.len() != dim`.
    pub fn add(&mut self, vector: &[f32]) -> usize {
        assert_eq!(vector.len(), self.dim, "vector dimensionality mismatch");
        self.data.extend_from_slice(vector);
        self.len() - 1
    }

    /// Search, excluding a specific stored index (useful for self-joins where
    /// the query vector itself is part of the index).
    pub fn search_excluding(
        &self,
        query: &[f32],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // The query's norm is loop-invariant across the scan; hoist it.
        let qnorm = Metric::squared_norm(query);
        let mut results: Vec<Neighbor> = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if exclude == Some(i) {
                continue;
            }
            let d = self.metric.distance_qnormed(query, self.vector(i), qnorm);
            results.push(Neighbor::new(i, d));
        }
        results.sort_by(rank);
        results.truncate(k);
        results
    }

    /// Search several queries in **one pass** over the stored vectors.
    ///
    /// The scan is candidates-outer / queries-inner, which saves real work
    /// twice over per-query scans: each stored vector is loaded once per
    /// *batch* and scored against every query while it is cache-hot, and —
    /// for [`Metric::Cosine`] — its squared norm is computed once and shared
    /// by the whole batch, so the per-pair kernel degenerates to a dot
    /// product ([`Metric::distance_prenormed`]). A single-query scan cannot
    /// amortize candidate norms (each candidate is visited once per scan).
    /// Each query's result is bit-identical to what [`VectorIndex::search`]
    /// returns for it (same floats, same distance-then-index ranking, same
    /// top-`k` cut).
    pub fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        if k == 0 || self.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        let keep = k.min(self.len());
        let qnorms: Vec<f32> = queries.iter().map(|q| Metric::squared_norm(q)).collect();
        // Per-query bounded insertion sort (ascending, worst hit last): with
        // small `k` almost every candidate costs one compare against the
        // current worst, so the inner loop stays distance-computation bound.
        let mut results = vec![Vec::with_capacity(keep + 1); queries.len()];
        for i in 0..self.len() {
            let candidate = self.vector(i);
            let cnorm = Metric::squared_norm(candidate);
            for ((query, &qnorm), hits) in queries.iter().zip(&qnorms).zip(results.iter_mut()) {
                let found = Neighbor::new(
                    i,
                    self.metric
                        .distance_prenormed(query, candidate, qnorm, cnorm),
                );
                if hits.len() == keep {
                    if rank(&found, &hits[keep - 1]) != std::cmp::Ordering::Less {
                        continue;
                    }
                    hits.pop();
                }
                let at = hits.partition_point(|h| rank(h, &found) != std::cmp::Ordering::Greater);
                hits.insert(at, found);
            }
        }
        results
    }
}

/// The ranking shared by every search path: ascending distance, ties broken
/// by insertion index for determinism.
fn rank(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.distance
        .partial_cmp(&b.distance)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.index.cmp(&b.index))
}

impl DynamicVectorIndex for BruteForceIndex {
    fn insert(&mut self, vector: &[f32]) -> usize {
        self.add(vector)
    }
}

impl VectorIndex for BruteForceIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_excluding(query, k, None)
    }

    fn vector(&self, index: usize) -> &[f32] {
        let start = index * self.dim;
        &self.data[start..start + self.dim]
    }

    fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(points: &[[f32; 2]]) -> BruteForceIndex {
        let mut idx = BruteForceIndex::new(2, Metric::Euclidean);
        for p in points {
            idx.add(p);
        }
        idx
    }

    #[test]
    fn returns_sorted_neighbors() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0], [5.0, 0.0], [0.5, 0.0]]);
        let res = idx.search(&[0.0, 0.0], 3);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].index, 0);
        assert_eq!(res[1].index, 3);
        assert_eq!(res[2].index, 1);
        assert!(res[0].distance <= res[1].distance && res[1].distance <= res[2].distance);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0]]);
        assert_eq!(idx.search(&[0.0, 0.0], 10).len(), 2);
    }

    #[test]
    fn k_zero_and_empty_index() {
        let idx = index_with(&[[0.0, 0.0]]);
        assert!(idx.search(&[0.0, 0.0], 0).is_empty());
        let empty = BruteForceIndex::new(2, Metric::Cosine);
        assert!(empty.search(&[1.0, 0.0], 3).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn exclusion_skips_self() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0]]);
        let res = idx.search_excluding(&[0.0, 0.0], 1, Some(0));
        assert_eq!(res[0].index, 1);
    }

    #[test]
    fn vector_accessor_and_bytes() {
        let idx = index_with(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(idx.vector(1), &[3.0, 4.0]);
        assert_eq!(idx.dim(), 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.approx_bytes() >= 16);
        assert_eq!(idx.metric(), Metric::Euclidean);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn add_rejects_wrong_dim() {
        let mut idx = BruteForceIndex::new(3, Metric::Cosine);
        idx.add(&[1.0, 2.0]);
    }

    #[test]
    fn batch_search_agrees_with_single_searches() {
        let mut idx = BruteForceIndex::new(4, Metric::Cosine);
        let mut x = 1.0f32;
        for _ in 0..57 {
            // Deterministic pseudo-random-ish vectors, including duplicates.
            x = (x * 7.31).fract() + 0.1;
            idx.add(&[x, 1.0 - x, x * x, 0.5]);
            idx.add(&[x, 1.0 - x, x * x, 0.5]);
        }
        let queries: Vec<Vec<f32>> = (0..9)
            .map(|q| vec![0.1 * q as f32, 1.0, 0.3, 0.2 * q as f32])
            .collect();
        let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        for k in [0, 1, 3, 200] {
            let batched = idx.search_batch(&refs, k);
            assert_eq!(batched.len(), queries.len());
            for (query, hits) in refs.iter().zip(&batched) {
                assert_eq!(hits, &idx.search(query, k));
            }
        }
        assert!(idx.search_batch(&[], 3).is_empty());
        let empty = BruteForceIndex::new(4, Metric::Cosine);
        assert_eq!(empty.search_batch(&refs, 3), vec![Vec::new(); 9]);
    }

    #[test]
    fn ties_break_by_index_for_determinism() {
        let idx = index_with(&[[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]]);
        let res = idx.search(&[0.0, 0.0], 3);
        let order: Vec<usize> = res.iter().map(|n| n.index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
