//! Exact k-nearest-neighbour search by linear scan.
//!
//! Used as the correctness oracle for [`crate::HnswIndex`], for the small
//! per-tuple neighbourhood computations in the pruning phase, and as a simple
//! fallback for tiny tables where building a graph index is not worth it.

use crate::metric::Metric;
use crate::{DynamicVectorIndex, Neighbor, VectorIndex};
use serde::{Deserialize, Serialize};

/// Exact nearest-neighbour index backed by a flat array of vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BruteForceIndex {
    metric: Metric,
    dim: usize,
    data: Vec<f32>,
}

impl BruteForceIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric) -> Self {
        Self {
            metric,
            dim,
            data: Vec::new(),
        }
    }

    /// Create an index pre-populated with `vectors`.
    ///
    /// # Panics
    /// Panics if any vector has the wrong dimensionality.
    pub fn from_vectors<'a, I>(dim: usize, metric: Metric, vectors: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut idx = Self::new(dim, metric);
        for v in vectors {
            idx.add(v);
        }
        idx
    }

    /// Add a vector; returns its index.
    ///
    /// # Panics
    /// Panics if `vector.len() != dim`.
    pub fn add(&mut self, vector: &[f32]) -> usize {
        assert_eq!(vector.len(), self.dim, "vector dimensionality mismatch");
        self.data.extend_from_slice(vector);
        self.len() - 1
    }

    /// Search, excluding a specific stored index (useful for self-joins where
    /// the query vector itself is part of the index).
    pub fn search_excluding(
        &self,
        query: &[f32],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut results: Vec<Neighbor> = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if exclude == Some(i) {
                continue;
            }
            let d = self.metric.distance(query, self.vector(i));
            results.push(Neighbor::new(i, d));
        }
        results.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        results.truncate(k);
        results
    }
}

impl DynamicVectorIndex for BruteForceIndex {
    fn insert(&mut self, vector: &[f32]) -> usize {
        self.add(vector)
    }
}

impl VectorIndex for BruteForceIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_excluding(query, k, None)
    }

    fn vector(&self, index: usize) -> &[f32] {
        let start = index * self.dim;
        &self.data[start..start + self.dim]
    }

    fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_with(points: &[[f32; 2]]) -> BruteForceIndex {
        let mut idx = BruteForceIndex::new(2, Metric::Euclidean);
        for p in points {
            idx.add(p);
        }
        idx
    }

    #[test]
    fn returns_sorted_neighbors() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0], [5.0, 0.0], [0.5, 0.0]]);
        let res = idx.search(&[0.0, 0.0], 3);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].index, 0);
        assert_eq!(res[1].index, 3);
        assert_eq!(res[2].index, 1);
        assert!(res[0].distance <= res[1].distance && res[1].distance <= res[2].distance);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0]]);
        assert_eq!(idx.search(&[0.0, 0.0], 10).len(), 2);
    }

    #[test]
    fn k_zero_and_empty_index() {
        let idx = index_with(&[[0.0, 0.0]]);
        assert!(idx.search(&[0.0, 0.0], 0).is_empty());
        let empty = BruteForceIndex::new(2, Metric::Cosine);
        assert!(empty.search(&[1.0, 0.0], 3).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn exclusion_skips_self() {
        let idx = index_with(&[[0.0, 0.0], [1.0, 0.0]]);
        let res = idx.search_excluding(&[0.0, 0.0], 1, Some(0));
        assert_eq!(res[0].index, 1);
    }

    #[test]
    fn vector_accessor_and_bytes() {
        let idx = index_with(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(idx.vector(1), &[3.0, 4.0]);
        assert_eq!(idx.dim(), 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.approx_bytes() >= 16);
        assert_eq!(idx.metric(), Metric::Euclidean);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn add_rejects_wrong_dim() {
        let mut idx = BruteForceIndex::new(3, Metric::Cosine);
        idx.add(&[1.0, 2.0]);
    }

    #[test]
    fn ties_break_by_index_for_determinism() {
        let idx = index_with(&[[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]]);
        let res = idx.search(&[0.0, 0.0], 3);
        let order: Vec<usize> = res.iter().map(|n| n.index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
