//! Wall-clock and memory profiling used by the efficiency experiments.
//!
//! The paper reports per-method running time (Table V), per-method memory
//! usage (Table VI) and per-module running time (Figure 5). Wall-clock time is
//! measured directly; memory is tracked through a **byte-accounting model**:
//! every method reports the sizes of the large structures it materialises
//! (embeddings, ANN indexes, similarity graphs, pair lists). This is an
//! explicit substitution for the RSS measurements of the paper — absolute
//! numbers differ, but the relative ordering of methods is preserved because
//! the accounted structures dominate the real footprint as well.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Records named phase durations (Figure 5: S, R, M, P, ...).
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure and record its duration under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Record an externally measured duration.
    pub fn record(&mut self, name: &str, duration: Duration) {
        self.phases.push((name.to_string(), duration));
    }

    /// All recorded phases in insertion order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of the phase with the given name (summed if recorded twice).
    pub fn phase(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .sum()
    }
}

/// Byte-accounting of the large structures a method materialises.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemoryAccount {
    components: BTreeMap<String, usize>,
}

impl MemoryAccount {
    /// Create an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `bytes` under `component` (accumulates across calls).
    pub fn add(&mut self, component: &str, bytes: usize) {
        *self.components.entry(component.to_string()).or_insert(0) += bytes;
    }

    /// Record the maximum of the current and new value for `component` (useful
    /// for structures that are rebuilt every hierarchy level — peak matters).
    pub fn add_peak(&mut self, component: &str, bytes: usize) {
        let entry = self.components.entry(component.to_string()).or_insert(0);
        *entry = (*entry).max(bytes);
    }

    /// Total accounted bytes.
    pub fn total(&self) -> usize {
        self.components.values().sum()
    }

    /// Per-component breakdown.
    pub fn components(&self) -> &BTreeMap<String, usize> {
        &self.components
    }
}

/// The profile of one method run: total wall-clock time, per-phase times and
/// accounted memory.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Total wall-clock runtime.
    pub runtime: Duration,
    /// Per-phase durations (may be empty for baselines).
    pub phase_times: Vec<(String, Duration)>,
    /// Accounted memory.
    pub memory: MemoryAccount,
}

impl RunProfile {
    /// Build a profile from a timer and a memory account.
    pub fn new(timer: PhaseTimer, memory: MemoryAccount) -> Self {
        Self {
            runtime: timer.total(),
            phase_times: timer.phases().to_vec(),
            memory,
        }
    }
}

/// Format a duration the way the paper's tables do (`6.1s`, `4.2m`, `1.3h`),
/// with a millisecond form for the sub-second runtimes that small-scale
/// harness runs produce.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1000.0)
    } else if secs < 60.0 {
        format!("{secs:.1}s")
    } else if secs < 3600.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{:.1}h", secs / 3600.0)
    }
}

/// Format a byte count the way the paper's tables do: `17.5G`, `43.9M`, `512K`.
pub fn format_bytes(bytes: usize) -> String {
    const K: f64 = 1024.0;
    let b = bytes as f64;
    if b >= K * K * K {
        format!("{:.1}G", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.1}M", b / (K * K))
    } else if b >= K {
        format!("{:.1}K", b / K)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_phases_in_order() {
        let mut t = PhaseTimer::new();
        let out = t.time("representation", || 21 * 2);
        assert_eq!(out, 42);
        t.record("merging", Duration::from_millis(5));
        t.record("merging", Duration::from_millis(7));
        assert_eq!(t.phases().len(), 3);
        assert_eq!(t.phase("merging"), Duration::from_millis(12));
        assert!(t.total() >= Duration::from_millis(12));
        assert_eq!(t.phase("missing"), Duration::ZERO);
    }

    #[test]
    fn memory_account_accumulates_and_peaks() {
        let mut m = MemoryAccount::new();
        m.add("embeddings", 1000);
        m.add("embeddings", 500);
        m.add_peak("index", 2000);
        m.add_peak("index", 1500);
        assert_eq!(m.total(), 1500 + 2000);
        assert_eq!(m.components()["embeddings"], 1500);
        assert_eq!(m.components()["index"], 2000);
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(format_duration(Duration::from_millis(47)), "47ms");
        assert_eq!(format_duration(Duration::from_secs_f64(6.13)), "6.1s");
        assert_eq!(format_duration(Duration::from_secs(252)), "4.2m");
        assert_eq!(format_duration(Duration::from_secs(4680)), "1.3h");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.0K");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.0M");
        assert_eq!(format_bytes(175 * 1024 * 1024 * 1024 / 10), "17.5G");
    }

    #[test]
    fn run_profile_combines_timer_and_memory() {
        let mut t = PhaseTimer::new();
        t.record("merging", Duration::from_millis(3));
        let mut m = MemoryAccount::new();
        m.add("index", 100);
        let p = RunProfile::new(t, m);
        assert_eq!(p.phase_times.len(), 1);
        assert_eq!(p.memory.total(), 100);
        assert_eq!(p.runtime, Duration::from_millis(3));
    }
}
