//! Evaluation harness for the MultiEM reproduction.
//!
//! Provides the metrics and measurement utilities used by every experiment:
//!
//! * [`metrics`] — tuple-exact precision / recall / F1 and the looser pair-F1
//!   (Example 2 of the paper);
//! * [`sampling`] — labelled pair sampling for the supervised baselines
//!   (5 % train / 5 % validation, P negatives per positive, Section IV-A);
//! * [`profile`] — wall-clock phase timing and byte-accounted memory usage
//!   (Tables V and VI, Figure 5);
//! * [`report`] — plain-text / markdown table rendering for the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod report;
pub mod sampling;

pub use metrics::{evaluate, pair_metrics, tuple_metrics, EvaluationReport, Metrics};
pub use profile::{format_bytes, format_duration, MemoryAccount, PhaseTimer, RunProfile};
pub use report::TextTable;
pub use sampling::{sample_labeled_pairs, LabeledPair, SamplingConfig};
