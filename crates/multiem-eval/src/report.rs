//! Plain-text table rendering for the bench binaries.
//!
//! Every experiment binary prints its result as an aligned text table whose
//! rows mirror the corresponding table or figure of the paper, so the output
//! can be compared side by side with the publication.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn add_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Table V style", &["Method", "Geo", "Music-20"]);
        t.add_row(["MultiEM", "6.1s", "34.6s"]);
        t.add_row(["MSCD-HAC", "1.5h", "-"]);
        let text = t.render();
        assert!(text.contains("== Table V style =="));
        assert!(text.contains("Method"));
        let lines: Vec<&str> = text.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Columns are aligned: "Geo" column starts at the same offset in both rows.
        let header_pos = lines[1].find("Geo").unwrap();
        let row_pos = lines[3].find("6.1s").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("", &["a", "b", "c"]);
        t.add_row(["only-one"]);
        assert_eq!(t.rows()[0].len(), 3);
        assert_eq!(t.num_rows(), 1);
        assert!(!t.render().contains("== "));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new("Results", &["x", "y"]);
        t.add_row(["1", "2"]);
        let md = t.render_markdown();
        assert!(md.contains("### Results"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
