//! Matching quality metrics.
//!
//! The paper evaluates with two families of metrics (Section IV-A):
//!
//! * **Tuple metrics** (P / R / F1): a predicted tuple counts as correct only
//!   if it matches a ground-truth tuple *exactly*.
//! * **Pair-F1**: both prediction and ground truth are decomposed into entity
//!   pairs and precision / recall / F1 are computed over pairs (Example 2) —
//!   a looser metric that lets two-table baselines be compared fairly.

use multiem_table::{GroundTruth, MatchTuple};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Precision / recall / F1 triple (stored as fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Metrics {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score (harmonic mean of precision and recall).
    pub f1: f64,
}

impl Metrics {
    /// Build metrics from counts of true positives, predicted positives and
    /// actual positives.
    pub fn from_counts(true_positives: usize, predicted: usize, actual: usize) -> Self {
        let precision = if predicted == 0 {
            0.0
        } else {
            true_positives as f64 / predicted as f64
        };
        let recall = if actual == 0 {
            0.0
        } else {
            true_positives as f64 / actual as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }

    /// Percentage rendering (the paper reports percentages, e.g. `90.9`).
    pub fn as_percentages(&self) -> (f64, f64, f64) {
        (self.precision * 100.0, self.recall * 100.0, self.f1 * 100.0)
    }
}

/// Combined tuple-level and pair-level metrics for one method on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EvaluationReport {
    /// Exact-tuple precision / recall / F1.
    pub tuple: Metrics,
    /// Pair-level precision / recall / F1.
    pub pair: Metrics,
}

/// Tuple-exact metrics: a prediction is correct only if it equals a truth
/// tuple exactly (same member set).
pub fn tuple_metrics(predictions: &[MatchTuple], truth: &GroundTruth) -> Metrics {
    let predicted: BTreeSet<&MatchTuple> = predictions.iter().filter(|t| t.len() >= 2).collect();
    let actual: BTreeSet<&MatchTuple> = truth.tuples().iter().collect();
    let tp = predicted.iter().filter(|t| actual.contains(*t)).count();
    Metrics::from_counts(tp, predicted.len(), actual.len())
}

/// Pair-level metrics: both sides are decomposed into unordered entity pairs.
pub fn pair_metrics(predictions: &[MatchTuple], truth: &GroundTruth) -> Metrics {
    let mut predicted_pairs = BTreeSet::new();
    for t in predictions {
        for (a, b) in t.pairs() {
            predicted_pairs.insert((a.min(b), a.max(b)));
        }
    }
    let truth_pairs = truth.pairs();
    let tp = predicted_pairs
        .iter()
        .filter(|p| truth_pairs.contains(p))
        .count();
    Metrics::from_counts(tp, predicted_pairs.len(), truth_pairs.len())
}

/// Convenience: compute both tuple and pair metrics.
pub fn evaluate(predictions: &[MatchTuple], truth: &GroundTruth) -> EvaluationReport {
    EvaluationReport {
        tuple: tuple_metrics(predictions, truth),
        pair: pair_metrics(predictions, truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_table::EntityId;

    fn id(source: u32, row: u32) -> EntityId {
        EntityId::new(source, row)
    }

    fn truth() -> GroundTruth {
        GroundTruth::new(vec![
            MatchTuple::new([id(0, 1), id(1, 2), id(2, 3)]),
            MatchTuple::new([id(0, 5), id(3, 0)]),
        ])
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let preds = truth().tuples().to_vec();
        let report = evaluate(&preds, &truth());
        assert_eq!(report.tuple.f1, 1.0);
        assert_eq!(report.pair.f1, 1.0);
        assert_eq!(report.tuple.precision, 1.0);
        assert_eq!(report.pair.recall, 1.0);
    }

    #[test]
    fn empty_prediction_scores_zero() {
        let report = evaluate(&[], &truth());
        assert_eq!(report.tuple.f1, 0.0);
        assert_eq!(report.pair.f1, 0.0);
    }

    #[test]
    fn paper_example_2_pair_f1() {
        // Truth tuple (1,2,3), prediction (1,2,4): tuple-F1 = 0, pair P=R=1/3.
        let truth = GroundTruth::new(vec![MatchTuple::new([id(0, 1), id(0, 2), id(0, 3)])]);
        let preds = vec![MatchTuple::new([id(0, 1), id(0, 2), id(0, 4)])];
        let tuple = tuple_metrics(&preds, &truth);
        let pair = pair_metrics(&preds, &truth);
        assert_eq!(tuple.f1, 0.0);
        assert!((pair.precision - 1.0 / 3.0).abs() < 1e-9);
        assert!((pair.recall - 1.0 / 3.0).abs() < 1e-9);
        assert!((pair.f1 - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn partial_tuple_prediction() {
        // Predicting only a subset (0:1, 1:2) of a 3-member truth tuple is a
        // tuple miss but 1 correct pair of 3.
        let preds = vec![
            MatchTuple::new([id(0, 1), id(1, 2)]),
            MatchTuple::new([id(0, 5), id(3, 0)]),
        ];
        let report = evaluate(&preds, &truth());
        assert!((report.tuple.precision - 0.5).abs() < 1e-9);
        assert!((report.tuple.recall - 0.5).abs() < 1e-9);
        assert!((report.pair.precision - 1.0).abs() < 1e-9);
        assert!((report.pair.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn singleton_predictions_are_ignored_for_tuple_metrics() {
        let preds = vec![
            MatchTuple::new([id(0, 1)]),
            MatchTuple::new([id(0, 5), id(3, 0)]),
        ];
        let m = tuple_metrics(&preds, &truth());
        assert!((m.precision - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_predictions_do_not_inflate_precision() {
        let t = MatchTuple::new([id(0, 5), id(3, 0)]);
        let preds = vec![t.clone(), t.clone(), t];
        let m = tuple_metrics(&preds, &truth());
        assert!((m.precision - 1.0).abs() < 1e-9);
        assert!((m.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_counts_edge_cases() {
        let zero = Metrics::from_counts(0, 0, 0);
        assert_eq!(zero.f1, 0.0);
        let m = Metrics::from_counts(5, 10, 20);
        assert!((m.precision - 0.5).abs() < 1e-9);
        assert!((m.recall - 0.25).abs() < 1e-9);
        let (p, _r, f1) = m.as_percentages();
        assert!((p - 50.0).abs() < 1e-9);
        assert!(f1 > 0.0 && f1 < 100.0);
    }

    #[test]
    fn empty_truth_yields_zero_recall_denominator_handling() {
        let empty = GroundTruth::new(vec![]);
        let preds = vec![MatchTuple::new([id(0, 0), id(1, 0)])];
        let m = evaluate(&preds, &empty);
        assert_eq!(m.tuple.recall, 0.0);
        assert_eq!(m.tuple.precision, 0.0);
        assert_eq!(m.pair.recall, 0.0);
    }
}
