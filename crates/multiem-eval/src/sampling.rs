//! Labelled-pair sampling for the supervised / semi-supervised baselines.
//!
//! The paper trains PromptEM, Ditto and ALMSER-GB on 5 % of the ground-truth
//! pairs (plus 5 % validation) and evaluates on all ground-truth pairs mixed
//! with `P` sampled mismatched pairs per positive pair. This module reproduces
//! that protocol over the synthetic datasets.

use multiem_table::{Dataset, EntityId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One labelled entity pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledPair {
    /// First entity (smaller id).
    pub a: EntityId,
    /// Second entity (larger id).
    pub b: EntityId,
    /// Whether the pair is a true match.
    pub label: bool,
}

impl LabeledPair {
    /// Create a pair, normalising the order of the two ids.
    pub fn new(a: EntityId, b: EntityId, label: bool) -> Self {
        Self {
            a: a.min(b),
            b: a.max(b),
            label,
        }
    }
}

/// Configuration of the sampling protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Fraction of ground-truth pairs used as positives (the paper uses 0.05).
    pub positive_fraction: f64,
    /// Number of sampled negative pairs per positive pair.
    pub negatives_per_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            positive_fraction: 0.05,
            negatives_per_positive: 3,
            seed: 7,
        }
    }
}

/// Sample labelled pairs from a dataset with ground truth.
///
/// Positives are a random fraction of the ground-truth pairs; negatives are
/// random cross-source entity pairs that are *not* in the ground truth. Pairs
/// are returned shuffled.
pub fn sample_labeled_pairs(dataset: &Dataset, config: &SamplingConfig) -> Vec<LabeledPair> {
    let Some(gt) = dataset.ground_truth() else {
        return Vec::new();
    };
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let truth_pairs: Vec<(EntityId, EntityId)> = gt.pairs().into_iter().collect();
    let truth_set: BTreeSet<(EntityId, EntityId)> = truth_pairs.iter().copied().collect();

    let mut positives = truth_pairs.clone();
    positives.shuffle(&mut rng);
    let keep = ((positives.len() as f64 * config.positive_fraction).ceil() as usize)
        .clamp(1.min(positives.len()), positives.len());
    positives.truncate(keep);

    let mut out: Vec<LabeledPair> = positives
        .iter()
        .map(|&(a, b)| LabeledPair::new(a, b, true))
        .collect();

    // Negatives: random pairs of entities from different sources not in truth.
    let all_ids: Vec<EntityId> = dataset.entity_ids().collect();
    let wanted_negatives = out.len() * config.negatives_per_positive;
    let mut attempts = 0usize;
    let max_attempts = wanted_negatives * 20 + 100;
    let mut negatives = BTreeSet::new();
    while negatives.len() < wanted_negatives && attempts < max_attempts && all_ids.len() >= 2 {
        attempts += 1;
        let a = all_ids[rng.gen_range(0..all_ids.len())];
        let b = all_ids[rng.gen_range(0..all_ids.len())];
        if a == b || a.source == b.source {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if truth_set.contains(&key) {
            continue;
        }
        negatives.insert(key);
    }
    out.extend(
        negatives
            .into_iter()
            .map(|(a, b)| LabeledPair::new(a, b, false)),
    );
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_table::{GroundTruth, MatchTuple, Record, Schema, Table};

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("tiny", schema.clone());
        for s in 0..3 {
            let records: Vec<Record> = (0..10)
                .map(|i| Record::from_texts([format!("item {s} {i}")]))
                .collect();
            ds.add_table(Table::with_records(format!("s{s}"), schema.clone(), records).unwrap())
                .unwrap();
        }
        let tuples: Vec<MatchTuple> = (0..8)
            .map(|i| {
                MatchTuple::new([
                    EntityId::new(0, i),
                    EntityId::new(1, i),
                    EntityId::new(2, i),
                ])
            })
            .collect();
        ds.set_ground_truth(GroundTruth::new(tuples));
        ds
    }

    #[test]
    fn samples_requested_proportions() {
        let ds = tiny_dataset();
        let cfg = SamplingConfig {
            positive_fraction: 0.25,
            negatives_per_positive: 2,
            seed: 1,
        };
        let pairs = sample_labeled_pairs(&ds, &cfg);
        let positives = pairs.iter().filter(|p| p.label).count();
        let negatives = pairs.iter().filter(|p| !p.label).count();
        // 8 tuples * 3 pairs = 24 truth pairs; 25 % = 6 positives.
        assert_eq!(positives, 6);
        assert_eq!(negatives, 12);
    }

    #[test]
    fn negative_pairs_are_not_in_ground_truth() {
        let ds = tiny_dataset();
        let truth = ds.ground_truth().unwrap().pairs();
        let pairs = sample_labeled_pairs(&ds, &SamplingConfig::default());
        for p in pairs.iter().filter(|p| !p.label) {
            assert!(!truth.contains(&(p.a, p.b)));
            assert_ne!(p.a.source, p.b.source, "negatives must be cross-source");
        }
    }

    #[test]
    fn positive_pairs_are_in_ground_truth() {
        let ds = tiny_dataset();
        let truth = ds.ground_truth().unwrap().pairs();
        let pairs = sample_labeled_pairs(&ds, &SamplingConfig::default());
        for p in pairs.iter().filter(|p| p.label) {
            assert!(truth.contains(&(p.a, p.b)));
        }
        assert!(pairs.iter().any(|p| p.label));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = tiny_dataset();
        let cfg = SamplingConfig::default();
        assert_eq!(
            sample_labeled_pairs(&ds, &cfg),
            sample_labeled_pairs(&ds, &cfg)
        );
    }

    #[test]
    fn dataset_without_ground_truth_yields_nothing() {
        let schema = Schema::new(["title"]).shared();
        let ds = Dataset::new("no-gt", schema);
        assert!(sample_labeled_pairs(&ds, &SamplingConfig::default()).is_empty());
    }

    #[test]
    fn labeled_pair_normalises_order() {
        let a = EntityId::new(2, 0);
        let b = EntityId::new(0, 1);
        let p = LabeledPair::new(a, b, true);
        assert!(p.a < p.b);
    }
}
