//! Records (entities): one row of a source table.

use crate::schema::{AttrId, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of one attribute of an entity.
///
/// The benchmark datasets mix free text (`title`), numerics (`latitude`,
/// `year`) and missing values, so the value model distinguishes those three
/// cases. Everything is ultimately serialized to text before embedding
/// (Section II-B of the paper), but keeping numbers typed lets the dataset
/// generators apply numeric noise and lets downstream code do typed reasoning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Free-form text.
    Text(String),
    /// Numeric value (stored as f64; integers round-trip exactly up to 2^53).
    Number(f64),
    /// Missing / unknown value.
    Null,
}

impl Value {
    /// Text rendering used by entity serialization. `Null` renders as an empty
    /// string, numbers drop a trailing `.0` so `2018.0` serializes as `2018`.
    pub fn render(&self) -> String {
        match self {
            Value::Text(s) => s.clone(),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Null => String::new(),
        }
    }

    /// Whether the value is missing or renders to an empty / whitespace string.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Text(s) => s.trim().is_empty(),
            Value::Number(_) => false,
        }
    }

    /// Borrow the text content if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric content if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// One entity: an ordered vector of attribute values aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values. The caller is responsible for aligning the
    /// values with the table schema ([`crate::Table::push`] checks arity).
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Build a record of text values.
    pub fn from_texts<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            values: texts.into_iter().map(|t| Value::Text(t.into())).collect(),
        }
    }

    /// Number of attribute values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values (used by the dataset corruption model and
    /// by the attribute-shuffle step of Algorithm 1).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Value at attribute index `attr`.
    pub fn value(&self, attr: AttrId) -> Option<&Value> {
        self.values.get(attr)
    }

    /// Value looked up by attribute name via the schema.
    pub fn value_by_name<'a>(&'a self, schema: &Schema, name: &str) -> Option<&'a Value> {
        schema.attr_id(name).and_then(|id| self.values.get(id))
    }

    /// Replace the value at `attr`, returning the previous value.
    pub fn set_value(&mut self, attr: AttrId, value: Value) -> Option<Value> {
        self.values
            .get_mut(attr)
            .map(|slot| std::mem::replace(slot, value))
    }

    /// Number of non-empty values.
    pub fn non_empty_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_number_drops_trailing_zero() {
        assert_eq!(Value::Number(2018.0).render(), "2018");
        assert_eq!(Value::Number(3.5).render(), "3.5");
        assert_eq!(Value::Number(-7.0).render(), "-7");
    }

    #[test]
    fn null_and_blank_are_empty() {
        assert!(Value::Null.is_empty());
        assert!(Value::Text("   ".into()).is_empty());
        assert!(!Value::Text("x".into()).is_empty());
        assert!(!Value::Number(0.0).is_empty());
    }

    #[test]
    fn record_accessors() {
        let schema = Schema::new(["title", "artist"]);
        let mut r = Record::from_texts(["Chameleon", "Tim O'Brien"]);
        assert_eq!(r.arity(), 2);
        assert_eq!(
            r.value_by_name(&schema, "artist").unwrap().render(),
            "Tim O'Brien"
        );
        assert_eq!(r.value_by_name(&schema, "missing"), None);

        let old = r.set_value(0, Value::Text("Hitmen".into())).unwrap();
        assert_eq!(old.render(), "Chameleon");
        assert_eq!(r.value(0).unwrap().render(), "Hitmen");
        assert_eq!(r.set_value(9, Value::Null), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::Text("a".into()));
        assert_eq!(Value::from(3i64), Value::Number(3.0));
        assert_eq!(Value::from(2.5f64), Value::Number(2.5));
    }

    #[test]
    fn non_empty_count_ignores_nulls() {
        let r = Record::new(vec![
            Value::Null,
            Value::Text("x".into()),
            Value::Text(String::new()),
        ]);
        assert_eq!(r.non_empty_count(), 1);
    }
}
