//! Error type for the table substrate.

use std::fmt;

/// Errors produced while constructing or manipulating tables and datasets.
#[derive(Debug)]
pub enum TableError {
    /// A record was added whose arity does not match the schema.
    ArityMismatch {
        /// Number of attributes defined by the schema.
        expected: usize,
        /// Number of values supplied by the record.
        got: usize,
    },
    /// An attribute name was looked up that does not exist in the schema.
    UnknownAttribute(String),
    /// Two tables with different schemas were combined into one dataset.
    SchemaMismatch {
        /// Name of the offending table.
        table: String,
    },
    /// A source id referenced a table that is not part of the dataset.
    UnknownSource(u32),
    /// A row index referenced a record that does not exist in its table.
    RowOutOfBounds {
        /// Source table id.
        source: u32,
        /// Offending row index.
        row: u32,
        /// Number of rows in the table.
        len: usize,
    },
    /// Underlying I/O failure (CSV import/export).
    Io(std::io::Error),
    /// CSV parsing failure.
    Csv(csv::Error),
    /// A ground-truth tuple referenced fewer than two entities.
    DegenerateTuple(usize),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record has {got} values but schema defines {expected} attributes"
                )
            }
            TableError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            TableError::SchemaMismatch { table } => {
                write!(f, "table `{table}` does not share the dataset schema")
            }
            TableError::UnknownSource(s) => write!(f, "unknown source table id {s}"),
            TableError::RowOutOfBounds { source, row, len } => {
                write!(f, "row {row} out of bounds for source {source} (len {len})")
            }
            TableError::Io(e) => write!(f, "I/O error: {e}"),
            TableError::Csv(e) => write!(f, "CSV error: {e}"),
            TableError::DegenerateTuple(n) => {
                write!(
                    f,
                    "ground-truth tuple must contain at least 2 entities, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            TableError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

impl From<csv::Error> for TableError {
    fn from(e: csv::Error) -> Self {
        TableError::Csv(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TableError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));

        let e = TableError::UnknownAttribute("title".into());
        assert!(e.to_string().contains("title"));

        let e = TableError::RowOutOfBounds {
            source: 1,
            row: 9,
            len: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: TableError = io.into();
        assert!(matches!(e, TableError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
