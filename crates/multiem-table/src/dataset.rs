//! Multi-source datasets and ground truth.

use crate::error::TableError;
use crate::ids::{EntityId, SourceId};
use crate::record::Record;
use crate::schema::Schema;
use crate::table::Table;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A matched tuple: a set of entities (from any sources) that refer to the same
/// real-world entity. Stored sorted so that equal tuples compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MatchTuple {
    members: Vec<EntityId>,
}

impl MatchTuple {
    /// Build a tuple from entity ids; duplicates are removed and members sorted.
    pub fn new<I: IntoIterator<Item = EntityId>>(members: I) -> Self {
        let set: BTreeSet<EntityId> = members.into_iter().collect();
        Self {
            members: set.into_iter().collect(),
        }
    }

    /// Build a tuple, failing if fewer than two distinct members are provided.
    pub fn try_new<I: IntoIterator<Item = EntityId>>(members: I) -> Result<Self> {
        let t = Self::new(members);
        if t.members.len() < 2 {
            return Err(TableError::DegenerateTuple(t.members.len()));
        }
        Ok(t)
    }

    /// Sorted members of the tuple.
    pub fn members(&self) -> &[EntityId] {
        &self.members
    }

    /// Number of entities in the tuple.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the tuple has no members (only possible via `new` with an empty
    /// iterator).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: EntityId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Enumerate all unordered entity pairs inside the tuple (used by the
    /// pair-F1 metric, Example 2 in the paper).
    pub fn pairs(&self) -> Vec<(EntityId, EntityId)> {
        let mut out =
            Vec::with_capacity(self.members.len() * (self.members.len().saturating_sub(1)) / 2);
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                out.push((self.members[i], self.members[j]));
            }
        }
        out
    }
}

/// Ground truth for a dataset: the set of true matched tuples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    tuples: Vec<MatchTuple>,
}

impl GroundTruth {
    /// Build ground truth from tuples (singletons are dropped).
    pub fn new(tuples: Vec<MatchTuple>) -> Self {
        Self {
            tuples: tuples.into_iter().filter(|t| t.len() >= 2).collect(),
        }
    }

    /// The true tuples.
    pub fn tuples(&self) -> &[MatchTuple] {
        &self.tuples
    }

    /// Number of true tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All true matched pairs implied by the tuples (deduplicated, ordered pairs
    /// with the smaller id first).
    pub fn pairs(&self) -> BTreeSet<(EntityId, EntityId)> {
        let mut set = BTreeSet::new();
        for t in &self.tuples {
            for (a, b) in t.pairs() {
                set.insert((a.min(b), a.max(b)));
            }
        }
        set
    }

    /// Total number of entities covered by at least one tuple.
    pub fn covered_entities(&self) -> usize {
        let mut set = BTreeSet::new();
        for t in &self.tuples {
            set.extend(t.members().iter().copied());
        }
        set.len()
    }
}

/// The multi-table EM input: `S` tables sharing a schema, plus optional ground
/// truth (used only for evaluation, never by the unsupervised pipeline).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (e.g. "music-20").
    name: String,
    schema: Arc<Schema>,
    tables: Vec<Table>,
    ground_truth: Option<GroundTruth>,
}

impl Dataset {
    /// Create an empty dataset with the given schema.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Self {
            name: name.into(),
            schema,
            tables: Vec::new(),
            ground_truth: None,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Add a source table; its schema must match the dataset schema.
    pub fn add_table(&mut self, table: Table) -> Result<SourceId> {
        if !table.schema().same_shape(&self.schema) {
            return Err(TableError::SchemaMismatch {
                table: table.name().to_string(),
            });
        }
        self.tables.push(table);
        Ok((self.tables.len() - 1) as SourceId)
    }

    /// Attach ground truth (evaluation only).
    pub fn set_ground_truth(&mut self, gt: GroundTruth) {
        self.ground_truth = Some(gt);
    }

    /// The ground truth, if attached.
    pub fn ground_truth(&self) -> Option<&GroundTruth> {
        self.ground_truth.as_ref()
    }

    /// Number of source tables `S`.
    pub fn num_sources(&self) -> usize {
        self.tables.len()
    }

    /// All source tables in source-id order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Mutable source tables.
    pub fn tables_mut(&mut self) -> &mut [Table] {
        &mut self.tables
    }

    /// Table with the given source id.
    pub fn table(&self, source: SourceId) -> Result<&Table> {
        self.tables
            .get(source as usize)
            .ok_or(TableError::UnknownSource(source))
    }

    /// Record of a specific entity.
    pub fn record(&self, id: EntityId) -> Result<&Record> {
        let table = self.table(id.source)?;
        table
            .record(id.row as usize)
            .ok_or(TableError::RowOutOfBounds {
                source: id.source,
                row: id.row,
                len: table.len(),
            })
    }

    /// Total number of entities across all tables.
    pub fn total_entities(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Iterate every entity id in the dataset (source-major order).
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.tables.iter().enumerate().flat_map(|(s, t)| {
            (0..t.len() as u32).map(move |row| EntityId::new(s as SourceId, row))
        })
    }

    /// Concatenate all tables into one logical list of `(EntityId, &Record)`.
    /// This is the `concat` step of Algorithm 1 (attribute selection).
    pub fn concat(&self) -> Vec<(EntityId, &Record)> {
        let mut out = Vec::with_capacity(self.total_entities());
        for (s, t) in self.tables.iter().enumerate() {
            for (row, r) in t.iter() {
                out.push((EntityId::new(s as SourceId, row), r));
            }
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.tables.iter().map(Table::approx_bytes).sum::<usize>() + self.name.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn make_dataset() -> Dataset {
        let schema = Schema::new(["title", "artist"]).shared();
        let mut ds = Dataset::new("test", schema.clone());
        let t1 = Table::with_records(
            "A",
            schema.clone(),
            vec![
                Record::from_texts(["x", "1"]),
                Record::from_texts(["y", "2"]),
            ],
        )
        .unwrap();
        let t2 = Table::with_records("B", schema.clone(), vec![Record::from_texts(["x'", "1"])])
            .unwrap();
        ds.add_table(t1).unwrap();
        ds.add_table(t2).unwrap();
        ds
    }

    #[test]
    fn tuple_dedups_and_sorts() {
        let t = MatchTuple::new([
            EntityId::new(1, 0),
            EntityId::new(0, 3),
            EntityId::new(1, 0),
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.members()[0], EntityId::new(0, 3));
        assert!(t.contains(EntityId::new(1, 0)));
        assert!(!t.contains(EntityId::new(2, 2)));
    }

    #[test]
    fn try_new_rejects_singletons() {
        assert!(MatchTuple::try_new([EntityId::new(0, 0)]).is_err());
        assert!(MatchTuple::try_new([EntityId::new(0, 0), EntityId::new(1, 0)]).is_ok());
    }

    #[test]
    fn tuple_pairs_enumeration() {
        let t = MatchTuple::new([
            EntityId::new(0, 0),
            EntityId::new(1, 0),
            EntityId::new(2, 0),
        ]);
        assert_eq!(t.pairs().len(), 3);
    }

    #[test]
    fn ground_truth_pairs_dedup() {
        let a = EntityId::new(0, 0);
        let b = EntityId::new(1, 0);
        let c = EntityId::new(2, 0);
        let gt = GroundTruth::new(vec![MatchTuple::new([a, b, c]), MatchTuple::new([a, b])]);
        assert_eq!(gt.len(), 2);
        assert_eq!(gt.pairs().len(), 3);
        assert_eq!(gt.covered_entities(), 3);
    }

    #[test]
    fn ground_truth_drops_singletons() {
        let gt = GroundTruth::new(vec![MatchTuple::new([EntityId::new(0, 0)])]);
        assert!(gt.is_empty());
    }

    #[test]
    fn dataset_accessors() {
        let ds = make_dataset();
        assert_eq!(ds.num_sources(), 2);
        assert_eq!(ds.total_entities(), 3);
        assert_eq!(ds.entity_ids().count(), 3);
        assert_eq!(ds.concat().len(), 3);
        let rec = ds.record(EntityId::new(1, 0)).unwrap();
        assert_eq!(rec.value(0).unwrap().render(), "x'");
        assert!(ds.record(EntityId::new(1, 5)).is_err());
        assert!(ds.record(EntityId::new(9, 0)).is_err());
    }

    #[test]
    fn add_table_rejects_schema_mismatch() {
        let mut ds = make_dataset();
        let other = Schema::new(["completely", "different", "shape"]).shared();
        let bad = Table::new("C", other);
        assert!(matches!(
            ds.add_table(bad),
            Err(TableError::SchemaMismatch { .. })
        ));
    }
}
