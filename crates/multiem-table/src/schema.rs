//! Schemas: ordered, named attributes shared by every table of a dataset.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
pub type AttrId = usize;

/// A single attribute (column) definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (e.g. `title`, `artist`).
    pub name: String,
}

impl Attribute {
    /// Create an attribute with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

/// An ordered collection of attributes.
///
/// The MultiEM problem definition assumes all `S` tables share the same schema;
/// [`crate::Dataset`] enforces this. `Schema` is cheaply cloneable (callers
/// normally share it through [`Schema::shared`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
    #[serde(skip)]
    index: HashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from attribute names. Duplicate names keep the first
    /// occurrence's index.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attributes: Vec<Attribute> = names
            .into_iter()
            .map(|n| Attribute::new(n.into()))
            .collect();
        let mut index = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            index.entry(a.name.clone()).or_insert(i);
        }
        Self { attributes, index }
    }

    /// Wrap this schema in an [`Arc`] for sharing across tables.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute names, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    /// Resolve an attribute name to its index.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        // The map may be empty if the schema was deserialized; fall back to a scan.
        if self.index.is_empty() && !self.attributes.is_empty() {
            return self.attributes.iter().position(|a| a.name == name);
        }
        self.index.get(name).copied()
    }

    /// Name of the attribute at `id`, if any.
    pub fn name(&self, id: AttrId) -> Option<&str> {
        self.attributes.get(id).map(|a| a.name.as_str())
    }

    /// Whether two schemas define the same attribute names in the same order.
    pub fn same_shape(&self, other: &Schema) -> bool {
        self.attributes == other.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_id() {
        let s = Schema::new(["title", "artist", "album"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr_id("artist"), Some(1));
        assert_eq!(s.attr_id("missing"), None);
        assert_eq!(s.name(2), Some("album"));
        assert_eq!(s.name(5), None);
    }

    #[test]
    fn duplicate_names_keep_first_index() {
        let s = Schema::new(["a", "b", "a"]);
        assert_eq!(s.attr_id("a"), Some(0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn same_shape_detects_order() {
        let a = Schema::new(["x", "y"]);
        let b = Schema::new(["x", "y"]);
        let c = Schema::new(["y", "x"]);
        assert!(a.same_shape(&b));
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn serde_roundtrip_preserves_lookup() {
        let s = Schema::new(["name", "longtitude", "latitude"]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        // Index map is skipped during serialization; lookup must still work.
        assert_eq!(back.attr_id("latitude"), Some(2));
        assert!(s.same_shape(&back));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(Vec::<String>::new());
        assert!(s.is_empty());
        assert_eq!(s.attr_id("anything"), None);
    }
}
