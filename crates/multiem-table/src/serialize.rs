//! Entity serialization (Section II-B of the paper).
//!
//! Pre-trained sentence encoders take sentences as input, so each structural
//! entity is serialized to a text sequence by concatenating attribute values
//! (attribute names are omitted):
//!
//! ```text
//! serialize(e) ::= val_1 val_2 ... val_p
//! ```
//!
//! The enhanced-entity-representation module additionally serializes using only
//! a *selected subset* of attributes; [`serialize_record_projected`] supports
//! that projection.

use crate::record::Record;
use crate::schema::AttrId;
use serde::{Deserialize, Serialize};

/// Options controlling entity serialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SerializeOptions {
    /// Lowercase the serialized text (the paper's examples are lowercased,
    /// e.g. "apple iphone 8 plus 64gb silver").
    pub lowercase: bool,
    /// Maximum number of whitespace-separated tokens kept (the paper truncates
    /// to a maximum sequence length of 64).
    pub max_tokens: Option<usize>,
    /// Separator inserted between attribute values.
    pub separator: char,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            max_tokens: Some(64),
            separator: ' ',
        }
    }
}

impl SerializeOptions {
    /// Options that keep the raw text unmodified (no lowercasing, no truncation).
    pub fn raw() -> Self {
        Self {
            lowercase: false,
            max_tokens: None,
            separator: ' ',
        }
    }
}

fn postprocess(text: String, opts: &SerializeOptions) -> String {
    let text = if opts.lowercase {
        text.to_lowercase()
    } else {
        text
    };
    match opts.max_tokens {
        Some(limit) => {
            let mut out = String::with_capacity(text.len());
            for (i, tok) in text.split_whitespace().enumerate() {
                if i >= limit {
                    break;
                }
                if i > 0 {
                    out.push(opts.separator);
                }
                out.push_str(tok);
            }
            out
        }
        None => {
            // Normalise whitespace runs to single separators for determinism.
            let mut out = String::with_capacity(text.len());
            for (i, tok) in text.split_whitespace().enumerate() {
                if i > 0 {
                    out.push(opts.separator);
                }
                out.push_str(tok);
            }
            out
        }
    }
}

/// Serialize a record using **all** attributes: `val_1 val_2 ... val_p`.
pub fn serialize_record(record: &Record, opts: &SerializeOptions) -> String {
    let mut text = String::new();
    for v in record.values() {
        let rendered = v.render();
        if rendered.trim().is_empty() {
            continue;
        }
        if !text.is_empty() {
            text.push(opts.separator);
        }
        text.push_str(rendered.trim());
    }
    postprocess(text, opts)
}

/// Serialize a record using only the attributes listed in `attrs`
/// (in the given order). This is the projection used after the automated
/// attribute selection of Algorithm 1.
pub fn serialize_record_projected(
    record: &Record,
    attrs: &[AttrId],
    opts: &SerializeOptions,
) -> String {
    let mut text = String::new();
    for &a in attrs {
        let Some(v) = record.value(a) else { continue };
        let rendered = v.render();
        if rendered.trim().is_empty() {
            continue;
        }
        if !text.is_empty() {
            text.push(opts.separator);
        }
        text.push_str(rendered.trim());
    }
    postprocess(text, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, Value};

    #[test]
    fn serializes_example_from_paper() {
        // Figure 1, entity A1: "apple iphone 8 plus 64gb" / "silver"
        let r = Record::from_texts(["Apple iPhone 8 plus 64GB", "Silver"]);
        let s = serialize_record(&r, &SerializeOptions::default());
        assert_eq!(s, "apple iphone 8 plus 64gb silver");
    }

    #[test]
    fn skips_null_and_blank_values() {
        let r = Record::new(vec![
            Value::Text("hello".into()),
            Value::Null,
            Value::Text("  ".into()),
            Value::Text("world".into()),
        ]);
        assert_eq!(
            serialize_record(&r, &SerializeOptions::default()),
            "hello world"
        );
    }

    #[test]
    fn renders_numbers_without_decimal_noise() {
        let r = Record::new(vec![Value::Text("song".into()), Value::Number(1998.0)]);
        assert_eq!(
            serialize_record(&r, &SerializeOptions::default()),
            "song 1998"
        );
    }

    #[test]
    fn truncates_to_max_tokens() {
        let long: Vec<String> = (0..100).map(|i| format!("tok{i}")).collect();
        let r = Record::from_texts([long.join(" ")]);
        let opts = SerializeOptions {
            max_tokens: Some(5),
            ..SerializeOptions::default()
        };
        let s = serialize_record(&r, &opts);
        assert_eq!(s.split_whitespace().count(), 5);
        assert!(s.starts_with("tok0 tok1"));
    }

    #[test]
    fn projection_respects_order_and_subset() {
        let r = Record::from_texts(["id-99", "Megna's", "Tim O'Brien", "Chameleon"]);
        let s = serialize_record_projected(&r, &[3, 1], &SerializeOptions::default());
        assert_eq!(s, "chameleon megna's");
        let s_all = serialize_record(&r, &SerializeOptions::default());
        assert!(s_all.contains("id-99"));
    }

    #[test]
    fn projection_with_out_of_range_attr_is_ignored() {
        let r = Record::from_texts(["a", "b"]);
        let s = serialize_record_projected(&r, &[0, 7], &SerializeOptions::default());
        assert_eq!(s, "a");
    }

    #[test]
    fn raw_options_preserve_case() {
        let r = Record::from_texts(["Apple iPhone"]);
        assert_eq!(
            serialize_record(&r, &SerializeOptions::raw()),
            "Apple iPhone"
        );
    }

    #[test]
    fn whitespace_runs_are_normalised() {
        let r = Record::from_texts(["a   b\t c"]);
        assert_eq!(serialize_record(&r, &SerializeOptions::default()), "a b c");
    }
}
