//! Source tables: a named collection of records sharing a schema.

use crate::error::TableError;
use crate::ids::SourceId;
use crate::record::Record;
use crate::schema::Schema;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One source table `E_i` of the multi-table EM input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Human-readable name (e.g. "source-A", "shop-3").
    name: String,
    /// Schema shared with the rest of the dataset.
    schema: Arc<Schema>,
    /// Entity records.
    records: Vec<Record>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Self {
            name: name.into(),
            schema,
            records: Vec::new(),
        }
    }

    /// Create a table from pre-built records, validating arity.
    pub fn with_records(
        name: impl Into<String>,
        schema: Arc<Schema>,
        records: Vec<Record>,
    ) -> Result<Self> {
        let mut table = Self::new(name, schema);
        for r in records {
            table.push(r)?;
        }
        Ok(table)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append a record, checking it matches the schema arity.
    pub fn push(&mut self, record: Record) -> Result<()> {
        if record.arity() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                got: record.arity(),
            });
        }
        self.records.push(record);
        Ok(())
    }

    /// Number of entities in the table.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no entities.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in row order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Mutable records (used by the corruption model in `multiem-datagen`).
    pub fn records_mut(&mut self) -> &mut [Record] {
        &mut self.records
    }

    /// Record at `row`.
    pub fn record(&self, row: usize) -> Option<&Record> {
        self.records.get(row)
    }

    /// Iterate `(row, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Record)> {
        self.records.iter().enumerate().map(|(i, r)| (i as u32, r))
    }

    /// Approximate heap footprint of the table in bytes (used by the memory
    /// accounting in `multiem-eval`).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = self.name.len() + std::mem::size_of::<Self>();
        for r in &self.records {
            bytes += std::mem::size_of::<Record>();
            for v in r.values() {
                bytes += std::mem::size_of_val(v);
                if let Some(t) = v.as_text() {
                    bytes += t.len();
                }
            }
        }
        bytes
    }
}

/// A lightweight handle pairing a table with its dataset-assigned source id.
#[derive(Debug, Clone, Copy)]
pub struct SourceTable<'a> {
    /// Dataset-assigned source id.
    pub source: SourceId,
    /// The table itself.
    pub table: &'a Table,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(["title", "artist"]).shared()
    }

    #[test]
    fn push_validates_arity() {
        let mut t = Table::new("A", schema());
        assert!(t.push(Record::from_texts(["a", "b"])).is_ok());
        let err = t.push(Record::from_texts(["only-one"])).unwrap_err();
        assert!(matches!(
            err,
            TableError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn with_records_validates_all() {
        let recs = vec![
            Record::from_texts(["a", "b"]),
            Record::from_texts(["c", "d"]),
        ];
        let t = Table::with_records("A", schema(), recs).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.record(1).unwrap().value(0).unwrap().render(), "c");
        assert!(t.record(2).is_none());
    }

    #[test]
    fn iter_yields_row_indices() {
        let recs = vec![
            Record::from_texts(["a", "b"]),
            Record::from_texts(["c", "d"]),
        ];
        let t = Table::with_records("A", schema(), recs).unwrap();
        let rows: Vec<u32> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small =
            Table::with_records("A", schema(), vec![Record::from_texts(["a", "b"])]).unwrap();
        let big = Table::with_records(
            "A",
            schema(),
            vec![Record::new(vec![
                Value::Text("a very long product title with many words".into()),
                Value::Text("another long attribute value".into()),
            ])],
        )
        .unwrap();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
