//! Relational table substrate for the MultiEM reproduction.
//!
//! The MultiEM paper (ICDE 2024) operates on a *set of relational tables*
//! `D = {E_1, ..., E_S}` that share a schema. Each table row is an *entity*
//! `e = {(attr_j, val_j)}` and the goal of multi-table entity matching is to
//! group rows from different tables that describe the same real-world entity.
//!
//! This crate provides the data-model layer every other crate builds on:
//!
//! * [`Schema`] / [`AttrId`] — named, ordered attributes shared by all tables
//!   of a dataset;
//! * [`Record`] — one entity (a row), a vector of optional attribute values;
//! * [`Table`] — a source table (a set of records with a source identifier);
//! * [`Dataset`] — the multi-source input `D` plus optional [`GroundTruth`];
//! * [`EntityId`] / [`EntityRef`] — stable identifiers of an entity across the
//!   whole dataset (source table + row index);
//! * [`serialize`] — the entity-to-sentence serialization of Section II-B
//!   (`serialize(e) ::= val_1 val_2 ... val_p`), with attribute projection used
//!   by the enhanced-entity-representation module;
//! * [`csv_io`] — CSV import/export so the real benchmark datasets can be fed
//!   in when available.
//!
//! The substrate is intentionally free of any matching logic; it only models
//! the data and the serialization rules the paper defines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv_io;
pub mod dataset;
pub mod error;
pub mod ids;
pub mod record;
pub mod schema;
pub mod serialize;
pub mod table;

pub use dataset::{Dataset, GroundTruth, MatchTuple};
pub use error::TableError;
pub use ids::{EntityId, EntityRef, SourceId};
pub use record::{Record, Value};
pub use schema::{AttrId, Attribute, Schema};
pub use serialize::{serialize_record, serialize_record_projected, SerializeOptions};
pub use table::Table;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, TableError>;
