//! CSV import/export for source tables and ground truth.
//!
//! The public MultiEM benchmark datasets ship as CSV files (one per source,
//! plus a ground-truth mapping). These helpers let the real datasets be loaded
//! when available; the bench harness falls back to `multiem-datagen` otherwise.

use crate::dataset::{Dataset, GroundTruth, MatchTuple};
use crate::ids::EntityId;
use crate::record::{Record, Value};
use crate::schema::Schema;
use crate::table::Table;
use crate::Result;
use std::io::{Read, Write};
use std::path::Path;

/// Parse a CSV field into a [`Value`]: empty → `Null`, numeric → `Number`,
/// anything else → `Text`.
pub fn parse_field(field: &str) -> Value {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Value::Null;
    }
    match trimmed.parse::<f64>() {
        Ok(n) if n.is_finite() => Value::Number(n),
        _ => Value::Text(trimmed.to_string()),
    }
}

/// Read a single source table from a CSV reader. The first row is the header
/// and defines the schema.
pub fn read_table_from_reader<R: Read>(name: &str, reader: R) -> Result<Table> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .flexible(false)
        .from_reader(reader);
    let headers = rdr.headers()?.clone();
    let schema = Schema::new(headers.iter().map(|h| h.to_string())).shared();
    let mut table = Table::new(name, schema);
    for row in rdr.records() {
        let row = row?;
        let values: Vec<Value> = row.iter().map(parse_field).collect();
        table.push(Record::new(values))?;
    }
    Ok(table)
}

/// Read a source table from a CSV file on disk.
pub fn read_table_from_path(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    let file = std::fs::File::open(path)?;
    read_table_from_reader(&name, file)
}

/// Write a table as CSV (header + rows) to any writer.
pub fn write_table_to_writer<W: Write>(table: &Table, writer: W) -> Result<()> {
    let mut wtr = csv::WriterBuilder::new().from_writer(writer);
    wtr.write_record(table.schema().names())?;
    for (_, record) in table.iter() {
        wtr.write_record(record.values().iter().map(|v| v.render()))?;
    }
    wtr.flush()?;
    Ok(())
}

/// Build a dataset from a set of CSV source tables that share a header.
pub fn read_dataset_from_paths(name: &str, paths: &[impl AsRef<Path>]) -> Result<Dataset> {
    let mut tables = Vec::with_capacity(paths.len());
    for p in paths {
        tables.push(read_table_from_path(p)?);
    }
    let schema = tables
        .first()
        .map(|t| t.schema().clone())
        .unwrap_or_else(|| Schema::new(Vec::<String>::new()).shared());
    let mut ds = Dataset::new(name, schema);
    for t in tables {
        ds.add_table(t)?;
    }
    Ok(ds)
}

/// Read ground truth from a CSV reader. Expected columns: `cluster_id, source,
/// row` — every row assigns one entity to a cluster; clusters with ≥2 members
/// become matched tuples.
pub fn read_ground_truth_from_reader<R: Read>(reader: R) -> Result<GroundTruth> {
    let mut rdr = csv::ReaderBuilder::new()
        .has_headers(true)
        .from_reader(reader);
    use std::collections::BTreeMap;
    let mut clusters: BTreeMap<String, Vec<EntityId>> = BTreeMap::new();
    for row in rdr.records() {
        let row = row?;
        if row.len() < 3 {
            continue;
        }
        let cluster = row[0].to_string();
        let source: u32 = row[1].trim().parse().unwrap_or(0);
        let r: u32 = row[2].trim().parse().unwrap_or(0);
        clusters
            .entry(cluster)
            .or_default()
            .push(EntityId::new(source, r));
    }
    let tuples = clusters.into_values().map(MatchTuple::new).collect();
    Ok(GroundTruth::new(tuples))
}

/// Write ground truth in the `cluster_id, source, row` format.
pub fn write_ground_truth_to_writer<W: Write>(gt: &GroundTruth, writer: W) -> Result<()> {
    let mut wtr = csv::WriterBuilder::new().from_writer(writer);
    wtr.write_record(["cluster_id", "source", "row"])?;
    for (i, tuple) in gt.tuples().iter().enumerate() {
        for m in tuple.members() {
            wtr.write_record([i.to_string(), m.source.to_string(), m.row.to_string()])?;
        }
    }
    wtr.flush()?;
    Ok(())
}

/// Convenience: round-trip a dataset's tables to a directory (one CSV per
/// source plus `ground_truth.csv` when present).
pub fn write_dataset_to_dir(ds: &Dataset, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (i, t) in ds.tables().iter().enumerate() {
        let file = std::fs::File::create(dir.join(format!("source_{i}.csv")))?;
        write_table_to_writer(t, file)?;
    }
    if let Some(gt) = ds.ground_truth() {
        let file = std::fs::File::create(dir.join("ground_truth.csv"))?;
        write_ground_truth_to_writer(gt, file)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_field_types() {
        assert_eq!(parse_field(""), Value::Null);
        assert_eq!(parse_field("  "), Value::Null);
        assert_eq!(parse_field("3.5"), Value::Number(3.5));
        assert_eq!(parse_field("2018"), Value::Number(2018.0));
        assert_eq!(parse_field("abc"), Value::Text("abc".into()));
        // Not finite numbers stay text-like? "inf" parses to infinite f64 → text.
        assert_eq!(parse_field("inf"), Value::Text("inf".into()));
    }

    #[test]
    fn table_csv_roundtrip() {
        let csv_in = "title,artist,year\nChameleon,Tim O'Brien,1998\nHitmen,,\n";
        let table = read_table_from_reader("A", csv_in.as_bytes()).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema().len(), 3);
        assert_eq!(
            table.record(0).unwrap().value(2).unwrap(),
            &Value::Number(1998.0)
        );
        assert_eq!(table.record(1).unwrap().value(1).unwrap(), &Value::Null);

        let mut out = Vec::new();
        write_table_to_writer(&table, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("title,artist,year"));
        let reparsed = read_table_from_reader("A", text.as_bytes()).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(
            reparsed.record(0).unwrap().value(0).unwrap().render(),
            "Chameleon"
        );
    }

    #[test]
    fn ground_truth_csv_roundtrip() {
        let gt = GroundTruth::new(vec![
            MatchTuple::new([
                EntityId::new(0, 1),
                EntityId::new(1, 2),
                EntityId::new(2, 3),
            ]),
            MatchTuple::new([EntityId::new(0, 5), EntityId::new(3, 0)]),
        ]);
        let mut buf = Vec::new();
        write_ground_truth_to_writer(&gt, &mut buf).unwrap();
        let back = read_ground_truth_from_reader(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.pairs(), gt.pairs());
    }

    #[test]
    fn dataset_dir_roundtrip() {
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("mini", schema.clone());
        for name in ["A", "B"] {
            let t = Table::with_records(
                name,
                schema.clone(),
                vec![Record::from_texts([format!("{name}-item")])],
            )
            .unwrap();
            ds.add_table(t).unwrap();
        }
        ds.set_ground_truth(GroundTruth::new(vec![MatchTuple::new([
            EntityId::new(0, 0),
            EntityId::new(1, 0),
        ])]));

        let dir = std::env::temp_dir().join(format!("multiem_csv_test_{}", std::process::id()));
        write_dataset_to_dir(&ds, &dir).unwrap();
        let loaded = read_dataset_from_paths(
            "mini",
            &[dir.join("source_0.csv"), dir.join("source_1.csv")],
        )
        .unwrap();
        assert_eq!(loaded.num_sources(), 2);
        assert_eq!(loaded.total_entities(), 2);
        let gt_file = std::fs::File::open(dir.join("ground_truth.csv")).unwrap();
        let gt = read_ground_truth_from_reader(gt_file).unwrap();
        assert_eq!(gt.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
