//! Stable identifiers of entities across a multi-source dataset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a source table within a [`crate::Dataset`].
pub type SourceId = u32;

/// Identifier of one entity: the source table it comes from and its row index
/// within that table.
///
/// `EntityId` is the currency of the whole pipeline: merging produces tuples of
/// `EntityId`s, the ground truth is expressed in `EntityId`s, and metrics
/// compare sets of them. The identifier is stable under any reordering of the
/// tables inside the dataset as long as the per-table row order is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId {
    /// Index of the source table in the dataset.
    pub source: SourceId,
    /// Row index inside the source table.
    pub row: u32,
}

impl EntityId {
    /// Create a new entity id.
    #[inline]
    pub fn new(source: SourceId, row: u32) -> Self {
        Self { source, row }
    }

    /// Pack the id into a single `u64` (source in the high 32 bits). Useful as
    /// a cheap hash-map key or for dense global numbering.
    #[inline]
    pub fn as_u64(self) -> u64 {
        (u64::from(self.source) << 32) | u64::from(self.row)
    }

    /// Inverse of [`EntityId::as_u64`].
    #[inline]
    pub fn from_u64(packed: u64) -> Self {
        Self {
            source: (packed >> 32) as u32,
            row: packed as u32,
        }
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.source, self.row)
    }
}

/// A borrowed reference to an entity: its id plus the dataset it lives in.
///
/// This is a convenience for APIs that want to hand out "an entity" without
/// copying the record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityRef {
    /// The entity identifier.
    pub id: EntityId,
}

impl EntityRef {
    /// Wrap an [`EntityId`].
    pub fn new(id: EntityId) -> Self {
        Self { id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for source in [0u32, 1, 7, u32::MAX] {
            for row in [0u32, 1, 1024, u32::MAX] {
                let id = EntityId::new(source, row);
                assert_eq!(EntityId::from_u64(id.as_u64()), id);
            }
        }
    }

    #[test]
    fn ordering_is_source_major() {
        let a = EntityId::new(0, 100);
        let b = EntityId::new(1, 0);
        assert!(a < b);
        let c = EntityId::new(1, 1);
        assert!(b < c);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(EntityId::new(3, 42).to_string(), "3:42");
    }
}
