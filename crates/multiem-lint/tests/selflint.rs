//! The workspace itself must stay lint-clean — the same gate CI enforces
//! with `cargo run -p multiem-lint -- --workspace`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diagnostics = multiem_lint::lint_workspace(&root);
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "the workspace has unjustified lint diagnostics:\n{}",
        rendered.join("\n")
    );
}
