// fixture: hot-path

fn lookup(values: &[u32], index: usize) -> Option<u32> {
    values.get(index).copied()
}

fn config(map: &std::collections::HashMap<String, u32>) -> u32 {
    map.get("limit").copied().unwrap_or(64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert_eq!(super::lookup(&[7], 0).unwrap(), 7);
    }
}
