// fixture: plain

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}
