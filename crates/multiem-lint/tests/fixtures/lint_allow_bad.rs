// fixture: plain

fn emergency_log(message: &str) {
    // lint:allow(no-raw-eprintln)
    eprintln!("fallback: {message}");
}

// lint:allow(no-such-rule): misspelled rule id
fn quiet() {}

// lint:allow(no-raw-eprintln): suppresses nothing here
fn silent() {}
