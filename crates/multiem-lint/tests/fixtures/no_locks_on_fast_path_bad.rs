// fixture: plain

use std::sync::Mutex;

// lint:fast-path — the scrape answers inline on the I/O threads.
fn scrape(state: &Mutex<u64>) -> u64 {
    *state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
