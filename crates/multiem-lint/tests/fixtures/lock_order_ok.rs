// fixture: plain

use std::sync::{Mutex, RwLock};

struct Store;

fn declared_order(wals: &[Mutex<u32>], shards: &[RwLock<Store>]) {
    let _shard = shards[0].write();
    let _wal = wals[0].lock();
}
