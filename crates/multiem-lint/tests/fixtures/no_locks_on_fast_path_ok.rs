// fixture: plain

use std::sync::RwLock;

// lint:fast-path — falls back to the published value under contention.
fn scrape(state: &RwLock<u64>, published: u64) -> u64 {
    match state.try_read() {
        Ok(guard) => *guard,
        Err(_) => published,
    }
}

fn rebuild(state: &RwLock<u64>) {
    if let Ok(mut guard) = state.write() {
        *guard += 1;
    }
}
