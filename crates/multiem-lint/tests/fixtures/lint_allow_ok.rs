// fixture: plain

fn emergency_log(message: &str) {
    // lint:allow(no-raw-eprintln): the logger itself failed; stderr is the last resort
    eprintln!("fallback: {message}");
}
