// fixture: plain

use std::fs::File;
use std::io;
use std::path::Path;

fn commit(tmp: &Path, dst: &Path) -> io::Result<()> {
    std::fs::write(tmp, b"state")?;
    std::fs::rename(tmp, dst)
}

fn commit_sync_too_late(file: &File, tmp: &Path, dst: &Path) -> io::Result<()> {
    std::fs::rename(tmp, dst)?;
    file.sync_all()
}
