// fixture: bin
#![forbid(unsafe_code)]

fn main() {
    eprintln!("usage: tool <arg>");
}
