// fixture: plain

fn warn_directly(message: &str) {
    eprintln!("warning: {message}");
}
