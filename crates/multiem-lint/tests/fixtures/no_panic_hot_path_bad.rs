// fixture: hot-path

fn lookup(values: &[u32], index: usize) -> u32 {
    let value = values.get(index).copied().unwrap();
    if value == 0 {
        panic!("zero is not a value");
    }
    value
}

fn config(map: &std::collections::HashMap<String, u32>) -> u32 {
    *map.get("limit").expect("limit must be configured")
}

fn pending() -> u32 {
    todo!()
}
