// fixture: plain

use std::sync::{Mutex, RwLock};

struct Store;

fn inverted(wals: &[Mutex<u32>], shards: &[RwLock<Store>]) {
    let _wal = wals[0].lock();
    let _shard = shards[0].read();
}
