// fixture: plain

use std::io::Write;
use std::path::Path;

fn commit(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}
