// fixture: crate-root
//! A crate root with the ban in place.

#![forbid(unsafe_code)]

pub fn noop() {}
