// fixture: crate-root
//! A crate root that forgot to ban `unsafe`.

pub fn noop() {}
