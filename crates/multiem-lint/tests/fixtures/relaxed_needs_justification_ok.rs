// fixture: plain

use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) -> u64 {
    // relaxed-ok: standalone counter; nothing else is ordered by it
    counter.fetch_add(1, Ordering::Relaxed)
}

fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed) // relaxed-ok: monitoring read tolerates skew
}
