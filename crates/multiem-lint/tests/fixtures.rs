//! Golden-file fixture corpus for the lint rules.
//!
//! Every rule has at least one firing (`*_bad.rs`) and one clean
//! (`*_ok.rs`) fixture under `tests/fixtures/`; the sibling `.expected`
//! file pins the exact rendered diagnostics. The first line of each
//! fixture declares how the file should be classified:
//!
//! ```text
//! // fixture: crate-root | bin | hot-path | plain
//! ```
//!
//! Regenerate the goldens with
//! `BLESS=1 cargo test -p multiem-lint --test fixtures`
//! and review the diff before committing.

use multiem_lint::workspace::FileInfo;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_sources() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("tests/fixtures must exist")
        .map(|entry| entry.expect("readable fixtures dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "rs"))
        .collect();
    paths.sort();
    paths
}

/// Map the `// fixture: <role>` directive to the [`FileInfo`] the walker
/// would have produced for a real file in that position.
fn classify(name: &str, source: &str) -> FileInfo {
    let role = source
        .lines()
        .next()
        .and_then(|line| line.strip_prefix("// fixture:"))
        .map(str::trim)
        .unwrap_or_else(|| panic!("{name}: first line must be `// fixture: <role>`"));
    match role {
        "crate-root" => FileInfo::synthetic(name, true, false, false),
        "bin" => FileInfo::synthetic(name, true, true, false),
        "hot-path" => FileInfo::synthetic(name, false, false, true),
        "plain" => FileInfo::synthetic(name, false, false, false),
        other => panic!("{name}: unknown fixture role `{other}`"),
    }
}

#[test]
fn fixtures_match_their_golden_diagnostics() {
    let bless = std::env::var_os("BLESS").is_some();
    let paths = fixture_sources();
    assert!(
        paths.len() >= 16,
        "expected at least two fixtures per rule plus allow-directive \
         fixtures, found {}",
        paths.len()
    );

    for path in &paths {
        let name = path
            .file_name()
            .expect("fixture has a file name")
            .to_string_lossy()
            .into_owned();
        let source = fs::read_to_string(path).expect("readable fixture");
        let info = classify(&name, &source);
        let rendered: String = multiem_lint::lint_source(&info, &source)
            .iter()
            .map(|diag| diag.render() + "\n")
            .collect();
        let golden = path.with_extension("expected");
        if bless {
            fs::write(&golden, &rendered).expect("write blessed golden");
        }
        let expected = fs::read_to_string(&golden).unwrap_or_else(|_| {
            panic!(
                "{name}: missing golden file {}; run with BLESS=1 to create it",
                golden.display()
            )
        });
        assert_eq!(
            rendered, expected,
            "{name}: diagnostics diverge from the golden file; \
             rerun with BLESS=1 if the change is intentional"
        );

        // The corpus convention carries meaning: `_bad` fixtures must
        // fire, `_ok` fixtures must stay silent.
        let stem = name.trim_end_matches(".rs");
        if stem.ends_with("_bad") {
            assert!(
                !rendered.is_empty(),
                "{name}: bad fixture produced no diagnostics"
            );
        }
        if stem.ends_with("_ok") {
            assert!(
                rendered.is_empty(),
                "{name}: ok fixture produced diagnostics:\n{rendered}"
            );
        }
    }
}

#[test]
fn every_rule_fires_on_at_least_one_fixture() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for path in fixture_sources() {
        let name = path
            .file_name()
            .expect("fixture has a file name")
            .to_string_lossy()
            .into_owned();
        let source = fs::read_to_string(&path).expect("readable fixture");
        let info = classify(&name, &source);
        for diag in multiem_lint::lint_source(&info, &source) {
            seen.insert(diag.rule.to_string());
        }
    }
    for rule in multiem_lint::rules::rule_ids() {
        assert!(
            seen.contains(rule),
            "rule `{rule}` has no fixture that makes it fire"
        );
    }
}
