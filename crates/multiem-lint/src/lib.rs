//! # multiem-lint — workspace invariant linter
//!
//! Project-specific static analysis for the MultiEM serving stack. The serve
//! path rests on invariants the compiler cannot check — the shard → WAL lock
//! order, lock-free fast-path routes, fsync-before-rename commit points,
//! justified `Ordering::Relaxed` — and this crate turns them into CI-gated
//! rules instead of tribal knowledge.
//!
//! Pipeline: [`scan`] lexes each source file into a blanked code channel, a
//! comment channel, test-region flags, and function spans; [`rules`] runs
//! token-level matchers over that shape; [`diag`] applies the
//! `// lint:allow(rule-id): <reason>` escape hatch (justification required)
//! and renders `file:line: error[rule]: message` diagnostics; [`workspace`]
//! discovers and classifies every member's `src/` tree.
//!
//! Known scanner limits (documented, acceptable for this codebase): raw
//! *byte* strings (`br#"…"#`) are not recognized, and `fn` items emitted by
//! macros are invisible. Neither shape appears in the workspace.

#![forbid(unsafe_code)]

pub mod diag;
pub mod rules;
pub mod scan;
pub mod workspace;

use std::path::Path;

use diag::Diagnostic;
use workspace::FileInfo;

/// Lint one source text with an explicit classification. Returns final
/// diagnostics (rule hits surviving `lint:allow`, plus allow meta-diagnostics).
pub fn lint_source(info: &FileInfo, source: &str) -> Vec<Diagnostic> {
    let scanned = scan::scan(source);
    let raw = rules::check_file(info, &scanned);
    diag::apply_allows(&scanned, &info.rel, raw, &rules::rule_ids())
}

/// Lint every workspace member's `src/` tree under `root`. Diagnostics are
/// sorted by (file, line, rule). I/O errors surface as diagnostics so a
/// vanished file fails the gate instead of passing silently.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let files = match workspace::discover(root) {
        Ok(files) => files,
        Err(err) => {
            return vec![Diagnostic::error(
                "workspace-walk",
                "Cargo.toml",
                1,
                format!("failed to walk workspace: {err}"),
            )]
        }
    };
    let mut out = Vec::new();
    for info in &files {
        match std::fs::read_to_string(&info.path) {
            Ok(source) => out.extend(lint_source(info, &source)),
            Err(err) => out.push(Diagnostic::error(
                "workspace-walk",
                &info.rel,
                1,
                format!("failed to read source: {err}"),
            )),
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}
