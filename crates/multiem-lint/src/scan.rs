//! Lexical region scanner for Rust sources.
//!
//! The linter's rules are line-oriented token matchers, so the scanner's job
//! is to turn raw source text into a shape where naive substring matching is
//! sound:
//!
//! * `code`: one entry per source line, with comment text and the *contents*
//!   of string/char literals blanked to spaces. Line and column structure is
//!   preserved, so byte offsets within a line still line up with the original
//!   file. A rule that greps `code` can never match inside a comment, a doc
//!   comment, or a string literal.
//! * `comments`: one entry per source line holding the comment text that
//!   appeared on that line (line comments, doc comments, and each line's
//!   share of a block comment). This is where `lint:allow(...)`,
//!   `relaxed-ok:` and `lint:fast-path` markers are looked up.
//! * `test`: one flag per line, true when the line sits inside an item
//!   annotated `#[test]` / `#[cfg(test)]` (e.g. a `mod tests` block). Rules
//!   skip test regions.
//! * `functions`: `fn` spans (header line + body brace range) so rules can
//!   reason about ordering *within* one function (lock order, fsync before
//!   rename) and about marked functions (`lint:fast-path`).
//!
//! The scanner handles nested block comments, raw strings (`r"…"`,
//! `r#"…"#`), byte and char literals, and lifetime/char-literal
//! disambiguation. It is intentionally not a full parser: exotic shapes
//! (raw byte strings `br#"…"#`, macros generating `fn` items) are out of
//! scope and documented in the crate README.

/// A scanned function span. Lines are 1-indexed and inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// Identifier following the `fn` keyword.
    pub name: String,
    /// Line holding the `fn` keyword.
    pub header_line: usize,
    /// Line of the opening `{` of the body.
    pub body_start: usize,
    /// Line of the matching closing `}`.
    pub body_end: usize,
}

/// Result of scanning one source file. All vectors are indexed by
/// zero-based line number and have identical length.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source lines with comments and literal contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (no `//` / `/*` markers).
    pub comments: Vec<String>,
    /// True when the line is inside a `#[test]` / `#[cfg(test)]` item.
    pub test: Vec<bool>,
    /// Function spans, in source order (nested fns are separate entries).
    pub functions: Vec<FnSpan>,
}

impl ScannedFile {
    /// 1-indexed accessor used by rules; out-of-range lines read as empty.
    pub fn code_line(&self, line: usize) -> &str {
        self.code
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// 1-indexed comment accessor.
    pub fn comment_line(&self, line: usize) -> &str {
        self.comments
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// 1-indexed test-region check; out-of-range lines read as non-test.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    pub fn line_count(&self) -> usize {
        self.code.len()
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Scan a whole source file.
pub fn scan(source: &str) -> ScannedFile {
    let (code_text, comments) = strip(source);
    let code: Vec<String> = split_lines(&code_text);
    let (test, functions) = analyze(&code);
    debug_assert_eq!(code.len(), comments.len());
    ScannedFile {
        code,
        comments,
        test,
        functions,
    }
}

/// Split preserving the convention that a trailing newline does not create a
/// phantom final line, but an empty file still has one (empty) line.
fn split_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
    if lines.len() > 1 && lines.last().is_some_and(String::is_empty) {
        lines.pop();
    }
    lines
}

/// Pass 1: blank comments and literal contents out of the code channel and
/// collect comment text per line.
fn strip(source: &str) -> (String, Vec<String>) {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(source.len());
    let mut comments: Vec<String> = vec![String::new()];

    let mut i = 0;
    while i < n {
        let c = chars[i];
        match c {
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment (covers `///` and `//!` too). Capture text.
                code.push_str("  ");
                i += 2;
                while i < n && chars[i] == '/' {
                    code.push(' ');
                    i += 1;
                }
                while i < n && chars[i] != '\n' {
                    comments
                        .last_mut()
                        .expect("comments starts non-empty")
                        .push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment; Rust block comments nest.
                code.push_str("  ");
                i += 2;
                let mut depth = 1u32;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '\n' {
                        code.push('\n');
                        comments.push(String::new());
                        i += 1;
                    } else {
                        comments
                            .last_mut()
                            .expect("comments starts non-empty")
                            .push(chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                }
            }
            '"' => {
                // Cooked string literal (also reached for the `"` of `b"…"`).
                code.push('"');
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' if i + 1 < n => {
                            code.push_str("  ");
                            if chars[i + 1] == '\n' {
                                // String continuation escape: keep structure.
                                code.pop();
                                code.push('\n');
                                comments.push(String::new());
                            }
                            i += 2;
                        }
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            code.push('\n');
                            comments.push(String::new());
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if (i == 0 || !is_ident_char(chars[i - 1]))
                && raw_string_hashes(&chars, i).is_some() =>
            {
                let hashes = raw_string_hashes(&chars, i).expect("checked in guard");
                // Blank the `r##"` opener.
                for _ in 0..(hashes + 2) {
                    code.push(' ');
                }
                i += hashes + 2;
                // Consume until `"` followed by `hashes` '#'s.
                while i < n {
                    if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                        for _ in 0..(hashes + 1) {
                            code.push(' ');
                        }
                        i += hashes + 1;
                        break;
                    } else if chars[i] == '\n' {
                        code.push('\n');
                        comments.push(String::new());
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime.
                if let Some(end) = char_literal_end(&chars, i) {
                    code.push('\'');
                    for &ch in &chars[(i + 1)..end] {
                        code.push(if ch == '\n' { '\n' } else { ' ' });
                        if ch == '\n' {
                            comments.push(String::new());
                        }
                    }
                    code.push('\'');
                    i = end + 1;
                } else {
                    // Lifetime (or stray quote): keep as code.
                    code.push('\'');
                    i += 1;
                }
            }
            '\n' => {
                code.push('\n');
                comments.push(String::new());
                i += 1;
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    // Align the comment channel with the code channel's line count.
    let code_lines = split_lines(&code).len();
    while comments.len() < code_lines {
        comments.push(String::new());
    }
    comments.truncate(code_lines.max(1));
    (code, comments)
}

/// If `chars[i] == 'r'` begins a raw string (`r"`, `r#"`, `r##"`, …),
/// return the number of `#`s; otherwise `None`.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut hashes = 0;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    (j < chars.len() && chars[j] == '"').then_some(hashes)
}

/// Does the `"` at `i` close a raw string opened with `hashes` hashes?
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    if i + hashes >= chars.len() {
        return false;
    }
    chars[i + 1..=i + hashes].iter().all(|&c| c == '#')
}

/// If `chars[i] == '\''` begins a char literal, return the index of the
/// closing quote; `None` means lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    if i + 1 >= n {
        return None;
    }
    if chars[i + 1] == '\\' {
        // Escaped char: scan for the closing quote within a short window
        // (covers `'\u{10FFFF}'`); bail out rather than eat the file.
        let mut j = i + 2;
        while j < n && j - i < 16 {
            if chars[j] == '\'' && j > i + 2 {
                return Some(j);
            }
            j += 1;
        }
        None
    } else if i + 2 < n && chars[i + 1] != '\'' && chars[i + 2] == '\'' {
        // Plain single-char literal like 'a' or '🦀'. A lifetime is never
        // followed by a quote at distance two.
        Some(i + 2)
    } else {
        None
    }
}

#[derive(Debug)]
enum Frame {
    Anon,
    Test {
        start_line: usize,
    },
    Fn {
        name: String,
        header_line: usize,
        body_start: usize,
    },
}

/// Pass 2: walk the blanked code channel to mark `#[test]`/`#[cfg(test)]`
/// item regions and record function spans via brace matching.
fn analyze(code: &[String]) -> (Vec<bool>, Vec<FnSpan>) {
    let mut test = vec![false; code.len()];
    let mut functions: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_fn: Option<(String, usize)> = None;
    let mut pending_test_attr = false;

    for (line_idx, line) in code.iter().enumerate() {
        let line_no = line_idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == '#'
                && i + 1 < chars.len()
                && (chars[i + 1] == '['
                    || (chars[i + 1] == '!' && i + 2 < chars.len() && chars[i + 2] == '['))
            {
                let inner = chars[i + 1] == '!';
                let open = if inner { i + 2 } else { i + 1 };
                let (attr_text, end) = read_attr(&chars, open);
                if !inner && mentions_test(&attr_text) {
                    pending_test_attr = true;
                }
                i = end;
                continue;
            }
            if is_ident_start(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "fn" {
                    // Capture the following identifier (skip whitespace).
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    if j < chars.len() && is_ident_start(chars[j]) {
                        let name_start = j;
                        while j < chars.len() && is_ident_char(chars[j]) {
                            j += 1;
                        }
                        let name: String = chars[name_start..j].iter().collect();
                        pending_fn = Some((name, line_no));
                        i = j;
                    }
                }
                continue;
            }
            match c {
                '{' => {
                    if pending_test_attr {
                        stack.push(Frame::Test {
                            start_line: line_no,
                        });
                        pending_test_attr = false;
                        pending_fn = None;
                    } else if let Some((name, header_line)) = pending_fn.take() {
                        stack.push(Frame::Fn {
                            name,
                            header_line,
                            body_start: line_no,
                        });
                    } else {
                        stack.push(Frame::Anon);
                    }
                }
                '}' => match stack.pop() {
                    Some(Frame::Test { start_line }) => {
                        for flag in test.iter_mut().take(line_no).skip(start_line - 1) {
                            *flag = true;
                        }
                    }
                    Some(Frame::Fn {
                        name,
                        header_line,
                        body_start,
                    }) => {
                        functions.push(FnSpan {
                            name,
                            header_line,
                            body_start,
                            body_end: line_no,
                        });
                    }
                    _ => {}
                },
                ';' => {
                    // A `;` before any `{` ends the pending item (trait method
                    // declaration, `#[cfg(test)] use …;`, etc.). Mark the
                    // single-item span for test attrs.
                    if pending_test_attr {
                        test[line_idx] = true;
                    }
                    pending_fn = None;
                    pending_test_attr = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Inner test frames can close before outer ones; sort spans for stable
    // output order by header line.
    functions.sort_by_key(|f| (f.header_line, f.body_start));
    (test, functions)
}

/// Read an attribute's bracketed content starting at the `[` index; returns
/// (content, index one past the closing `]`). Tolerates attrs that run past
/// end of line (content ends there — good enough for `test` detection).
fn read_attr(chars: &[char], open: usize) -> (String, usize) {
    let mut depth = 0i32;
    let mut i = open;
    let mut text = String::new();
    while i < chars.len() {
        match chars[i] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return (text, i + 1);
                }
            }
            c => text.push(c),
        }
        i += 1;
    }
    (text, i)
}

/// Does an attribute body mark a test item? True for `test`, `cfg(test)`,
/// `cfg(all(test, …))`; false for `cfg(not(test))`.
fn mentions_test(attr: &str) -> bool {
    if attr.contains("not(test") {
        return false;
    }
    let chars: Vec<char> = attr.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if is_ident_start(chars[i]) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            if chars[start..i].iter().collect::<String>() == "test" {
                return true;
            }
        } else {
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments_and_captures_text() {
        let s = scan("let x = 1; // lint:allow(foo): reason\n");
        assert!(!s.code_line(1).contains("lint:allow"));
        assert!(s.comment_line(1).contains("lint:allow(foo): reason"));
        assert!(s.code_line(1).contains("let x = 1;"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let s = scan("let x = \"unwrap() // not a comment\";\n");
        assert!(!s.code_line(1).contains("unwrap"));
        assert!(s.comment_line(1).is_empty());
        assert_eq!(s.code_line(1).matches('"').count(), 2);
    }

    #[test]
    fn handles_raw_strings() {
        let s = scan("let x = r#\"panic!() \"quoted\" more\"#;\nlet y = 2;\n");
        assert!(!s.code_line(1).contains("panic"));
        assert!(s.code_line(2).contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ let z = 3;\n");
        assert!(s.code_line(1).contains("let z = 3;"));
        assert!(!s.code_line(1).contains("outer"));
        assert!(s.comment_line(1).contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let s = scan("/* one\ntwo unwrap()\n*/ let a = 1;\n");
        assert!(!s.code_line(2).contains("unwrap"));
        assert!(s.comment_line(2).contains("two unwrap()"));
        assert!(s.code_line(3).contains("let a = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(s.code_line(1).contains("&'a str"));
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "f");
    }

    #[test]
    fn char_literals_are_blanked() {
        let s = scan("let c = 'x'; let esc = '\\n'; let brace = '{';\n");
        assert!(!s.code_line(1).contains('x'), "{:?}", s.code_line(1));
        // The '{' literal must not open a brace frame.
        assert!(s.functions.is_empty());
    }

    #[test]
    fn cfg_test_module_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn prod2() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "#[test]\nfn check() {\n    assert!(true);\n}\nfn prod() {}\n";
        let s = scan(src);
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(!s.is_test_line(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod_only() {\n    work();\n}\n";
        let s = scan(src);
        assert!(!s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn function_spans_cover_bodies() {
        let src =
            "fn outer(a: u32) -> u32 {\n    let f = |x| x + 1;\n    fn inner() {}\n    f(a)\n}\n";
        let s = scan(src);
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &s.functions[0];
        assert_eq!(outer.header_line, 1);
        assert_eq!(outer.body_end, 5);
    }

    #[test]
    fn trait_method_decl_does_not_open_span() {
        let src = "trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 {\n        1\n    }\n}\n";
        let s = scan(src);
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn fn_pointer_type_is_not_a_function() {
        let s = scan("type Cb = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "real");
    }
}
