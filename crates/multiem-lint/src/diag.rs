//! Diagnostics and the `lint:allow` escape hatch.
//!
//! A diagnostic pins a rule id to a `file:line` with a message. Any
//! diagnostic can be suppressed with a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // lint:allow(rule-id): written justification for why this is safe
//! ```
//!
//! The justification is mandatory — an allow without one is itself a
//! diagnostic (`lint-allow-needs-reason`), as is an allow that suppresses
//! nothing (`unused-lint-allow`) or one naming an unknown rule
//! (`unknown-lint-allow`). This keeps the escape hatch honest: every
//! suppression in the tree carries a reviewable reason and stays attached to
//! a live violation.

use crate::scan::ScannedFile;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn error(rule: &str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            severity: Severity::Error,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// `file:line: error[rule]: message` — stable, grep-friendly, and
    /// clickable in editors.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}]: {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// One parsed `lint:allow(rule): reason` directive.
#[derive(Debug)]
struct Allow {
    rule: String,
    reason: String,
    /// 1-indexed line the comment sits on.
    line: usize,
}

/// Parse `lint:allow(...)` directives in a file's comment channel. A
/// directive must *start* its comment (`// lint:allow(…): …`), so prose that
/// merely mentions the syntax mid-sentence is not a directive. Several
/// directives may share one comment, separated by further `lint:allow(`.
fn parse_allows(scanned: &ScannedFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for line_no in 1..=scanned.line_count() {
        let comment = scanned.comment_line(line_no).trim_start();
        if !comment.starts_with("lint:allow(") {
            continue;
        }
        let mut rest = comment;
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            let mut reason = tail.strip_prefix(':').unwrap_or("");
            if let Some(next) = reason.find("lint:allow(") {
                reason = &reason[..next];
            }
            allows.push(Allow {
                rule,
                reason: reason.trim().to_string(),
                line: line_no,
            });
            rest = tail;
        }
    }
    allows
}

/// Apply a file's `lint:allow` directives to its raw rule hits.
///
/// Returns the surviving diagnostics plus any meta-diagnostics about the
/// directives themselves. `known_rules` validates allow targets.
pub fn apply_allows(
    scanned: &ScannedFile,
    file: &str,
    raw: Vec<Diagnostic>,
    known_rules: &[&str],
) -> Vec<Diagnostic> {
    let allows = parse_allows(scanned);
    let mut used = vec![false; allows.len()];
    let mut out: Vec<Diagnostic> = Vec::new();

    for diag in raw {
        // An allow suppresses hits on its own line or the line below it
        // (i.e. a comment on its own line annotates the next code line).
        let suppressed = allows.iter().enumerate().find(|(_, a)| {
            a.rule == diag.rule
                && !a.reason.is_empty()
                && (a.line == diag.line || a.line + 1 == diag.line)
        });
        if let Some((idx, _)) = suppressed {
            used[idx] = true;
        } else {
            out.push(diag);
        }
    }

    for (idx, allow) in allows.iter().enumerate() {
        if !known_rules.contains(&allow.rule.as_str()) {
            out.push(Diagnostic::error(
                "unknown-lint-allow",
                file,
                allow.line,
                format!("lint:allow names unknown rule `{}`", allow.rule),
            ));
        } else if allow.reason.is_empty() {
            out.push(Diagnostic::error(
                "lint-allow-needs-reason",
                file,
                allow.line,
                format!(
                    "lint:allow({}) has no justification; write `lint:allow({}): <reason>`",
                    allow.rule, allow.rule
                ),
            ));
        } else if !used[idx] {
            out.push(Diagnostic::error(
                "unused-lint-allow",
                file,
                allow.line,
                format!(
                    "lint:allow({}) suppresses nothing on this or the next line",
                    allow.rule
                ),
            ));
        }
    }

    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    const KNOWN: &[&str] = &["demo-rule"];

    #[test]
    fn allow_with_reason_suppresses_same_line() {
        let s = scan("bad(); // lint:allow(demo-rule): intentional here\n");
        let raw = vec![Diagnostic::error("demo-rule", "f.rs", 1, "bad")];
        let out = apply_allows(&s, "f.rs", raw, KNOWN);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let s = scan("// lint:allow(demo-rule): next line is fine\nbad();\n");
        let raw = vec![Diagnostic::error("demo-rule", "f.rs", 2, "bad")];
        let out = apply_allows(&s, "f.rs", raw, KNOWN);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allow_without_reason_is_flagged_and_does_not_suppress() {
        let s = scan("bad(); // lint:allow(demo-rule)\n");
        let raw = vec![Diagnostic::error("demo-rule", "f.rs", 1, "bad")];
        let out = apply_allows(&s, "f.rs", raw, KNOWN);
        let rules: Vec<&str> = out.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"demo-rule"));
        assert!(rules.contains(&"lint-allow-needs-reason"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let s = scan("// lint:allow(demo-rule): nothing here violates it\nfine();\n");
        let out = apply_allows(&s, "f.rs", Vec::new(), KNOWN);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-lint-allow");
    }

    #[test]
    fn unknown_rule_allow_is_flagged() {
        let s = scan("// lint:allow(no-such-rule): whatever\nfine();\n");
        let out = apply_allows(&s, "f.rs", Vec::new(), KNOWN);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unknown-lint-allow");
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        let s = scan("//! Suppress with a `lint:allow(demo-rule): reason` comment.\nfine();\n");
        let out = apply_allows(&s, "f.rs", Vec::new(), KNOWN);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn two_directives_share_a_comment() {
        let s = scan("// lint:allow(a-rule): first lint:allow(b-rule): second\nbad();\n");
        let raw = vec![
            Diagnostic::error("a-rule", "f.rs", 2, "a"),
            Diagnostic::error("b-rule", "f.rs", 2, "b"),
        ];
        let out = apply_allows(&s, "f.rs", raw, &["a-rule", "b-rule"]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let s = scan("// lint:allow(demo-rule): misdirected\nother();\n");
        let raw = vec![Diagnostic::error("other-rule", "f.rs", 2, "bad")];
        let out = apply_allows(&s, "f.rs", raw, &["demo-rule", "other-rule"]);
        let rules: Vec<&str> = out.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"other-rule"));
        assert!(rules.contains(&"unused-lint-allow"));
    }
}
