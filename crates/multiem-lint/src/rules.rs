//! The lint rules. Each rule encodes one invariant the serve stack relies
//! on but the compiler cannot check. Rules operate on the blanked code
//! channel from [`crate::scan`], so string literals and comments never
//! produce false hits, and `#[cfg(test)]` regions are skipped.

use crate::diag::Diagnostic;
use crate::scan::{FnSpan, ScannedFile};
use crate::workspace::FileInfo;

pub struct RuleSpec {
    pub id: &'static str,
    /// One-line invariant statement (used by `--list-rules` and docs).
    pub summary: &'static str,
}

pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        id: "lock-order",
        summary: "shard locks are acquired before WAL locks (declared order: shard → wal); \
                  taking a shard lock after a WAL lock in the same function is an inversion",
    },
    RuleSpec {
        id: "no-panic-hot-path",
        summary: "unwrap()/expect()/panic!/todo!/unimplemented!/unreachable! are forbidden \
                  outside tests in serve hot-path files (net, http, server, shard, wal, sync, obs/*)",
    },
    RuleSpec {
        id: "no-locks-on-fast-path",
        summary: "functions marked `lint:fast-path` (the lock-free I/O-thread routes: /metrics, \
                  /healthz, /readyz, /debug/*) must not take blocking locks",
    },
    RuleSpec {
        id: "relaxed-needs-justification",
        summary: "every non-test Ordering::Relaxed carries a `relaxed-ok:` comment explaining \
                  why relaxed ordering is sound for that access",
    },
    RuleSpec {
        id: "fsync-before-rename",
        summary: "a rename() used as a durability commit point must be preceded by \
                  sync_all()/sync_data() in the same function",
    },
    RuleSpec {
        id: "no-raw-eprintln",
        summary: "library code logs through the structured logger, not eprintln! \
                  (bins and tests exempt)",
    },
    RuleSpec {
        id: "forbid-unsafe-attr",
        summary: "every crate root (lib.rs, main.rs, src/bin/*.rs) declares #![forbid(unsafe_code)]",
    },
];

pub fn rule_ids() -> Vec<&'static str> {
    RULES.iter().map(|r| r.id).collect()
}

/// Run every applicable rule over one scanned file; returns raw hits
/// (before `lint:allow` processing).
pub fn check_file(info: &FileInfo, scanned: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    forbid_unsafe_attr(info, scanned, &mut out);
    no_panic_hot_path(info, scanned, &mut out);
    no_raw_eprintln(info, scanned, &mut out);
    relaxed_needs_justification(info, scanned, &mut out);
    fsync_before_rename(info, scanned, &mut out);
    lock_order(info, scanned, &mut out);
    no_locks_on_fast_path(info, scanned, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Token helpers (byte-oriented; bytes >= 0x80 are treated as identifier
// continuation so multi-byte idents never split a word boundary).

fn ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// Start offsets of `word` in `line` with identifier boundaries on both sides.
fn find_word(line: &str, word: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let w = word.as_bytes();
    let mut out = Vec::new();
    if w.is_empty() {
        return out;
    }
    let mut i = 0;
    while i + w.len() <= b.len() {
        if &b[i..i + w.len()] == w
            && (i == 0 || !ident_byte(b[i - 1]))
            && (i + w.len() == b.len() || !ident_byte(b[i + w.len()]))
        {
            out.push(i);
            i += w.len();
        } else {
            i += 1;
        }
    }
    out
}

fn next_non_space(b: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < b.len() {
        if b[i] != b' ' {
            return Some((i, b[i]));
        }
        i += 1;
    }
    None
}

fn prev_non_space(b: &[u8], i: usize) -> Option<(usize, u8)> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if b[j] != b' ' {
            return Some((j, b[j]));
        }
    }
    None
}

/// Offsets where `.name(` occurs (a method call). Returns (word_start, dot_pos).
fn method_calls(line: &str, name: &str) -> Vec<(usize, usize)> {
    let b = line.as_bytes();
    find_word(line, name)
        .into_iter()
        .filter_map(|p| {
            let (dot, dc) = prev_non_space(b, p)?;
            let (_, after) = next_non_space(b, p + name.len())?;
            (dc == b'.' && after == b'(').then_some((p, dot))
        })
        .collect()
}

/// Like [`method_calls`], but additionally requires an empty argument list
/// (`.read()`), which separates `RwLock::read()` from `io::Read::read(buf)`.
fn empty_method_calls(line: &str, name: &str) -> Vec<(usize, usize)> {
    let b = line.as_bytes();
    method_calls(line, name)
        .into_iter()
        .filter(|&(p, _)| {
            next_non_space(b, p + name.len())
                .and_then(|(open, _)| next_non_space(b, open + 1))
                .is_some_and(|(_, c)| c == b')')
        })
        .collect()
}

/// Offsets where `name(` occurs as a plain call (free function or method —
/// no receiver requirement).
fn calls(line: &str, name: &str) -> Vec<usize> {
    let b = line.as_bytes();
    find_word(line, name)
        .into_iter()
        .filter(|&p| next_non_space(b, p + name.len()).is_some_and(|(_, c)| c == b'('))
        .collect()
}

/// Offsets where `name!` occurs (macro invocation).
fn macro_uses(line: &str, name: &str) -> Vec<usize> {
    let b = line.as_bytes();
    find_word(line, name)
        .into_iter()
        .filter(|&p| b.get(p + name.len()) == Some(&b'!'))
        .collect()
}

/// The receiver-chain text ending at the `.` at byte `dot` — e.g. for
/// `self.wals[i].lock()` with the final dot, returns `self.wals[i]`.
/// Balanced `(...)`/`[...]` groups are included. When the chain starts at
/// column 0 (rustfmt split the method onto its own line), the previous
/// non-empty line's trailing chain is prepended.
fn receiver_chain(scanned: &ScannedFile, line_no: usize, dot: usize) -> String {
    let line = scanned.code_line(line_no);
    let b = line.as_bytes();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        let c = b[j - 1];
        if c == b')' || c == b']' {
            let (open, close) = if c == b')' {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0usize;
            let mut k = j;
            let mut matched = false;
            while k > 0 {
                k -= 1;
                if b[k] == close {
                    depth += 1;
                } else if b[k] == open {
                    depth -= 1;
                    if depth == 0 {
                        matched = true;
                        break;
                    }
                }
            }
            if !matched {
                break;
            }
            j = k;
        } else if ident_byte(c) || c == b'.' || c == b':' || c == b'?' {
            j -= 1;
        } else {
            break;
        }
    }
    let mut chain = line[j..dot].to_string();
    if line[..j].trim().is_empty() && line_no > 1 {
        // Method on its own line: pull the previous line's tail into the chain.
        let prev = scanned.code_line(line_no - 1).trim_end();
        chain = format!("{prev}{chain}");
    }
    chain
}

// ---------------------------------------------------------------------------
// Rules

fn forbid_unsafe_attr(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !info.is_crate_root {
        return;
    }
    let has_attr = scanned
        .code
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has_attr {
        out.push(Diagnostic::error(
            "forbid-unsafe-attr",
            &info.rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }
}

fn no_panic_hot_path(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !info.hot_path {
        return;
    }
    for line_no in 1..=scanned.line_count() {
        if scanned.is_test_line(line_no) {
            continue;
        }
        let line = scanned.code_line(line_no);
        for method in ["unwrap", "expect"] {
            for _ in method_calls(line, method) {
                out.push(Diagnostic::error(
                    "no-panic-hot-path",
                    &info.rel,
                    line_no,
                    format!("`.{method}()` can panic a worker thread on the hot path; return an error or restructure"),
                ));
            }
        }
        for mac in ["panic", "todo", "unimplemented", "unreachable"] {
            for _ in macro_uses(line, mac) {
                out.push(Diagnostic::error(
                    "no-panic-hot-path",
                    &info.rel,
                    line_no,
                    format!(
                        "`{mac}!` is forbidden on the hot path; return an error or restructure"
                    ),
                ));
            }
        }
    }
}

fn no_raw_eprintln(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if info.is_bin {
        return;
    }
    for line_no in 1..=scanned.line_count() {
        if scanned.is_test_line(line_no) {
            continue;
        }
        for _ in macro_uses(scanned.code_line(line_no), "eprintln") {
            out.push(Diagnostic::error(
                "no-raw-eprintln",
                &info.rel,
                line_no,
                "library code must log through the structured logger, not `eprintln!`",
            ));
        }
    }
}

fn relaxed_needs_justification(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for line_no in 1..=scanned.line_count() {
        if scanned.is_test_line(line_no) {
            continue;
        }
        let line = scanned.code_line(line_no);
        if !line.contains("Ordering::Relaxed") && find_word(line, "Relaxed").is_empty() {
            continue;
        }
        // `Relaxed` must appear as a path segment or bare import of the
        // atomic ordering; a plain identifier named Relaxed counts too —
        // better a rare false positive than a missed atomic.
        let justified = [line_no, line_no.saturating_sub(1)]
            .iter()
            .any(|&l| l >= 1 && has_justification(scanned.comment_line(l), "relaxed-ok:"));
        if !justified {
            out.push(Diagnostic::error(
                "relaxed-needs-justification",
                &info.rel,
                line_no,
                "Ordering::Relaxed needs a `// relaxed-ok: <why this ordering is sound>` comment \
                 on this line or the line above",
            ));
        }
    }
}

/// Does the comment contain `marker` followed by non-empty text?
fn has_justification(comment: &str, marker: &str) -> bool {
    comment
        .find(marker)
        .is_some_and(|p| !comment[p + marker.len()..].trim().is_empty())
}

fn fsync_before_rename(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for f in &scanned.functions {
        let mut synced_at: Option<(usize, usize)> = None;
        for line_no in f.header_line..=f.body_end {
            if scanned.is_test_line(line_no) {
                continue;
            }
            let line = scanned.code_line(line_no);
            for name in ["sync_all", "sync_data"] {
                if let Some(&p) = calls(line, name).first() {
                    if synced_at.is_none() {
                        synced_at = Some((line_no, p));
                    }
                }
            }
            for p in calls(line, "rename") {
                let ok = synced_at.is_some_and(|(sl, sp)| (sl, sp) < (line_no, p));
                if !ok {
                    out.push(Diagnostic::error(
                        "fsync-before-rename",
                        &info.rel,
                        line_no,
                        format!(
                            "`rename` in `{}` is not preceded by sync_all()/sync_data(); \
                             a crash can commit the rename with unsynced contents",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// A lock event inside a function body, ordered by (line, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct LockEvent {
    line: usize,
    col: usize,
}

fn lock_order(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for f in &scanned.functions {
        let mut first_wal: Option<LockEvent> = None;
        for line_no in f.body_start..=f.body_end {
            if scanned.is_test_line(line_no) {
                continue;
            }
            let line = scanned.code_line(line_no);

            // WAL acquisitions: `.lock()` on a receiver mentioning `wal`.
            for (p, dot) in method_calls(line, "lock") {
                let chain = receiver_chain(scanned, line_no, dot).to_ascii_lowercase();
                if chain.contains("wal") && first_wal.is_none() {
                    first_wal = Some(LockEvent {
                        line: line_no,
                        col: p,
                    });
                }
            }

            // Shard acquisitions: write_shard()/read_shard() helpers, or
            // `.read()`/`.write()` on a receiver mentioning shard/store.
            let mut shard_events: Vec<LockEvent> = Vec::new();
            for helper in ["write_shard", "read_shard"] {
                for p in calls(line, helper) {
                    shard_events.push(LockEvent {
                        line: line_no,
                        col: p,
                    });
                }
            }
            for method in ["read", "write"] {
                for (p, dot) in empty_method_calls(line, method) {
                    let chain = receiver_chain(scanned, line_no, dot).to_ascii_lowercase();
                    if chain.contains("shard") || chain.contains("store") {
                        shard_events.push(LockEvent {
                            line: line_no,
                            col: p,
                        });
                    }
                }
            }

            for ev in shard_events {
                if let Some(wal) = first_wal {
                    if wal < ev {
                        out.push(Diagnostic::error(
                            "lock-order",
                            &info.rel,
                            ev.line,
                            format!(
                                "shard lock acquired after a WAL lock in `{}` (WAL lock at line {}); \
                                 declared order is shard → wal",
                                f.name, wal.line
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn no_locks_on_fast_path(info: &FileInfo, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for f in &scanned.functions {
        if !is_fast_path_marked(scanned, f) {
            continue;
        }
        for line_no in f.body_start..=f.body_end {
            if scanned.is_test_line(line_no) {
                continue;
            }
            let line = scanned.code_line(line_no);
            let mut hits = 0usize;
            hits += method_calls(line, "lock").len();
            hits += empty_method_calls(line, "read").len();
            hits += empty_method_calls(line, "write").len();
            hits += method_calls(line, "wait").len();
            hits += method_calls(line, "wait_timeout").len();
            hits += calls(line, "lock_unpoisoned").len();
            for _ in 0..hits {
                out.push(Diagnostic::error(
                    "no-locks-on-fast-path",
                    &info.rel,
                    line_no,
                    format!(
                        "`{}` is marked lint:fast-path and must stay lock-free; \
                         use try_* with a published-value fallback instead",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// A function is fast-path-marked when a `lint:fast-path` comment sits on
/// its header line, within the four lines above it, or on the body-open line.
fn is_fast_path_marked(scanned: &ScannedFile, f: &FnSpan) -> bool {
    let from = f.header_line.saturating_sub(4).max(1);
    (from..=f.body_start).any(|l| scanned.comment_line(l).contains("lint:fast-path"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::workspace::FileInfo;

    fn hot() -> FileInfo {
        FileInfo::synthetic("crates/multiem-serve/src/server.rs", false, false, true)
    }

    fn plain() -> FileInfo {
        FileInfo::synthetic("crates/multiem-core/src/matcher.rs", false, false, false)
    }

    fn rules_hit(info: &FileInfo, src: &str) -> Vec<(String, usize)> {
        let s = scan(src);
        check_file(info, &s)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unwrap_flagged_only_on_hot_path() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        assert_eq!(
            rules_hit(&hot(), src),
            vec![("no-panic-hot-path".to_string(), 2)]
        );
        assert!(rules_hit(&plain(), src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0).max(x.unwrap_or_default())\n}\n";
        assert!(rules_hit(&hot(), src).is_empty());
    }

    #[test]
    fn panics_in_tests_are_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        panic!(\"boom\");\n    }\n}\n";
        assert!(rules_hit(&hot(), src).is_empty());
    }

    #[test]
    fn macro_panics_flagged() {
        let src = "fn f() {\n    todo!()\n}\nfn g() {\n    unreachable!()\n}\n";
        let hits = rules_hit(&hot(), src);
        assert_eq!(
            hits.iter()
                .filter(|(r, _)| r == "no-panic-hot-path")
                .count(),
            2
        );
    }

    #[test]
    fn eprintln_flagged_in_lib_not_bin() {
        let src = "fn f() {\n    eprintln!(\"oops\");\n}\n";
        assert_eq!(
            rules_hit(&plain(), src),
            vec![("no-raw-eprintln".to_string(), 2)]
        );
        let bin = FileInfo::synthetic("crates/multiem-serve/src/bin/serve.rs", true, true, false);
        let hits = rules_hit(&bin, src);
        assert!(
            !hits.iter().any(|(r, _)| r == "no-raw-eprintln"),
            "{hits:?}"
        );
    }

    #[test]
    fn relaxed_requires_comment() {
        let bad = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("relaxed-needs-justification".to_string(), 2)]
        );
        let ok_same = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotonic counter\n}\n";
        assert!(rules_hit(&plain(), ok_same).is_empty());
        let ok_above = "fn f(c: &AtomicU64) {\n    // relaxed-ok: monotonic counter\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(rules_hit(&plain(), ok_above).is_empty());
        let empty_reason =
            "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // relaxed-ok:\n}\n";
        assert_eq!(rules_hit(&plain(), empty_reason).len(), 1);
    }

    #[test]
    fn rename_without_sync_flagged() {
        let bad = "fn commit(tmp: &Path, dst: &Path) -> io::Result<()> {\n    std::fs::rename(tmp, dst)\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("fsync-before-rename".to_string(), 2)]
        );
        let good = "fn commit(f: &File, tmp: &Path, dst: &Path) -> io::Result<()> {\n    f.sync_all()?;\n    std::fs::rename(tmp, dst)\n}\n";
        assert!(rules_hit(&plain(), good).is_empty());
    }

    #[test]
    fn sync_after_rename_does_not_count() {
        let bad = "fn commit(f: &File, tmp: &Path, dst: &Path) -> io::Result<()> {\n    std::fs::rename(tmp, dst)?;\n    f.sync_all()\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("fsync-before-rename".to_string(), 2)]
        );
    }

    #[test]
    fn wal_then_shard_is_an_inversion() {
        let bad = "fn f(&self) {\n    let w = self.wals[0].lock();\n    let s = self.shards[0].store.read();\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("lock-order".to_string(), 3)]
        );
        let good = "fn f(&self) {\n    let s = self.shards[0].store.read();\n    let w = self.wals[0].lock();\n}\n";
        assert!(rules_hit(&plain(), good).is_empty());
    }

    #[test]
    fn shard_helpers_count_as_shard_locks() {
        let bad = "fn f(&self) {\n    let w = self.wal_handle().lock();\n    let s = self.write_shard(0);\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("lock-order".to_string(), 3)]
        );
    }

    #[test]
    fn read_with_args_is_io_not_lock() {
        let src = "fn f(&self, file: &mut File, buf: &mut [u8]) {\n    let w = self.wals[0].lock();\n    file.read(buf);\n}\n";
        assert!(rules_hit(&plain(), src).is_empty());
    }

    #[test]
    fn fast_path_marker_bans_locks() {
        let bad = "// lint:fast-path\nfn metrics(&self) -> String {\n    let g = self.state.lock();\n    String::new()\n}\n";
        assert_eq!(
            rules_hit(&plain(), bad),
            vec![("no-locks-on-fast-path".to_string(), 3)]
        );
        let good = "// lint:fast-path\nfn metrics(&self) -> String {\n    if let Some(g) = self.state.try_read() {\n        return render(&g);\n    }\n    String::new()\n}\n";
        assert!(rules_hit(&plain(), good).is_empty());
        let unmarked =
            "fn metrics(&self) -> String {\n    let g = self.state.lock();\n    String::new()\n}\n";
        assert!(rules_hit(&plain(), unmarked).is_empty());
    }

    #[test]
    fn crate_root_needs_forbid_unsafe() {
        let root = FileInfo::synthetic("crates/multiem-core/src/lib.rs", true, false, false);
        let bad = "pub mod matcher;\n";
        assert_eq!(
            rules_hit(&root, bad),
            vec![("forbid-unsafe-attr".to_string(), 1)]
        );
        let good = "#![forbid(unsafe_code)]\npub mod matcher;\n";
        assert!(rules_hit(&root, good).is_empty());
        assert!(rules_hit(&plain(), bad).is_empty());
    }
}
