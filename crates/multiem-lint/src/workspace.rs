//! Workspace discovery and file classification.
//!
//! The linter walks every workspace member's `src/` tree (plus the root
//! package's `src/`), classifying each `.rs` file so rules can scope
//! themselves: crate roots (`lib.rs`, `main.rs`, `src/bin/*.rs`), binary
//! sources, and the serve hot-path set.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Basenames in `crates/multiem-serve/src/` that form the hot path for the
/// `no-panic-hot-path` rule; `obs/` is included wholesale.
const HOT_BASENAMES: &[&str] = &[
    "net.rs",
    "http.rs",
    "server.rs",
    "shard.rs",
    "wal.rs",
    "sync.rs",
];

#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (stable across OSes).
    pub rel: String,
    /// True for `lib.rs`, `main.rs`, and `src/bin/*.rs` — files that must
    /// carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// True for binary sources (`main.rs`, `src/bin/*.rs`): CLI tools may
    /// print to stderr directly.
    pub is_bin: bool,
    /// True for the serve hot-path set guarded by `no-panic-hot-path`.
    pub hot_path: bool,
}

impl FileInfo {
    /// Classification used by fixture tests, where the role is declared in
    /// the fixture header instead of derived from the path.
    pub fn synthetic(rel: &str, is_crate_root: bool, is_bin: bool, hot_path: bool) -> Self {
        FileInfo {
            path: PathBuf::from(rel),
            rel: rel.to_string(),
            is_crate_root,
            is_bin,
            hot_path,
        }
    }
}

/// Find the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Parse `members = [...]` entries from the root manifest. Tolerates one
/// entry per line or several per line; ignores comments.
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("");
        if !in_members {
            if let Some(rest) = line.split_once("members").map(|(_, r)| r) {
                if rest.trim_start().starts_with('=') {
                    in_members = true;
                }
            }
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                break;
            }
        }
    }
    members
}

/// Enumerate every lintable `.rs` file under the workspace's member `src/`
/// trees, classified. Sorted by relative path for deterministic output.
pub fn discover(root: &Path) -> io::Result<Vec<FileInfo>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    // The root package's own sources, if any.
    if root.join("src").is_dir() {
        src_dirs.push(root.join("src"));
    }
    for member in workspace_members(&manifest) {
        let src = root.join(&member).join("src");
        if src.is_dir() {
            src_dirs.push(src);
        }
    }

    let mut files = Vec::new();
    for src in &src_dirs {
        let mut stack = vec![src.clone()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    files.push(classify(root, src, path));
                }
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn classify(root: &Path, src: &Path, path: PathBuf) -> FileInfo {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(&path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let within_src = path.strip_prefix(src).unwrap_or(&path);
    let within = within_src
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");

    let is_bin = within == "main.rs" || within.starts_with("bin/");
    let is_crate_root = within == "lib.rs"
        || within == "main.rs"
        || (within.starts_with("bin/") && within.matches('/').count() == 1);
    let hot_path = rel.starts_with("crates/multiem-serve/src/")
        && (rel.starts_with("crates/multiem-serve/src/obs/")
            || HOT_BASENAMES
                .iter()
                .any(|b| rel == format!("crates/multiem-serve/src/{b}")));

    FileInfo {
        path,
        rel,
        is_crate_root,
        is_bin,
        hot_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_members_list() {
        let manifest =
            "[workspace]\nmembers = [\n    \"crates/a\", # comment\n    \"crates/b\",\n]\n";
        assert_eq!(workspace_members(manifest), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn classifies_roots_bins_and_hot_files() {
        let root = Path::new("/ws");
        let src = root.join("crates/multiem-serve/src");
        let f = classify(root, &src, src.join("lib.rs"));
        assert!(f.is_crate_root && !f.is_bin && !f.hot_path);
        let f = classify(root, &src, src.join("server.rs"));
        assert!(!f.is_crate_root && !f.is_bin && f.hot_path);
        let f = classify(root, &src, src.join("obs/registry.rs"));
        assert!(f.hot_path);
        let f = classify(root, &src, src.join("bin/serve.rs"));
        assert!(f.is_crate_root && f.is_bin && !f.hot_path);
        let other = root.join("crates/multiem-core/src");
        let f = classify(root, &other, other.join("matcher.rs"));
        assert!(!f.is_crate_root && !f.is_bin && !f.hot_path);
    }
}
