//! `multiem-lint` CLI: walk the workspace and report invariant violations.
//!
//! Exit status 0 means the tree is clean (every suppression justified);
//! any diagnostic — including a malformed or unused `lint:allow` — exits 1.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use multiem_lint::{lint_workspace, rules};

const USAGE: &str = "usage: multiem-lint [--workspace] [--root <dir>] [--list-rules]

  --workspace    lint every workspace member's src/ tree (root auto-detected
                 by walking up from the current directory)
  --root <dir>   override the workspace root
  --list-rules   print each rule id and the invariant it guards";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut run_workspace = false;
    let mut root_override: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => run_workspace = true,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in rules::RULES {
                    println!(
                        "{:28} {}",
                        rule.id,
                        rule.summary
                            .split_whitespace()
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if !run_workspace && root_override.is_none() {
        println!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root_override {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("cannot determine current directory: {err}");
                    return ExitCode::from(2);
                }
            };
            match multiem_lint::workspace::find_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diagnostics = lint_workspace(&root);
    for diag in &diagnostics {
        println!("{}", diag.render());
    }
    if diagnostics.is_empty() {
        println!(
            "multiem-lint: workspace clean ({} rules)",
            rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("multiem-lint: {} diagnostic(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}
