//! Minimal `#[derive(Serialize, Deserialize)]` implementation for the
//! offline `serde` stand-in used by this workspace.
//!
//! Written directly against `proc_macro` (no `syn`/`quote`, which are not
//! vendored in this environment). Supports the shapes this codebase uses:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which are
//!   skipped on serialize and `Default`-initialised on deserialize);
//! * tuple structs;
//! * enums whose variants are unit or tuple variants.
//!
//! Generics are intentionally unsupported; deriving on a generic type fails
//! with a compile error rather than generating wrong code.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: (variant name, arity). Arity 0 = unit variant.
    Enum(Vec<(String, usize)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Skip a run of `#[...]` attributes, returning whether any of them is
/// `#[serde(skip)]`-like (contains the ident `skip` under a `serde` list).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if is_serde_skip(&g.stream()) {
                        skip = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, skip)
}

fn is_serde_skip(attr_body: &TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is not supported"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Struct(parse_named_fields(&g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok((
                name,
                Shape::TupleStruct(count_top_level_fields(&g.stream())),
            )),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            _ => Err("serde stub derive: malformed struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(&g.stream())?)))
            }
            _ => Err("serde stub derive: malformed enum body".into()),
        },
        other => Err(format!(
            "serde stub derive: unsupported item kind `{other}`"
        )),
    }
}

fn parse_named_fields(body: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (ni, skip) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde stub derive: expected field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde stub derive: expected `:` after field `{name}`"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_top_level_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(body: &TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (ni, _) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde stub derive: expected variant name".into()),
        };
        i += 1;
        let mut arity = 0usize;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_fields(&g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stub derive: struct-like variant `{name}` is not supported"
                ));
            }
            _ => {}
        }
        // Skip an optional `= discriminant`.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => generate_serialize(name, shape),
        Mode::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Map(__m)"
            )
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                    let vals: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    let payload = if *arity == 1 {
                        vals[0].clone()
                    } else {
                        format!("::serde::Value::Seq(vec![{}])", vals.join(", "))
                    };
                    arms.push_str(&format!(
                        "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), {payload})]),\n",
                        binds.join(", ")
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{fname}: match ::serde::__get_field(__v, {fname:?}) {{\n\
                         Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                         None => return Err(::serde::Error::missing_field({tname:?}, {fname:?})),\n\
                         }},\n",
                        fname = f.name,
                        tname = name
                    ));
                }
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::type_mismatch({name:?}, \"sequence\"))?;\n\
                 if __s.len() != {arity} {{ return Err(::serde::Error::type_mismatch({name:?}, \"sequence arity\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, arity) in variants {
                if *arity == 0 {
                    unit_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),\n"));
                } else if *arity == 1 {
                    data_arms.push_str(&format!(
                        "{v:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),\n"
                    ));
                } else {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    data_arms.push_str(&format!(
                        "{v:?} => {{\n\
                         let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::type_mismatch({name:?}, \"variant payload sequence\"))?;\n\
                         if __s.len() != {arity} {{ return Err(::serde::Error::type_mismatch({name:?}, \"variant payload arity\")); }}\n\
                         return Ok({name}::{v}({}));\n\
                         }}\n",
                        items.join(", ")
                    ));
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Some((__variant, __payload)) = __v.as_single_entry_map() {{\n\
                 match __variant {{\n{data_arms} _ => {{}} }}\n\
                 }}\n\
                 Err(::serde::Error::type_mismatch({name:?}, \"known enum variant\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
