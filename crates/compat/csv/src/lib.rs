//! Offline stand-in for the `csv` crate: RFC-4180 reading/writing of
//! comma-separated records with quoting, covering the builder API surface the
//! workspace uses.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// CSV error.
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Crate result type.
pub type Result<T> = std::result::Result<T, Error>;

/// One parsed CSV row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StringRecord {
    fields: Vec<String>,
}

impl StringRecord {
    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate the fields.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(String::as_str)
    }

    /// Field by position.
    pub fn get(&self, i: usize) -> Option<&str> {
        self.fields.get(i).map(String::as_str)
    }
}

impl std::ops::Index<usize> for StringRecord {
    type Output = str;

    fn index(&self, i: usize) -> &str {
        &self.fields[i]
    }
}

/// Builder for [`Reader`].
#[derive(Debug, Clone)]
pub struct ReaderBuilder {
    has_headers: bool,
}

impl Default for ReaderBuilder {
    fn default() -> Self {
        Self { has_headers: true }
    }
}

impl ReaderBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the first row is a header row.
    pub fn has_headers(&mut self, yes: bool) -> &mut Self {
        self.has_headers = yes;
        self
    }

    /// Accepted for API compatibility; this reader is always strict about
    /// nothing (records may vary in width).
    pub fn flexible(&mut self, _yes: bool) -> &mut Self {
        self
    }

    /// Build a reader over `rdr`.
    pub fn from_reader<R: Read>(&self, rdr: R) -> Reader<R> {
        Reader {
            input: BufReader::new(rdr),
            has_headers: self.has_headers,
            headers: None,
            headers_read: false,
        }
    }
}

/// A CSV reader.
#[derive(Debug)]
pub struct Reader<R: Read> {
    input: BufReader<R>,
    has_headers: bool,
    headers: Option<StringRecord>,
    headers_read: bool,
}

impl<R: Read> Reader<R> {
    fn read_raw_record(&mut self) -> Result<Option<StringRecord>> {
        // Accumulate physical lines until quotes are balanced (embedded
        // newlines inside quoted fields span lines).
        let mut raw = String::new();
        loop {
            let mut line = String::new();
            let n = self.input.read_line(&mut line)?;
            if n == 0 {
                if raw.is_empty() {
                    return Ok(None);
                }
                break;
            }
            raw.push_str(&line);
            if raw.matches('"').count().is_multiple_of(2) {
                break;
            }
        }
        while raw.ends_with('\n') || raw.ends_with('\r') {
            raw.pop();
        }
        if raw.is_empty() {
            // Skip blank lines between records.
            return self.read_raw_record();
        }
        Ok(Some(parse_record(&raw)?))
    }

    /// The header record (first row).
    pub fn headers(&mut self) -> Result<&StringRecord> {
        if !self.headers_read {
            self.headers_read = true;
            self.headers = self.read_raw_record()?;
        }
        self.headers
            .as_ref()
            .ok_or_else(|| Error("empty CSV input: no header row".into()))
    }

    /// Iterate the data records.
    pub fn records(&mut self) -> RecordsIter<'_, R> {
        if self.has_headers && !self.headers_read {
            self.headers_read = true;
            self.headers = self.read_raw_record().ok().flatten();
        }
        RecordsIter { reader: self }
    }
}

/// Iterator over the records of a [`Reader`].
pub struct RecordsIter<'a, R: Read> {
    reader: &'a mut Reader<R>,
}

impl<R: Read> Iterator for RecordsIter<'_, R> {
    type Item = Result<StringRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.reader.read_raw_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

fn parse_record(line: &str) -> Result<StringRecord> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error("unterminated quoted field".into()));
    }
    fields.push(field);
    Ok(StringRecord { fields })
}

/// Builder for [`Writer`].
#[derive(Debug, Clone, Default)]
pub struct WriterBuilder {}

impl WriterBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a writer over `wtr`.
    pub fn from_writer<W: Write>(&self, wtr: W) -> Writer<W> {
        Writer { output: wtr }
    }
}

/// A CSV writer.
#[derive(Debug)]
pub struct Writer<W: Write> {
    output: W,
}

impl<W: Write> Writer<W> {
    /// Write one record, quoting fields as needed.
    pub fn write_record<I, T>(&mut self, record: I) -> Result<()>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        let mut line = String::new();
        for (i, f) in record.into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let f = f.as_ref();
            if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
                line.push('"');
                line.push_str(&f.replace('"', "\"\""));
                line.push('"');
            } else {
                line.push_str(f);
            }
        }
        line.push('\n');
        self.output.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.output.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_quoting() {
        let mut buf = Vec::new();
        {
            let mut w = WriterBuilder::new().from_writer(&mut buf);
            w.write_record(["a", "b,with comma", "c\"quote"]).unwrap();
            w.write_record(["multi\nline", "", "z"]).unwrap();
            w.flush().unwrap();
        }
        let mut r = ReaderBuilder::new()
            .has_headers(false)
            .from_reader(buf.as_slice());
        let rows: Vec<StringRecord> = r.records().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(&rows[0][1], "b,with comma");
        assert_eq!(&rows[0][2], "c\"quote");
        assert_eq!(&rows[1][0], "multi\nline");
        assert_eq!(&rows[1][1], "");
    }

    #[test]
    fn headers_then_records() {
        let text = "x,y\n1,2\n3,4\n";
        let mut r = ReaderBuilder::new()
            .has_headers(true)
            .from_reader(text.as_bytes());
        assert_eq!(
            r.headers().unwrap().iter().collect::<Vec<_>>(),
            vec!["x", "y"]
        );
        let rows: Vec<StringRecord> = r.records().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(&rows[1][0], "3");
    }
}
