//! Offline stand-in for `rayon`, backed by a real thread pool.
//!
//! The first seed of this crate executed every `par_iter` sequentially so the
//! workspace could build without the crates.io registry. It now ships two
//! pieces of actual concurrency machinery:
//!
//! * [`ThreadPool`] — a fixed-size pool of persistent worker threads with a
//!   shared job queue ([`ThreadPool::execute`] for `'static` jobs, used by
//!   `multiem-serve` to drive HTTP connections) plus a scoped fork-join entry
//!   point ([`ThreadPool::run_scoped`]) for jobs that borrow local data;
//! * the `par_iter` adapters below, which split their input into contiguous
//!   chunks and map them concurrently — capped at the width of the process
//!   [`global_pool`] — while preserving the sequential output order, so
//!   `parallel: true` pipelines produce byte-identical results to sequential
//!   runs (the equivalence the test-suite asserts).
//!
//! Borrowed-data bursts run on scoped threads (`std::thread::scope`) rather
//! than the persistent workers: forwarding non-`'static` closures to
//! long-lived threads is not expressible in safe Rust, and this crate stays
//! `unsafe`-free. The pool still governs their width. A real rayon can be
//! swapped back in by restoring the crates.io dependency.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread;

// --------------------------------------------------------------------------
// Thread pool
// --------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
///
/// Two execution modes:
///
/// * [`ThreadPool::execute`] queues a `'static` job on the persistent
///   workers (fire-and-forget, FIFO);
/// * [`ThreadPool::run_scoped`] runs a batch of index-addressed jobs that may
///   borrow the caller's stack, blocking until all complete. Jobs are claimed
///   work-stealing-style from a shared counter, with concurrency capped at
///   the pool size.
///
/// Dropping the pool closes the queue and joins every worker, so queued jobs
/// always finish.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Create a pool of `size` persistent workers (`size` is clamped to at
    /// least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("multiem-pool-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to dequeue, never while running
                        // the job, so workers drain the queue concurrently.
                        let job = receiver.lock().expect("pool queue poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // queue closed: pool is dropping
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// The number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.size
    }

    /// Queue a job on the persistent workers.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool is alive")
            .send(Box::new(job))
            .expect("pool workers are alive");
    }

    /// Queue `job` on the persistent workers and hand its result to
    /// `complete` on the same worker thread (submit-with-completion): the
    /// submitting thread never blocks, and the completion typically ships
    /// the result back over a channel. This is the primitive the serving
    /// layer's event loops use to dispatch parsed requests without parking
    /// an I/O thread on the response.
    pub fn execute_then<T, F, C>(&self, job: F, complete: C)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        C: FnOnce(T) + Send + 'static,
    {
        self.execute(move || complete(job()));
    }

    /// Run `jobs` index-addressed tasks concurrently and wait for all of
    /// them. `f(i)` is called exactly once for every `i < jobs`, from up to
    /// `num_threads` threads. Unlike [`ThreadPool::execute`], `f` may borrow
    /// from the caller's stack.
    pub fn run_scoped<F: Fn(usize) + Sync>(&self, jobs: usize, f: F) {
        run_scoped_width(self.size, jobs, &f);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Run `jobs` tasks on up to `width` scoped threads, claiming indices from a
/// shared atomic counter.
fn run_scoped_width<F: Fn(usize) + Sync>(width: usize, jobs: usize, f: &F) {
    if jobs == 0 {
        return;
    }
    let width = width.min(jobs).max(1);
    if width == 1 {
        for i in 0..jobs {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|| loop {
                // relaxed-ok: job-ticket dispenser; the RMW uniqueness is all that matters
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                f(i);
            });
        }
    });
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool used by the `par_iter` adapters (width from
/// `RAYON_NUM_THREADS` or the available parallelism).
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_num_threads()))
}

/// Width of the global pool.
pub fn current_num_threads() -> usize {
    global_pool().num_threads()
}

fn default_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

// --------------------------------------------------------------------------
// Parallel mapping core
// --------------------------------------------------------------------------

/// Map `f` over `items` concurrently, preserving input order in the output.
/// The slice is split into one contiguous chunk per thread; each chunk is
/// mapped independently and the per-chunk outputs are concatenated in order,
/// so the result is identical to `items.iter().map(f).collect()`.
fn map_chunked<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let width = current_num_threads().min(items.len());
    if width <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(width);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// `for_each` over mutable chunks, same chunking scheme as [`map_chunked`].
fn for_each_mut_chunked<T, F>(items: &mut [T], f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let width = current_num_threads().min(items.len());
    if width <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let chunk = items.len().div_ceil(width);
    thread::scope(|scope| {
        for chunk in items.chunks_mut(chunk) {
            scope.spawn(move || chunk.iter_mut().for_each(f));
        }
    });
}

// --------------------------------------------------------------------------
// Parallel iterator adapters
// --------------------------------------------------------------------------

/// Parallel iterator over `&[T]` (the result of `par_iter`).
#[derive(Debug)]
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Map every item through `f` (lazily; drive with `collect`/`for_each`).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item concurrently.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        map_chunked(self.items, &|item| f(item));
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A mapped parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluate the map concurrently, collecting results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        map_chunked(self.items, &self.f).into_iter().collect()
    }

    /// Evaluate the map concurrently for its side effects.
    pub fn for_each(self) {
        map_chunked(self.items, &self.f);
    }

    /// Evaluate concurrently and sum the results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        map_chunked(self.items, &self.f).into_iter().sum()
    }
}

/// Parallel iterator over `&mut [T]` (the result of `par_iter_mut`).
#[derive(Debug)]
pub struct ParSliceMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> ParSliceMut<'_, T> {
    /// Run `f` on every item concurrently.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        for_each_mut_chunked(self.items, &f);
    }
}

/// Owning parallel iterator (the result of `into_par_iter` on a `Vec`).
#[derive(Debug)]
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> ParVec<T> {
    /// Sum the items concurrently.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let width = current_num_threads().min(self.items.len()).max(1);
        if width <= 1 {
            return self.items.into_iter().sum();
        }
        let chunk = self.items.len().div_ceil(width);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let partials: Vec<S> = map_chunked_owned(chunks);
        partials.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Sum helper: consume each chunk on its own scoped thread.
fn map_chunked_owned<T: Send, S: std::iter::Sum<T> + Send>(chunks: Vec<Vec<T>>) -> Vec<S> {
    let mut out = Vec::with_capacity(chunks.len());
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().sum::<S>()))
            .collect();
        for handle in handles {
            out.push(handle.join().expect("parallel sum worker panicked"));
        }
    });
    out
}

/// Parallel iterator over a `Range<usize>`.
#[derive(Debug)]
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Number of indices.
    pub fn count(self) -> usize {
        self.range.len()
    }

    /// Run `f` on every index concurrently.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        global_pool().run_scoped(self.range.len(), |i| f(start + i));
    }

    /// Map every index through `f`, collecting in input order.
    pub fn map<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = self.range.collect();
        map_chunked(&indices, &|&i| f(i))
    }
}

// --------------------------------------------------------------------------
// Entry-point traits (the rayon prelude surface this workspace uses)
// --------------------------------------------------------------------------

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait IntoParallelRefIterator<T> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { items: self }
    }
}

/// `par_iter_mut` over slices.
pub trait IntoParallelRefMutIterator<T> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
}

impl<T: Send> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { items: self }
    }
}

/// Owning `into_par_iter`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type ParIter;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::ParIter;
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type ParIter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type ParIter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// The rayon prelude: import to get `par_iter` & friends in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut m = vec![1, 2];
        m.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(m, vec![2, 3]);
        let s: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
        assert_eq!((0..3usize).into_par_iter().count(), 3);
    }

    #[test]
    fn par_map_preserves_order_at_scale() {
        let items: Vec<usize> = (0..10_000).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x).collect();
        let par: Vec<usize> = items.par_iter().map(|&x| x * x).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_executes_jobs_concurrently() {
        // Two jobs that can only complete if they run at the same time.
        let pool = ThreadPool::new(2);
        let barrier = Arc::new(Barrier::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            pool.execute(move || {
                barrier.wait();
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn execute_then_delivers_results_without_blocking_the_submitter() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel::<usize>();
        for i in 0..8 {
            let tx = tx.clone();
            pool.execute_then(
                move || i * i,
                move |square| {
                    let _ = tx.send(square);
                },
            );
        }
        drop(tx);
        let mut squares: Vec<usize> = rx.iter().collect();
        squares.sort_unstable();
        assert_eq!(squares, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_scoped_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits = Mutex::new(vec![0usize; 1000]);
        pool.run_scoped(1000, |i| {
            hits.lock().unwrap()[i] += 1;
        });
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn run_scoped_borrows_local_data() {
        let data: Vec<usize> = (0..64).collect();
        let total = AtomicUsize::new(0);
        global_pool().run_scoped(data.len(), |i| {
            total.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), (0..64).sum::<usize>());
    }
}
