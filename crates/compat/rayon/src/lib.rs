//! Offline stand-in for `rayon`: exposes the `par_iter` entry points this
//! workspace uses, executed sequentially. The pipeline's parallel mode thus
//! degrades to sequential execution with identical results, which is exactly
//! the equivalence the test-suite asserts; a real rayon can be swapped back
//! in by restoring the crates.io dependency.

/// Sequential `par_iter` over slices (and anything that derefs to a slice).
pub trait IntoParallelRefIterator<T> {
    /// "Parallel" iterator over shared references — a plain slice iterator.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Sequential `par_iter_mut` over slices.
pub trait IntoParallelRefMutIterator<T> {
    /// "Parallel" iterator over mutable references.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Sequential `into_par_iter`.
pub trait IntoParallelIterator {
    /// The underlying iterator type.
    type Iter: Iterator;

    /// Convert into a "parallel" (sequential) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = std::ops::Range<usize>;

    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

/// The rayon prelude: import to get `par_iter` & friends in scope.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut m = vec![1, 2];
        m.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(m, vec![2, 3]);
        let s: i32 = vec![1, 2, 3].into_par_iter().sum();
        assert_eq!(s, 6);
        assert_eq!((0..3usize).into_par_iter().count(), 3);
    }
}
