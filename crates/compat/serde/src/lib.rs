//! Offline stand-in for `serde` (the crates.io registry is unavailable in
//! this environment, so the workspace vendors a minimal value-model based
//! replacement).
//!
//! The design is intentionally simpler than real serde: serialization goes
//! through one self-describing [`Value`] tree, and the `serde_json` stand-in
//! renders/parses that tree. The derive macros (re-exported from
//! `serde_derive`) generate `to_value` / `from_value` implementations.
//!
//! Collections with non-string keys are serialized as sequences of
//! `[key, value]` pairs, which keeps a single generic map impl and still
//! round-trips through the JSON stand-in.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating point (non-finite values serialize as null).
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// String-keyed map (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// If this is a single-entry map (the encoding of a data-carrying enum
    /// variant), return the entry.
    pub fn as_single_entry_map(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(m) if m.len() == 1 => Some((m[0].0.as_str(), &m[0].1)),
            _ => None,
        }
    }

    /// Numeric view as i64 (accepts Int/UInt/Float with integral value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric view as u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// Numeric view as f64 (null reads as NaN, matching the writer which
    /// renders non-finite floats as null).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Field lookup helper used by the derive-generated code.
pub fn __get_field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A required field was absent.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error(format!(
            "missing field `{field}` while deserializing `{type_name}`"
        ))
    }

    /// The value tree did not have the expected shape.
    pub fn type_mismatch(type_name: &str, expected: &str) -> Self {
        Error(format!(
            "expected {expected} while deserializing `{type_name}`"
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls --------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::type_mismatch(stringify!($t), "integer"))?;
                <$t>::try_from(i).map_err(|_| Error::type_mismatch(stringify!($t), "in-range integer"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(u),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::type_mismatch(stringify!($t), "unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::type_mismatch(stringify!($t), "in-range integer"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::type_mismatch("f64", "number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()
            .ok_or_else(|| Error::type_mismatch("f32", "number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::type_mismatch("bool", "boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::type_mismatch("char", "string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::type_mismatch("char", "single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("String", "string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers -------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::type_mismatch("Vec", "sequence"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Arc::new(T::from_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::type_mismatch("tuple", "sequence"))?;
        if s.len() != 2 {
            return Err(Error::type_mismatch("tuple", "2-element sequence"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_seq()
            .ok_or_else(|| Error::type_mismatch("tuple", "sequence"))?;
        if s.len() != 3 {
            return Err(Error::type_mismatch("tuple", "3-element sequence"));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

macro_rules! impl_map {
    ($name:ident, $($bound:tt)*) => {
        impl<K: Serialize, V: Serialize> Serialize for $name<K, V> {
            fn to_value(&self) -> Value {
                Value::Seq(
                    self.iter()
                        .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)*, V: Deserialize> Deserialize for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::type_mismatch(stringify!($name), "sequence of pairs"))?;
                let mut out = Self::new();
                for entry in seq {
                    let pair = entry
                        .as_seq()
                        .ok_or_else(|| Error::type_mismatch(stringify!($name), "pair"))?;
                    if pair.len() != 2 {
                        return Err(Error::type_mismatch(stringify!($name), "pair"));
                    }
                    out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
                }
                Ok(out)
            }
        }
    };
}
impl_map!(HashMap, std::hash::Hash + Eq);
impl_map!(BTreeMap, Ord);

macro_rules! impl_set {
    ($name:ident, $($bound:tt)*) => {
        impl<T: Serialize> Serialize for $name<T> {
            fn to_value(&self) -> Value {
                Value::Seq(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)*> Deserialize for $name<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::type_mismatch(stringify!($name), "sequence"))?;
                seq.iter().map(Deserialize::from_value).collect()
            }
        }
    };
}
impl_set!(HashSet, std::hash::Hash + Eq);
impl_set!(BTreeSet, Ord);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
