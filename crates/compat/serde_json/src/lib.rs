//! Offline stand-in for `serde_json`: renders and parses the [`serde::Value`]
//! tree of the vendored serde replacement as JSON text.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Crate result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` guarantees round-trip precision for floats.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let f = vec![0.25f32, -1.5, 3.3333333];
        let back: Vec<f32> = from_str(&to_string(&f).unwrap()).unwrap();
        assert_eq!(back, f);

        let s = to_string("he\"llo\n").unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "he\"llo\n");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Int(1)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
