//! Offline stand-in for `criterion`: a tiny wall-clock benchmark harness with
//! the same surface the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, throughput annotations). It runs each
//! benchmark for a fixed short measurement window and prints mean iteration
//! time (plus throughput when declared), so `cargo bench` produces comparable
//! relative numbers without the real statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean: Option<Duration>,
    measurement_window: Duration,
}

impl Bencher {
    /// Measure `f`, storing the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then run until the measurement window closes.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement_window {
            black_box(f());
            iters += 1;
        }
        self.mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let millis = std::env::var("CRITERION_STUB_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            measurement_window: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub's sampling is time-based.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        run_one(name.to_string(), self.measurement_window, None, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's sampling is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(
            format!("{}/{}", self.name, id),
            self.criterion.measurement_window,
            self.throughput,
            f,
        );
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            format!("{}/{}", self.name, id),
            self.criterion.measurement_window,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: String,
    window: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        mean: None,
        measurement_window: window,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
                }
            });
            println!(
                "bench: {label:<50} {mean:>12.2?}/iter{}",
                rate.unwrap_or_default()
            );
        }
        None => println!("bench: {label:<50} (no measurement)"),
    }
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
