//! Offline stand-in for `rand`: the small slice of the rand API this
//! workspace uses (`Rng::gen_range` / `gen_bool`, `SeedableRng::seed_from_u64`
//! and `seq::SliceRandom`), backed by any [`RngCore`] implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(5i32..=7);
            assert!((5..=7).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
