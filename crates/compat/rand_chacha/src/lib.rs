//! Offline stand-in for `rand_chacha`: a deterministic ChaCha8-based RNG
//! implementing the vendored `rand` traits.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill needed".
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // Two rounds per loop iteration (column + diagonal), 8 total.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (b, (o, s)) in self.buffer.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *b = o.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64 (matching
        // the approach rand uses for seed_from_u64).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12..14) and nonce (14..16) start at zero.
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor >= 15 {
            // Not enough words left for a full u64; refill keeps word pairs
            // aligned so the stream is a pure function of the draw count.
            self.refill();
        }
        let lo = self.buffer[self.cursor];
        let hi = self.buffer[self.cursor + 1];
        self.cursor += 2;
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn roughly_uniform_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
