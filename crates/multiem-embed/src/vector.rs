//! Dense vector and matrix helpers shared by the encoder and the pipeline.

use serde::{Deserialize, Serialize};

/// L2 norm of a vector.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalise a vector to unit L2 norm in place. Zero vectors are left as-is.
pub fn l2_normalize(v: &mut [f32]) {
    let norm = l2_norm(v);
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine similarity in `[-1, 1]`. Returns 0 when either vector is zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 - cosine_similarity`, in `[0, 2]`.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Euclidean (L2) distance.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Mean of a set of vectors; returns a zero vector of `dim` when `rows` is empty.
pub fn mean_vector<'a, I>(rows: I, dim: usize) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for r in rows {
        debug_assert_eq!(r.len(), dim);
        for (a, x) in acc.iter_mut().zip(r) {
            *a += *x;
        }
        count += 1;
    }
    if count > 0 {
        let inv = 1.0 / count as f32;
        for a in acc.iter_mut() {
            *a *= inv;
        }
    }
    acc
}

/// A dense row-major matrix of embeddings.
///
/// Rows are stored contiguously, which keeps the mutual-top-K joins and the
/// HNSW index cache-friendly and makes the memory accounting exact.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Matrix {
    dim: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create an empty matrix whose rows will have `dim` columns.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Create a matrix with pre-allocated capacity for `rows` rows.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        Self {
            dim,
            data: Vec::with_capacity(dim * rows),
        }
    }

    /// Build from a list of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = Self::with_capacity(dim, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Number of columns per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row length must equal matrix dim");
        self.data.extend_from_slice(row);
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Heap bytes used by the matrix data.
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_normalize() {
        let mut v = vec![3.0, 4.0];
        assert!((l2_norm(&v) - 5.0).abs() < 1e-6);
        l2_normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut zero = vec![0.0, 0.0];
        l2_normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_bounds_and_degenerate_cases() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &[0.0, 0.0]), 0.0);
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn euclidean_matches_hand_computed() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn mean_vector_basic_and_empty() {
        let rows: Vec<Vec<f32>> = vec![vec![1.0, 3.0], vec![3.0, 5.0]];
        let m = mean_vector(rows.iter().map(|r| r.as_slice()), 2);
        assert_eq!(m, vec![2.0, 4.0]);
        let empty = mean_vector(std::iter::empty(), 3);
        assert_eq!(empty, vec![0.0; 3]);
    }

    #[test]
    fn matrix_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = Matrix::from_rows(&rows);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let collected: Vec<&[f32]> = m.rows().collect();
        assert_eq!(collected.len(), 3);
        assert!(!m.is_empty());
        assert!(m.approx_bytes() >= 6 * 4);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn matrix_rejects_wrong_arity() {
        let mut m = Matrix::new(3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::new(4);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let zero_dim = Matrix::new(0);
        assert_eq!(zero_dim.len(), 0);
    }
}
