//! The embedding model trait and the hashed lexical encoder.

use crate::hashing::{accumulate_token, fnv1a64};
use crate::idf::IdfStatistics;
use crate::tokenizer::{TokenKind, Tokenizer, TokenizerConfig};
use crate::vector::{l2_normalize, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A sentence/entity embedding model.
///
/// The MultiEM pipeline is generic over this trait: the paper plugs in
/// Sentence-BERT, this reproduction plugs in [`HashedLexicalEncoder`], and a
/// candle/ort transformer backend could implement it as well.
pub trait EmbeddingModel: Send + Sync {
    /// Dimensionality of produced embeddings.
    fn dim(&self) -> usize;

    /// Encode one serialized entity into a (unit-norm) embedding.
    fn encode(&self, text: &str) -> Vec<f32>;

    /// Encode a batch of serialized entities. The default implementation
    /// parallelises over rayon; backends with real batching can override it.
    fn encode_batch(&self, texts: &[String]) -> Matrix {
        let rows: Vec<Vec<f32>> = texts.par_iter().map(|t| self.encode(t)).collect();
        let mut m = Matrix::with_capacity(self.dim(), rows.len());
        for r in &rows {
            m.push_row(r);
        }
        m
    }

    /// Human-readable backend name (for logs and experiment records).
    fn name(&self) -> &str {
        "embedding-model"
    }
}

/// Configuration of the [`HashedLexicalEncoder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Output dimensionality (the paper's SBERT uses 384).
    pub dim: usize,
    /// Tokenizer configuration.
    pub tokenizer: TokenizerConfig,
    /// Relative weight of whole-word vectors.
    pub word_weight: f32,
    /// Relative weight of character-n-gram vectors (gives typo robustness).
    pub ngram_weight: f32,
    /// Pooling weight of alphabetic word tokens.
    pub kind_weight_word: f32,
    /// Pooling weight of short (< 3 chars) alphabetic tokens.
    pub kind_weight_short: f32,
    /// Pooling weight of compact numeric tokens (at most
    /// [`EncoderConfig::long_token_len`] characters), e.g. years, postcodes,
    /// model numbers. These are single meaningful tokens for a transformer.
    pub kind_weight_number: f32,
    /// Pooling weight of long numeric tokens (e.g. raw coordinates,
    /// timestamps), which a transformer fragments into many low-salience
    /// sub-word pieces.
    pub kind_weight_long_number: f32,
    /// Pooling weight of compact identifier-like mixed tokens ("64gb", "s21").
    pub kind_weight_mixed: f32,
    /// Pooling weight of long identifier-like mixed tokens (opaque record ids
    /// such as "wom14513028").
    pub kind_weight_long_mixed: f32,
    /// Character-count boundary between "compact" and "long" numeric / mixed
    /// tokens.
    pub long_token_len: usize,
    /// Whether to multiply token weights by normalised corpus IDF (requires
    /// [`HashedLexicalEncoder::fit_idf`] to have been called to take effect).
    pub use_idf: bool,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            dim: crate::DEFAULT_DIM,
            tokenizer: TokenizerConfig::default(),
            word_weight: 1.0,
            ngram_weight: 0.35,
            kind_weight_word: 1.0,
            kind_weight_short: 0.55,
            kind_weight_number: 0.7,
            kind_weight_long_number: 0.3,
            kind_weight_mixed: 0.7,
            kind_weight_long_mixed: 0.35,
            long_token_len: 4,
            use_idf: false,
        }
    }
}

impl EncoderConfig {
    /// Pooling weight for a token of the given kind and character length.
    ///
    /// Numeric and identifier-like tokens longer than
    /// [`EncoderConfig::long_token_len`] characters are treated as opaque and
    /// receive the corresponding "long" weight, mirroring how a transformer
    /// fragments them into many low-salience sub-word pieces.
    pub fn kind_weight(&self, kind: TokenKind, token_len: usize) -> f32 {
        let long = token_len > self.long_token_len;
        match kind {
            TokenKind::Word => self.kind_weight_word,
            TokenKind::ShortWord => self.kind_weight_short,
            TokenKind::Number => {
                if long {
                    self.kind_weight_long_number
                } else {
                    self.kind_weight_number
                }
            }
            TokenKind::Mixed => {
                if long {
                    self.kind_weight_long_mixed
                } else {
                    self.kind_weight_mixed
                }
            }
        }
    }
}

/// Deterministic hashed lexical encoder — the Sentence-BERT stand-in.
///
/// See the crate-level documentation for the design rationale. The encoder is
/// completely deterministic (no RNG state), cheap (no embedding table), and
/// thread-safe, which is what allows the representation phase of MultiEM to be
/// embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct HashedLexicalEncoder {
    config: EncoderConfig,
    tokenizer: Tokenizer,
    idf: Option<IdfStatistics>,
}

impl Default for HashedLexicalEncoder {
    fn default() -> Self {
        Self::new(EncoderConfig::default())
    }
}

impl HashedLexicalEncoder {
    /// Create an encoder with the given configuration.
    pub fn new(config: EncoderConfig) -> Self {
        let tokenizer = Tokenizer::new(config.tokenizer.clone());
        Self {
            config,
            tokenizer,
            idf: None,
        }
    }

    /// Create an encoder with the default configuration but a custom dimension.
    pub fn with_dim(dim: usize) -> Self {
        Self::new(EncoderConfig {
            dim,
            ..EncoderConfig::default()
        })
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Fit corpus IDF statistics and enable IDF weighting.
    pub fn fit_idf<'a, I>(&mut self, docs: I)
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.idf = Some(IdfStatistics::fit(&self.tokenizer, docs));
        self.config.use_idf = true;
    }

    /// The fitted IDF statistics, if any.
    pub fn idf(&self) -> Option<&IdfStatistics> {
        self.idf.as_ref()
    }

    /// Fold one document into the IDF statistics (creating them when absent)
    /// and enable IDF weighting. The streaming counterpart of
    /// [`HashedLexicalEncoder::fit_idf`]: single records can be observed as
    /// they arrive instead of refitting over the whole corpus.
    pub fn observe_document(&mut self, doc: &str) {
        self.idf
            .get_or_insert_with(IdfStatistics::default)
            .observe(&self.tokenizer, doc);
        self.config.use_idf = true;
    }

    fn token_weight(&self, text: &str, kind: TokenKind) -> f32 {
        let mut w = self.config.kind_weight(kind, text.chars().count());
        if self.config.use_idf {
            if let Some(idf) = &self.idf {
                w *= idf.normalized_idf(text);
            }
        }
        w
    }
}

impl EmbeddingModel for HashedLexicalEncoder {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn encode(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.config.dim];
        let tokens = self.tokenizer.tokenize(text);
        if tokens.is_empty() {
            return acc;
        }
        for tok in &tokens {
            let base = self.token_weight(&tok.text, tok.kind);
            if base <= 0.0 {
                continue;
            }
            // Whole-word vector.
            accumulate_token(
                &mut acc,
                fnv1a64(tok.text.as_bytes()),
                base * self.config.word_weight,
            );
            // Character n-gram vectors (split the n-gram budget evenly so long
            // tokens do not dominate).
            if self.config.ngram_weight > 0.0 {
                let grams = self.tokenizer.char_ngrams(&tok.text);
                if !grams.is_empty() {
                    let per = base * self.config.ngram_weight / grams.len() as f32;
                    for g in &grams {
                        // Prefix to keep n-gram and word hash spaces separate.
                        let mut key = Vec::with_capacity(g.len() + 1);
                        key.push(b'#');
                        key.extend_from_slice(g.as_bytes());
                        accumulate_token(&mut acc, fnv1a64(&key), per);
                    }
                }
            }
        }
        l2_normalize(&mut acc);
        acc
    }

    fn name(&self) -> &str {
        "hashed-lexical-encoder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine_similarity;

    fn enc() -> HashedLexicalEncoder {
        HashedLexicalEncoder::default()
    }

    #[test]
    fn deterministic_and_unit_norm() {
        let e = enc();
        let a = e.encode("apple iphone 8 plus 64gb silver");
        let b = e.encode("apple iphone 8 plus 64gb silver");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        assert_eq!(a.len(), crate::DEFAULT_DIM);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = enc();
        let v = e.encode("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn similar_titles_are_closer_than_different_products() {
        let e = enc();
        // Figure 1: the same iPhone listed by different sources.
        let a = e.encode("apple iphone 8 plus 64gb silver");
        let b = e.encode("apple iphone 8 plus 5.5 64gb 4g unlocked sim free silver");
        // A different product entirely.
        let c = e.encode("sony bravia 55 inch oled television stand");
        let sim_ab = cosine_similarity(&a, &b);
        let sim_ac = cosine_similarity(&a, &c);
        assert!(sim_ab > 0.55, "same-product similarity too low: {sim_ab}");
        assert!(
            sim_ac < 0.25,
            "different-product similarity too high: {sim_ac}"
        );
        assert!(sim_ab > sim_ac + 0.3);
    }

    #[test]
    fn typo_robustness_via_char_ngrams() {
        let e = enc();
        let clean = e.encode("chameleon tim obrien");
        let typo = e.encode("chameleon tim obrein");
        let unrelated = e.encode("completely different words here");
        assert!(
            cosine_similarity(&clean, &typo) > cosine_similarity(&clean, &unrelated) + 0.2,
            "typo variant should stay closer than unrelated text"
        );
    }

    #[test]
    fn id_attribute_matters_less_than_album_attribute() {
        // Reproduces Example 1 of the paper: replacing the opaque `id` value
        // should move the embedding much less than replacing the `album` value.
        let e = enc();
        let ea = e.encode("wom14513028 megna's tim o'brien chameleon");
        let eb = e.encode("wom94369364 megna's tim o'brien chameleon");
        let ec = e.encode("wom14513028 megna's tim o'brien the hitmen");
        let sim_id_change = cosine_similarity(&ea, &eb);
        let sim_album_change = cosine_similarity(&ea, &ec);
        assert!(
            sim_id_change > sim_album_change,
            "id change ({sim_id_change}) should perturb less than album change ({sim_album_change})"
        );
        assert!(sim_id_change > 0.8);
    }

    #[test]
    fn batch_matches_single_encoding() {
        let e = enc();
        let texts = vec![
            "apple iphone".to_string(),
            "samsung galaxy".to_string(),
            String::new(),
        ];
        let m = e.encode_batch(&texts);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(0), e.encode("apple iphone").as_slice());
        assert_eq!(m.row(2), vec![0.0f32; e.dim()].as_slice());
    }

    #[test]
    fn idf_weighting_downweights_ubiquitous_tokens() {
        let corpus: Vec<String> = (0..50)
            .map(|i| format!("acme widget model {i}"))
            .chain(std::iter::once("acme sprocket deluxe".to_string()))
            .collect();
        let mut with_idf = enc();
        with_idf.fit_idf(corpus.iter().map(|s| s.as_str()));
        let without_idf = enc();

        // "acme" appears everywhere; two entities sharing only "acme" should be
        // less similar under IDF weighting than without it.
        let a = "acme widget model 3";
        let b = "acme sprocket deluxe";
        let sim_with = cosine_similarity(&with_idf.encode(a), &with_idf.encode(b));
        let sim_without = cosine_similarity(&without_idf.encode(a), &without_idf.encode(b));
        assert!(sim_with < sim_without);
        assert!(with_idf.idf().is_some());
    }

    #[test]
    fn custom_dimension() {
        let e = HashedLexicalEncoder::with_dim(64);
        assert_eq!(e.dim(), 64);
        assert_eq!(e.encode("hello world").len(), 64);
        assert_eq!(e.name(), "hashed-lexical-encoder");
    }

    #[test]
    fn disabling_ngrams_still_works() {
        let cfg = EncoderConfig {
            ngram_weight: 0.0,
            tokenizer: TokenizerConfig {
                ngram_max: 0,
                ..TokenizerConfig::default()
            },
            ..EncoderConfig::default()
        };
        let e = HashedLexicalEncoder::new(cfg);
        let v = e.encode("apple iphone");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }
}
