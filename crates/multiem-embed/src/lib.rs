//! Embedding substrate for the MultiEM reproduction.
//!
//! The paper represents every serialized entity with a pre-trained
//! Sentence-BERT model (`all-MiniLM-L12-v2`, 384-dimensional mean-pooled
//! output). Shipping and running a transformer is out of scope for this
//! offline reproduction, so this crate provides a **deterministic hashed
//! lexical encoder** that preserves the property MultiEM actually relies on:
//! *textually similar serialized entities receive high-cosine-similarity
//! embeddings, and perturbing an attribute value moves the embedding
//! proportionally to the semantic weight of that attribute*.
//!
//! The encoder works as follows:
//!
//! 1. [`tokenizer`] splits the serialized entity into lowercase word tokens and
//!    character n-grams (the n-grams give robustness to typos, mirroring the
//!    sub-word tokenization of BERT).
//! 2. Every token is mapped to a pseudo-random unit vector seeded by a stable
//!    64-bit hash of the token ([`hashing`]), i.e. a fixed random embedding
//!    table that never has to be stored.
//! 3. Token vectors are combined by weighted mean pooling. Token weights model
//!    semantic salience: alphabetic words count fully, numeric and
//!    identifier-like tokens are down-weighted (this is what makes opaque `id`
//!    columns contribute little to the embedding, reproducing Example 1 of the
//!    paper), and an optional corpus IDF re-weights common tokens.
//! 4. The pooled vector is L2-normalised.
//!
//! Any real transformer backend can be plugged in by implementing
//! [`EmbeddingModel`]; the rest of the pipeline is agnostic to the encoder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod hashing;
pub mod idf;
pub mod tokenizer;
pub mod vector;

pub use encoder::{EmbeddingModel, EncoderConfig, HashedLexicalEncoder};
pub use idf::IdfStatistics;
pub use tokenizer::{Token, TokenKind, Tokenizer, TokenizerConfig};
pub use vector::{cosine_distance, cosine_similarity, euclidean_distance, l2_normalize, Matrix};

/// Default embedding dimensionality, matching `all-MiniLM-L12-v2` used in the
/// paper (384 dimensions).
pub const DEFAULT_DIM: usize = 384;
