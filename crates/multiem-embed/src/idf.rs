//! Inverse document frequency statistics.
//!
//! The encoder can optionally re-weight tokens by corpus IDF, so that tokens
//! occurring in almost every entity of a dataset (e.g. a brand name shared by
//! all products of a source) contribute less to the representation than
//! discriminative tokens. The statistics are fitted once per dataset over the
//! serialized entities.

use crate::tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Smoothed IDF statistics over a corpus of serialized entities.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdfStatistics {
    num_docs: usize,
    doc_freq: HashMap<String, u32>,
}

impl IdfStatistics {
    /// Fit IDF statistics from an iterator of documents using `tokenizer`.
    pub fn fit<'a, I>(tokenizer: &Tokenizer, docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut doc_freq: HashMap<String, u32> = HashMap::new();
        let mut num_docs = 0usize;
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for doc in docs {
            num_docs += 1;
            seen.clear();
            for tok in tokenizer.tokenize(doc) {
                if seen.insert(tok.text.clone()) {
                    *doc_freq.entry(tok.text).or_insert(0) += 1;
                }
            }
        }
        Self { num_docs, doc_freq }
    }

    /// Fold one additional document into the statistics.
    ///
    /// This is the streaming counterpart of [`IdfStatistics::fit`]: the online
    /// entity store observes every serialized record it ingests, so IDF
    /// weights stay current without refitting over the whole corpus.
    pub fn observe(&mut self, tokenizer: &Tokenizer, doc: &str) {
        self.num_docs += 1;
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for tok in tokenizer.tokenize(doc) {
            if seen.insert(tok.text.clone()) {
                *self.doc_freq.entry(tok.text).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents the statistics were fitted on.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Number of distinct tokens observed.
    pub fn vocabulary_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Smoothed IDF of a token: `ln((1 + N) / (1 + df)) + 1`.
    ///
    /// Unknown tokens receive the maximum IDF (df = 0). When no documents were
    /// fitted, every token gets weight 1 so the encoder degrades gracefully.
    pub fn idf(&self, token: &str) -> f32 {
        if self.num_docs == 0 {
            return 1.0;
        }
        let df = self.doc_freq.get(token).copied().unwrap_or(0) as f32;
        ((1.0 + self.num_docs as f32) / (1.0 + df)).ln() + 1.0
    }

    /// Normalised IDF in `(0, 1]`: the raw IDF divided by the maximum possible
    /// IDF for this corpus. Useful as a multiplicative weight that never
    /// amplifies a token.
    pub fn normalized_idf(&self, token: &str) -> f32 {
        if self.num_docs == 0 {
            return 1.0;
        }
        let max = ((1.0 + self.num_docs as f32) / 1.0).ln() + 1.0;
        (self.idf(token) / max).clamp(0.0, 1.0)
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.doc_freq
            .keys()
            .map(|k| k.len() + std::mem::size_of::<u32>() + std::mem::size_of::<usize>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(docs: &[&str]) -> IdfStatistics {
        IdfStatistics::fit(&Tokenizer::default(), docs.iter().copied())
    }

    #[test]
    fn frequent_tokens_get_lower_idf() {
        let stats = fit(&[
            "apple iphone",
            "apple ipad",
            "apple watch",
            "samsung galaxy",
        ]);
        assert!(stats.idf("apple") < stats.idf("galaxy"));
        assert!(stats.idf("unseen-token") >= stats.idf("galaxy"));
    }

    #[test]
    fn empty_corpus_degrades_to_unit_weight() {
        let stats = fit(&[]);
        assert_eq!(stats.idf("anything"), 1.0);
        assert_eq!(stats.normalized_idf("anything"), 1.0);
        assert_eq!(stats.num_docs(), 0);
    }

    #[test]
    fn duplicate_tokens_in_one_doc_count_once() {
        let stats = fit(&["apple apple apple", "pear"]);
        // df(apple) == 1 == df(pear), so their IDFs match.
        assert!((stats.idf("apple") - stats.idf("pear")).abs() < 1e-6);
    }

    #[test]
    fn normalized_idf_bounded() {
        let stats = fit(&["a b c", "a b", "a"]);
        for tok in ["a", "b", "c", "zzz"] {
            let w = stats.normalized_idf(tok);
            assert!(w > 0.0 && w <= 1.0, "weight {w} out of range for {tok}");
        }
        assert!(stats.normalized_idf("a") < stats.normalized_idf("c"));
    }

    #[test]
    fn observe_matches_batch_fit() {
        let tokenizer = Tokenizer::default();
        let docs = ["apple iphone", "apple ipad", "samsung galaxy"];
        let batch = fit(&docs);
        let mut streaming = IdfStatistics::default();
        for d in docs {
            streaming.observe(&tokenizer, d);
        }
        assert_eq!(streaming.num_docs(), batch.num_docs());
        assert_eq!(streaming.vocabulary_size(), batch.vocabulary_size());
        for tok in ["apple", "iphone", "galaxy", "unseen"] {
            assert!((streaming.idf(tok) - batch.idf(tok)).abs() < 1e-6);
        }
    }

    #[test]
    fn vocabulary_and_bytes() {
        let stats = fit(&["apple iphone 8", "apple ipad"]);
        assert_eq!(stats.vocabulary_size(), 4);
        assert!(stats.approx_bytes() > 0);
    }
}
