//! Tokenization of serialized entities.
//!
//! The tokenizer lowercases, splits on any non-alphanumeric character, and
//! classifies every token (alphabetic word / number / identifier-like mix).
//! Character n-grams of word tokens are produced separately so the encoder can
//! give partial credit to near-matching tokens ("iphone" vs "iphon8e"), which
//! plays the role of BERT's sub-word pieces.

use serde::{Deserialize, Serialize};

/// The lexical class of a token, used to modulate its pooling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Purely alphabetic, length ≥ 3 (e.g. "apple", "chameleon").
    Word,
    /// Purely alphabetic, length < 3 (e.g. "of", "u3").
    ShortWord,
    /// Purely numeric (e.g. "64", "1998").
    Number,
    /// Mixed alphanumeric, identifier-like (e.g. "64gb", "wom14513028").
    Mixed,
}

/// A token together with its kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Normalised (lowercased) token text.
    pub text: String,
    /// Lexical class.
    pub kind: TokenKind,
}

/// Configuration of the tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenizerConfig {
    /// Lowercase input before splitting.
    pub lowercase: bool,
    /// Minimum character n-gram length (inclusive). Set `ngram_max` to 0 to
    /// disable n-grams entirely.
    pub ngram_min: usize,
    /// Maximum character n-gram length (inclusive).
    pub ngram_max: usize,
    /// Only emit n-grams for tokens at least this long (shorter tokens are
    /// already fully captured by their word vector).
    pub ngram_token_min_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            lowercase: true,
            ngram_min: 3,
            ngram_max: 3,
            ngram_token_min_len: 4,
        }
    }
}

/// Splits serialized entities into classified tokens and character n-grams.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Create a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Self { config }
    }

    /// The tokenizer configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Classify a normalised token.
    pub fn classify(token: &str) -> TokenKind {
        let has_alpha = token.chars().any(|c| c.is_alphabetic());
        let has_digit = token.chars().any(|c| c.is_ascii_digit());
        match (has_alpha, has_digit) {
            (true, true) => TokenKind::Mixed,
            (false, true) => TokenKind::Number,
            (true, false) => {
                if token.chars().count() >= 3 {
                    TokenKind::Word
                } else {
                    TokenKind::ShortWord
                }
            }
            // Pure punctuation never reaches here because splitting removes it,
            // but classify defensively.
            (false, false) => TokenKind::ShortWord,
        }
    }

    /// Split `text` into classified tokens.
    pub fn tokenize(&self, text: &str) -> Vec<Token> {
        let lowered;
        let source: &str = if self.config.lowercase {
            lowered = text.to_lowercase();
            &lowered
        } else {
            text
        };
        source
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| Token {
                text: t.to_string(),
                kind: Self::classify(t),
            })
            .collect()
    }

    /// Character n-grams of a single token according to the configuration.
    pub fn char_ngrams(&self, token: &str) -> Vec<String> {
        let mut out = Vec::new();
        if self.config.ngram_max == 0 || token.chars().count() < self.config.ngram_token_min_len {
            return out;
        }
        let chars: Vec<char> = token.chars().collect();
        for n in self.config.ngram_min..=self.config.ngram_max {
            if n == 0 || chars.len() < n {
                continue;
            }
            for window in chars.windows(n) {
                out.push(window.iter().collect());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let t = Tokenizer::default();
        let toks = t.tokenize("Apple iPhone-8 Plus, 64GB (Silver)");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["apple", "iphone", "8", "plus", "64gb", "silver"]
        );
    }

    #[test]
    fn classification_covers_all_kinds() {
        assert_eq!(Tokenizer::classify("apple"), TokenKind::Word);
        assert_eq!(Tokenizer::classify("of"), TokenKind::ShortWord);
        assert_eq!(Tokenizer::classify("1998"), TokenKind::Number);
        assert_eq!(Tokenizer::classify("64gb"), TokenKind::Mixed);
        assert_eq!(Tokenizer::classify("wom14513028"), TokenKind::Mixed);
    }

    #[test]
    fn empty_and_punctuation_only_input() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("--- ,,, !!!").is_empty());
    }

    #[test]
    fn char_ngrams_default_config() {
        let t = Tokenizer::default();
        let grams = t.char_ngrams("iphone");
        assert_eq!(grams, vec!["iph", "pho", "hon", "one"]);
        // Token below the minimum length yields no n-grams.
        assert!(t.char_ngrams("ace").is_empty());
    }

    #[test]
    fn char_ngrams_disabled() {
        let cfg = TokenizerConfig {
            ngram_max: 0,
            ..TokenizerConfig::default()
        };
        let t = Tokenizer::new(cfg);
        assert!(t.char_ngrams("iphone").is_empty());
    }

    #[test]
    fn char_ngrams_range() {
        let cfg = TokenizerConfig {
            ngram_min: 2,
            ngram_max: 3,
            ngram_token_min_len: 3,
            ..TokenizerConfig::default()
        };
        let t = Tokenizer::new(cfg);
        let grams = t.char_ngrams("abcd");
        assert!(grams.contains(&"ab".to_string()));
        assert!(grams.contains(&"bcd".to_string()));
        assert_eq!(grams.len(), 3 + 2);
    }

    #[test]
    fn unicode_tokens_survive() {
        let t = Tokenizer::default();
        let toks = t.tokenize("café naïve 東京");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text, "café");
    }

    #[test]
    fn case_preserving_mode() {
        let cfg = TokenizerConfig {
            lowercase: false,
            ..TokenizerConfig::default()
        };
        let t = Tokenizer::new(cfg);
        let toks = t.tokenize("Apple iPhone");
        assert_eq!(toks[0].text, "Apple");
    }
}
