//! Stable hashing and pseudo-random token vectors.
//!
//! Tokens are mapped to fixed pseudo-random unit vectors without storing an
//! embedding table: the token's FNV-1a hash seeds a SplitMix64 stream whose
//! outputs are turned into a deterministic sign pattern over the embedding
//! dimensions. Two different tokens therefore receive (nearly) orthogonal
//! vectors in expectation, while the same token always receives the same
//! vector — exactly the property needed for overlap-based similarity.

/// FNV-1a 64-bit hash of a byte string. Stable across platforms and runs.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// SplitMix64: a tiny, high-quality 64-bit mixing PRNG used to expand a token
/// hash into a stream of pseudo-random values.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Add `weight * v_token` to `acc`, where `v_token` is the pseudo-random
/// ±1/√dim unit vector derived from `token_hash`.
///
/// The vector is generated on the fly 64 signs at a time, so no per-token
/// allocation happens.
pub fn accumulate_token(acc: &mut [f32], token_hash: u64, weight: f32) {
    if weight == 0.0 || acc.is_empty() {
        return;
    }
    let dim = acc.len();
    let scale = weight / (dim as f32).sqrt();
    let mut state = token_hash ^ 0xA076_1D64_78BD_642F;
    let mut filled = 0usize;
    while filled < dim {
        let bits = splitmix64(&mut state);
        let take = (dim - filled).min(64);
        for i in 0..take {
            let sign = if (bits >> i) & 1 == 1 { 1.0 } else { -1.0 };
            acc[filled + i] += sign * scale;
        }
        filled += take;
    }
}

/// Materialise the pseudo-random unit vector of a token (mainly for tests and
/// diagnostics; the hot path uses [`accumulate_token`]).
pub fn token_vector(token_hash: u64, dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    accumulate_token(&mut v, token_hash, 1.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{cosine_similarity, l2_norm};

    #[test]
    fn fnv_is_stable_and_discriminates() {
        assert_eq!(fnv1a64(b"apple"), fnv1a64(b"apple"));
        assert_ne!(fnv1a64(b"apple"), fnv1a64(b"apples"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"a"));
    }

    #[test]
    fn splitmix_produces_distinct_values() {
        let mut s = 42u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
    }

    #[test]
    fn token_vector_is_unit_norm() {
        for token in ["apple", "iphone", "64gb", "x"] {
            let v = token_vector(fnv1a64(token.as_bytes()), 384);
            let norm = l2_norm(&v);
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm} for {token}");
        }
    }

    #[test]
    fn distinct_tokens_are_nearly_orthogonal() {
        let a = token_vector(fnv1a64(b"apple"), 384);
        let b = token_vector(fnv1a64(b"banana"), 384);
        let sim = cosine_similarity(&a, &b);
        assert!(
            sim.abs() < 0.25,
            "similarity {sim} too high for distinct tokens"
        );
    }

    #[test]
    fn same_token_identical_vector() {
        let a = token_vector(fnv1a64(b"silver"), 128);
        let b = token_vector(fnv1a64(b"silver"), 128);
        assert_eq!(a, b);
    }

    #[test]
    fn accumulate_respects_weight_and_zero() {
        let mut acc = vec![0.0f32; 64];
        accumulate_token(&mut acc, fnv1a64(b"tok"), 0.0);
        assert!(acc.iter().all(|&x| x == 0.0));
        accumulate_token(&mut acc, fnv1a64(b"tok"), 2.0);
        let doubled = l2_norm(&acc);
        assert!((doubled - 2.0).abs() < 1e-4);
    }

    #[test]
    fn non_multiple_of_64_dims_fill_completely() {
        let v = token_vector(fnv1a64(b"tok"), 100);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&x| x != 0.0));
    }
}
