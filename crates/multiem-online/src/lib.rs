//! Incremental entity store for streaming multi-table entity matching.
//!
//! The batch pipeline of `multiem-core` answers "given these `S` tables, which
//! rows co-refer?" once. Production traffic does not look like that: records
//! arrive continuously, and every new batch is — in the paper's own
//! hierarchical-merging formulation — just one more table to merge into the
//! current integrated state. This crate turns that observation into a
//! long-lived service component, [`EntityStore`]:
//!
//! * [`EntityStore::bootstrap`] initialises the store from an existing dataset
//!   by running the full batch pipeline (attribute selection → representation
//!   → hierarchical merging → density-based pruning) and adopting its output
//!   as the initial cluster state;
//! * [`EntityStore::ingest_batch`] appends a whole table and
//!   [`EntityStore::insert`] appends one record; both run the paper's
//!   mutual-top-K merging rule (Eq. 1) incrementally, checking the new record
//!   against the current *cluster representatives* through an online ANN
//!   index (`O(log N)` HNSW insertion, [`multiem_ann::DynamicVectorIndex`]);
//! * [`EntityStore::match_record`] answers read-only "which entities does this
//!   record refer to?" queries without mutating the store;
//! * density-based pruning (Algorithm 4) re-runs periodically over *dirty*
//!   clusters only, detaching outliers through
//!   [`multiem_cluster::DynamicUnionFind`];
//! * [`EntityStore::snapshot_bytes`] / [`EntityStore::restore_bytes`] persist
//!   and resurrect the full store state (embeddings, ANN index, cluster
//!   partition) so a service can restart without re-ingesting — either as
//!   JSON or in the compact [`wire`] binary format, which also provides the
//!   framing of `multiem-serve`'s write-ahead log;
//! * record and embedding payloads live behind the pluggable [`storage`]
//!   layer ([`OnlineConfig::storage`]): fully resident by default, or
//!   spilled to append-only CRC-framed segment files with a bounded hot
//!   cache ([`StorageConfig::Disk`]), so resident memory stops growing
//!   linearly with ingest and snapshots of a disk-backed store carry only
//!   the segment index (the delta) instead of every record;
//! * [`EntityStore::delete_record`] erases a record end to end: it is
//!   detached from its cluster (the representative is rebuilt from the
//!   survivors), its payload is tombstoned in storage, and — for the disk
//!   backend — [`EntityStore::compact_storage`] rewrites segment files
//!   whose live fraction fell below
//!   [`DiskStorageConfig::compact_live_ratio`], so deleted records stop
//!   pinning whole files.
//!
//! ```
//! use multiem_core::MultiEmConfig;
//! use multiem_datagen::benchmark_dataset;
//! use multiem_embed::HashedLexicalEncoder;
//! use multiem_online::{EntityStore, OnlineConfig};
//!
//! let data = benchmark_dataset("geo", 0.02).unwrap();
//! let config = OnlineConfig::new(MultiEmConfig { m: 0.35, ..MultiEmConfig::default() });
//! let mut store = EntityStore::new(config, HashedLexicalEncoder::default());
//! for table in data.dataset.tables() {
//!     store.ingest_batch(table).unwrap();
//! }
//! assert!(!store.tuples().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod storage;
pub mod store;
pub mod wire;

pub use config::{DiskStorageConfig, OnlineConfig, SelectionStrategy, StorageConfig};
pub use error::OnlineError;
pub use storage::{CompactionReport, RecordStore, SegmentStats, StorageStats};
pub use store::{EntityStore, IngestReport, StoreStats};
pub use wire::SnapshotFormat;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, OnlineError>;
