//! The incremental entity store.
//!
//! # How the incremental path relates to the paper
//!
//! Batch MultiEM merges tables pairwise: a pair `(x, y)` of items is fused
//! when each is in the other's top-K under distance threshold `m` (Eq. 1).
//! The online store applies the same rule record-at-a-time against the
//! current *cluster representatives* (normalised centroids, exactly the item
//! embeddings the batch merger maintains):
//!
//! 1. the new record's embedding queries the representative index for its
//!    top-K clusters within `m`;
//! 2. a candidate cluster accepts the record only if the record would also be
//!    in the *cluster's* top-K — i.e. fewer than K other live representatives
//!    are closer to the candidate than the new record (the mutual check);
//! 3. accepted matches are fused transitively through
//!    [`DynamicUnionFind`], the merged cluster gets a fresh representative,
//!    and the superseded representatives are tombstoned.
//!
//! Tombstones accumulate as clusters merge; once their fraction exceeds
//! `rebuild_staleness`, the representative index is rebuilt from live
//! clusters (switching between brute force and HNSW around
//! `hnsw_threshold`, like the batch merger does per table).
//!
//! Density-based pruning (Algorithm 4) runs over clusters that changed since
//! the last pass ("dirty" clusters) every `prune_interval` accepted records:
//! outliers are detached back into singleton clusters, mirroring what the
//! batch pipeline does once at the end.
//!
//! Record and embedding payloads are owned by a pluggable
//! [`RecordStore`](crate::storage::RecordStore) ([`OnlineConfig::storage`]):
//! fully resident by default, or spilled to append-only segment files with a
//! bounded hot cache ([`crate::storage::SegmentRecordStore`]) so resident
//! memory stops growing linearly with ingest.

use crate::config::{OnlineConfig, SelectionStrategy};
use crate::error::OnlineError;
use crate::storage::{CompactionReport, RecordStorage, RecordStore, SegmentStats, StorageStats};
use crate::wire::{self, SnapshotFormat};
use crate::Result;
use multiem_ann::{BruteForceIndex, DynamicVectorIndex, HnswIndex, Neighbor, VectorIndex};
use multiem_cluster::DynamicUnionFind;
use multiem_core::config::IndexBackend;
use multiem_core::representation::{select_attributes, AttributeSelection, EmbeddingStore};
use multiem_core::{hierarchical_merge, prune_item, prune_points, MergedTable};
use multiem_embed::{l2_normalize, EmbeddingModel};
use multiem_table::{
    serialize_record_projected, AttrId, Dataset, EntityId, MatchTuple, Record, Schema, Table,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of ingesting one batch (or one record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Source id assigned to the batch.
    pub source: u32,
    /// Number of records ingested.
    pub records: usize,
    /// Records that merged into at least one existing cluster.
    pub merged: usize,
    /// Records that started a new singleton cluster.
    pub singletons: usize,
}

/// A point-in-time summary of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Live records (ingested minus deleted).
    pub records: usize,
    /// Records removed by [`EntityStore::delete_record`] so far.
    pub deleted: usize,
    /// Number of source tables (batches) ingested.
    pub sources: usize,
    /// Current number of clusters (including singletons).
    pub clusters: usize,
    /// Clusters with at least two members (matched tuples).
    pub tuples: usize,
    /// Nodes in the representative index (live + tombstoned).
    pub index_nodes: usize,
    /// Tombstoned representative nodes awaiting a rebuild.
    pub stale_nodes: usize,
    /// Times the representative index has been rebuilt.
    pub rebuilds: usize,
    /// Records removed from clusters by re-pruning so far.
    pub pruned_outliers: usize,
}

/// Metadata of one cluster, keyed by its [`DynamicUnionFind`] root.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterMeta {
    /// Dense record ids of the members.
    members: Vec<usize>,
    /// Running (unnormalised) sum of member embeddings.
    sum: Vec<f32>,
    /// Live node in the representative index, if the cluster is indexed.
    node: Option<usize>,
    /// Whether the cluster changed since the last pruning pass.
    dirty: bool,
}

impl ClusterMeta {
    fn centroid(&self) -> Vec<f32> {
        let mut c = self.sum.clone();
        let inv = 1.0 / self.members.len().max(1) as f32;
        for x in c.iter_mut() {
            *x *= inv;
        }
        l2_normalize(&mut c);
        c
    }

    fn is_embedded(&self) -> bool {
        self.sum.iter().any(|&x| x != 0.0)
    }
}

/// Either representative-index backend; which one is active can change at
/// rebuild time (brute force below `hnsw_threshold` live clusters, HNSW
/// above, mirroring [`IndexBackend::Auto`] in the batch merger).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RepIndex {
    /// Exact index.
    Brute(BruteForceIndex),
    /// HNSW graph index.
    Hnsw(Box<HnswIndex>),
}

impl RepIndex {
    fn insert(&mut self, v: &[f32]) -> usize {
        match self {
            RepIndex::Brute(i) => i.insert(v),
            RepIndex::Hnsw(i) => i.insert(v),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            RepIndex::Brute(i) => i.search(query, k),
            RepIndex::Hnsw(i) => i.search(query, k),
        }
    }

    /// Search several queries at once. The brute-force backend answers all
    /// of them with one candidates-outer pass over its flat vector array;
    /// HNSW has no batched traversal, so it falls back to per-query graph
    /// searches. Per-query results are identical to [`RepIndex::search`].
    fn search_batch(&self, queries: &[&[f32]], k: usize) -> Vec<Vec<Neighbor>> {
        match self {
            RepIndex::Brute(i) => i.search_batch(queries, k),
            RepIndex::Hnsw(i) => queries.iter().map(|q| i.search(q, k)).collect(),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            RepIndex::Brute(i) => i.approx_bytes(),
            RepIndex::Hnsw(i) => i.approx_bytes(),
        }
    }
}

/// The serializable state of an [`EntityStore`] (everything but the encoder).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreState {
    config: OnlineConfig,
    schema: Option<Arc<Schema>>,
    /// Record + embedding payloads (pluggable backend; see
    /// [`crate::storage`]).
    records: RecordStorage,
    /// Source currently accepting single-record inserts, if any.
    stream_source: Option<u32>,
    /// Attribute projection in effect (resolved from the selection strategy).
    selected: Option<Vec<AttrId>>,
    /// Full Algorithm 1 outcome when the strategy ran it.
    selection: Option<AttributeSelection>,
    /// Dense id of the first record of each source.
    dense_base: Vec<usize>,
    /// Dense id -> entity id.
    entity_of_dense: Vec<EntityId>,
    uf: DynamicUnionFind,
    clusters: BTreeMap<usize, ClusterMeta>,
    index: RepIndex,
    /// Index node -> cluster root (`None` = tombstone).
    node_root: Vec<Option<usize>>,
    stale_nodes: usize,
    accepted_since_prune: usize,
    rebuilds: usize,
    pruned_outliers: usize,
    /// Records removed by [`EntityStore::delete_record`] (their dense slots
    /// stay allocated as detached orphans; payloads are freed by storage).
    deleted_records: usize,
}

/// A long-lived, incrementally updatable multi-table matching engine.
///
/// See the [crate-level documentation](crate) for the API tour and the
/// [module documentation](self) for how the incremental path relates to the
/// paper's batch formulation.
#[derive(Debug, Clone)]
pub struct EntityStore<E: EmbeddingModel> {
    encoder: E,
    state: StoreState,
}

impl<E: EmbeddingModel> EntityStore<E> {
    /// Create an empty store.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the storage backend cannot
    /// be set up; use [`EntityStore::try_new`] to handle those as errors.
    pub fn new(config: OnlineConfig, encoder: E) -> Self {
        Self::try_new(config, encoder).unwrap_or_else(|e| panic!("invalid OnlineConfig: {e}"))
    }

    /// Create an empty store, reporting invalid configuration or a failed
    /// storage setup (e.g. an uncreatable segment directory) as errors.
    pub fn try_new(config: OnlineConfig, encoder: E) -> Result<Self> {
        config.validate().map_err(OnlineError::InvalidConfig)?;
        let dim = encoder.dim();
        let records = RecordStorage::new(&config.storage, dim)?;
        let index = new_index(&config, 0, dim);
        Ok(Self {
            encoder,
            state: StoreState {
                config,
                schema: None,
                records,
                stream_source: None,
                selected: None,
                selection: None,
                dense_base: Vec::new(),
                entity_of_dense: Vec::new(),
                uf: DynamicUnionFind::new(),
                clusters: BTreeMap::new(),
                index,
                node_root: Vec::new(),
                stale_nodes: 0,
                accepted_since_prune: 0,
                rebuilds: 0,
                pruned_outliers: 0,
                deleted_records: 0,
            },
        })
    }

    /// The store configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.state.config
    }

    /// The embedding backend.
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// The attribute projection in effect, once resolved from the first data.
    pub fn selected_attributes(&self) -> Option<&[AttrId]> {
        self.state.selected.as_deref()
    }

    /// The Algorithm 1 outcome, when the selection strategy ran it.
    pub fn attribute_selection(&self) -> Option<&AttributeSelection> {
        self.state.selection.as_ref()
    }

    /// Number of *live* records (ingested minus deleted).
    pub fn num_records(&self) -> usize {
        self.state.entity_of_dense.len() - self.state.deleted_records
    }

    /// Records removed by [`EntityStore::delete_record`] so far.
    pub fn num_deleted(&self) -> usize {
        self.state.deleted_records
    }

    /// Number of source tables ingested so far.
    pub fn num_sources(&self) -> usize {
        self.state.records.num_sources()
    }

    /// Whether the store has never ingested a record (a store whose every
    /// record was deleted still counts as populated — its id space is
    /// allocated).
    pub fn is_empty(&self) -> bool {
        self.state.entity_of_dense.is_empty()
    }

    /// Fetch an ingested record from the storage backend (a disk-backed
    /// store may read it back from a segment file, so the record is owned).
    pub fn record(&self, id: EntityId) -> Option<Record> {
        self.state.records.get(id)
    }

    /// Counters of the record-storage backend (where records live, resident
    /// vs spilled bytes, cache behaviour). Cache counters are volatile:
    /// they reset on restore and differ between otherwise identical stores.
    pub fn storage_stats(&self) -> StorageStats {
        self.state.records.stats()
    }

    /// Per-segment health of the record-storage backend, in segment order
    /// (empty for the memory backend).
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        self.state.records.segment_stats()
    }

    /// Persist buffered storage state: a disk-backed store seals its
    /// in-memory tail into a segment file, so a subsequent snapshot carries
    /// only the segment index instead of record payloads. No-op for the
    /// memory backend.
    pub fn flush_storage(&mut self) -> Result<()> {
        self.state.records.flush()
    }

    /// Garbage-collect storage files the backend no longer references (a
    /// disk-backed store deletes segment files absent from its segment
    /// index — orphans from crashes between sealing and checkpoint
    /// commit). Returns the number of files deleted; callers should run
    /// this only after the state referencing the surviving files is
    /// durably committed. No-op for the memory backend.
    pub fn gc_storage(&mut self) -> Result<u64> {
        self.state.records.gc()
    }

    /// Compact the storage backend: sealed segment files whose live
    /// fraction fell to or below the configured
    /// [`compact_live_ratio`](crate::DiskStorageConfig::compact_live_ratio)
    /// are rewritten into fresh files holding only live records (fully-dead
    /// files are dropped outright). Superseded files stay on disk until
    /// [`EntityStore::gc_storage`] sweeps them, so callers persisting
    /// snapshots should commit the post-compaction state before sweeping.
    /// No-op for the memory backend.
    pub fn compact_storage(&mut self) -> Result<CompactionReport> {
        self.state.records.compact()
    }

    /// Delete one record: detach it from its cluster (the survivors keep
    /// matching; the cluster representative is recomputed without the
    /// deleted member), tombstone the stored record and embedding, and
    /// forget the id — [`EntityStore::record`] returns `None` and
    /// [`EntityStore::match_record`] can never surface it again. Returns
    /// whether a live record was deleted (`false` for unknown or
    /// already-deleted ids — deletion is idempotent).
    ///
    /// Deletion does **not** re-match the surviving members of the cluster:
    /// records that only co-referred transitively through the deleted one
    /// stay fused until a pruning pass separates them.
    pub fn delete_record(&mut self, id: EntityId) -> Result<bool> {
        let Some(dense) = self.dense_of(id) else {
            return Ok(false);
        };
        // The stored embedding doubles as the liveness check (deleted rows
        // read back as `None`) and as the amount to subtract from the
        // cluster's running sum.
        let Some(embedding) = self.state.records.embedding(id) else {
            return Ok(false);
        };

        let root = self.state.uf.find(dense);
        let mut meta = self
            .state
            .clusters
            .remove(&root)
            .expect("every live record belongs to a cluster");
        meta.members.retain(|&d| d != dense);
        self.state.uf.detach(dense);
        self.tombstone(meta.node);
        meta.node = None;
        if !meta.members.is_empty() {
            // The cluster survives without the deleted member: rebuild its
            // centroid sum and re-index the representative.
            for (a, x) in meta.sum.iter_mut().zip(&embedding) {
                *a -= *x;
            }
            let surviving_root = self.state.uf.find(meta.members[0]);
            self.register_cluster(surviving_root, meta);
        }

        self.state.records.delete(id)?;
        self.state.deleted_records += 1;
        self.maybe_rebuild();
        Ok(true)
    }

    /// Current summary statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.num_records(),
            deleted: self.state.deleted_records,
            sources: self.num_sources(),
            clusters: self.state.clusters.len(),
            tuples: self
                .state
                .clusters
                .values()
                .filter(|m| m.members.len() >= 2)
                .count(),
            index_nodes: self.state.node_root.len(),
            stale_nodes: self.state.stale_nodes,
            rebuilds: self.state.rebuilds,
            pruned_outliers: self.state.pruned_outliers,
        }
    }

    /// Approximate *resident* heap footprint of the large store components,
    /// in bytes: the representative index plus whatever the storage backend
    /// keeps in memory (everything for the memory backend; tail + hot cache
    /// + per-record index for the disk backend).
    pub fn approx_bytes(&self) -> usize {
        self.state.records.stats().resident_bytes + self.state.index.approx_bytes()
    }

    /// Current matched tuples: every cluster with at least two members.
    pub fn tuples(&self) -> Vec<MatchTuple> {
        self.state
            .clusters
            .values()
            .filter(|m| m.members.len() >= 2)
            .map(|m| MatchTuple::new(m.members.iter().map(|&d| self.state.entity_of_dense[d])))
            .collect()
    }

    /// All members of the cluster containing `id` (including `id` itself), or
    /// `None` for unknown entities.
    pub fn cluster_members(&self, id: EntityId) -> Option<Vec<EntityId>> {
        let dense = self.dense_of(id)?;
        let root = self.state.uf.find_immutable(dense);
        let meta = self.state.clusters.get(&root)?;
        let mut members: Vec<EntityId> = meta
            .members
            .iter()
            .map(|&d| self.state.entity_of_dense[d])
            .collect();
        members.sort_unstable();
        Some(members)
    }

    // --- ingestion ----------------------------------------------------------

    /// Initialise an empty store by running the full batch pipeline over
    /// `dataset` and adopting its output as the initial cluster state.
    pub fn bootstrap(&mut self, dataset: &Dataset) -> Result<IngestReport> {
        if !self.is_empty() {
            return Err(OnlineError::AlreadyPopulated);
        }
        if dataset.num_sources() == 0 {
            return Err(OnlineError::Pipeline(
                multiem_core::MultiEmError::EmptyDataset,
            ));
        }
        self.state.schema = Some(dataset.schema().clone());
        self.resolve_selection(dataset)?;
        let selected = self.state.selected.clone().expect("selection resolved");

        // Phase R over the whole dataset at once. The batch embedding store
        // drives the merge/prune phases below and is then dropped — the
        // per-record payloads stream into the pluggable record store, which
        // may spill them to disk as it goes.
        let embeddings =
            EmbeddingStore::build(dataset, &self.encoder, &selected, &self.state.config.base);
        for (s, table) in dataset.tables().iter().enumerate() {
            let source = self.open_source(table.name());
            debug_assert_eq!(source as usize, s);
            for (row, record) in table.iter() {
                let id = EntityId::new(s as u32, row);
                self.state
                    .records
                    .append(source, record, embeddings.embedding(id))?;
                self.state.entity_of_dense.push(id);
                self.state.uf.push();
            }
        }

        // Phases M and P: table-wise hierarchical merging, then density-based
        // pruning of every multi-member item.
        let tables: Vec<MergedTable> = (0..dataset.num_sources() as u32)
            .map(|s| MergedTable::from_source(dataset, s, &embeddings))
            .collect();
        let merge_out = hierarchical_merge(tables, &self.state.config.base, self.encoder.dim());

        let mut merged_records = 0usize;
        for item in &merge_out.integrated.items {
            let kept: Vec<EntityId> = if item.members.len() >= 2 && self.state.config.base.pruning {
                let outcome = prune_item(&item.members, &embeddings, &self.state.config.base);
                self.state.pruned_outliers += outcome.removed.len();
                outcome.kept
            } else {
                item.members.clone()
            };
            if kept.len() < 2 {
                continue;
            }
            merged_records += kept.len();
            let dense: Vec<usize> = kept
                .iter()
                .map(|&id| self.dense_of(id).expect("bootstrap id"))
                .collect();
            for w in dense.windows(2) {
                self.state.uf.union(w[0], w[1]);
            }
        }

        // Build cluster metadata for every record (clusters formed above,
        // everything else as singletons) and index the representatives.
        let mut members_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for d in 0..self.state.entity_of_dense.len() {
            members_of.entry(self.state.uf.find(d)).or_default().push(d);
        }
        for (root, members) in members_of {
            let meta = self.make_meta(members);
            self.register_cluster(root, meta);
        }

        let records = self.num_records();
        Ok(IngestReport {
            source: 0,
            records,
            merged: merged_records,
            singletons: records - merged_records,
        })
    }

    /// Ingest a whole table as a new source. Every record runs the
    /// incremental mutual-top-K merge against the current clusters (records
    /// of the same batch become visible to each other as they are inserted).
    pub fn ingest_batch(&mut self, table: &Table) -> Result<IngestReport> {
        self.ensure_schema(table.schema())?;
        if self.state.selected.is_none() {
            let mut ds = Dataset::new(table.name(), table.schema().clone());
            ds.add_table(table.clone())
                .map_err(|e| OnlineError::SchemaMismatch(e.to_string()))?;
            self.resolve_selection(&ds)?;
        }

        let source = self.open_source(table.name());
        let selected = self.state.selected.clone().expect("selection resolved");
        let opts = self.state.config.base.serialize.clone();
        let texts: Vec<String> = table
            .records()
            .iter()
            .map(|r| serialize_record_projected(r, &selected, &opts))
            .collect();
        let matrix = self.encoder.encode_batch(&texts);

        let mut report = IngestReport {
            source,
            records: 0,
            ..IngestReport::default()
        };
        for (row, record) in table.iter() {
            let merged = self.insert_embedded(source, record, matrix.row(row as usize))?;
            report.records += 1;
            if merged {
                report.merged += 1;
            } else {
                report.singletons += 1;
            }
        }
        // A batch seals its source: later single inserts open a fresh one.
        self.state.stream_source = None;
        Ok(report)
    }

    /// Insert one record, returning its own (stable) [`EntityId`]. Use
    /// [`EntityStore::cluster_members`] to see which entities it matched.
    pub fn insert(&mut self, record: Record) -> Result<EntityId> {
        let schema = self.state.schema.clone().ok_or_else(|| {
            OnlineError::SchemaMismatch(
                "store has no schema yet; bootstrap or ingest a batch first".into(),
            )
        })?;
        if record.arity() != schema.len() {
            return Err(OnlineError::SchemaMismatch(format!(
                "record has {} values, schema has {} attributes",
                record.arity(),
                schema.len()
            )));
        }
        let source = match self.state.stream_source {
            Some(s) => s,
            None => {
                let name = format!("stream-{}", self.state.records.num_sources());
                let s = self.open_source(&name);
                self.state.stream_source = Some(s);
                s
            }
        };
        let selected = self.state.selected.clone().expect("selection resolved");
        let text =
            serialize_record_projected(&record, &selected, &self.state.config.base.serialize);
        let emb = self.encoder.encode(&text);
        let row = self.state.records.source_len(source) as u32;
        self.insert_embedded(source, &record, &emb)?;
        Ok(EntityId::new(source, row))
    }

    /// Find the clusters a record would match, without mutating the store.
    /// Applies the same mutual top-K rule as [`EntityStore::insert`] (except
    /// the same-source restriction, since an unanchored record has no source
    /// yet). Returns up to `k` pairs of (canonical entity id of the cluster,
    /// distance under the merge metric), closest first. The canonical id of a
    /// cluster is its smallest member.
    pub fn match_record(&self, record: &Record) -> Vec<(EntityId, f32)> {
        self.match_batch(std::slice::from_ref(record))
            .pop()
            .expect("a one-record batch yields one result")
    }

    /// Batched [`EntityStore::match_record`]: answer every query of
    /// `records` with **one** candidates-outer pass over the representative
    /// index, so the index's vector array is streamed through the cache
    /// hierarchy once per batch instead of once per query (the win of the
    /// serving layer's match micro-batching on a memory-bound scan). Each
    /// query's result is exactly what `match_record` would return for it;
    /// the single-record path is a batch of one through here, so the two
    /// can never drift in semantics.
    pub fn match_batch(&self, records: &[Record]) -> Vec<Vec<(EntityId, f32)>> {
        let mut out: Vec<Vec<(EntityId, f32)>> = vec![Vec::new(); records.len()];
        let Some(selected) = self.state.selected.as_deref() else {
            return out;
        };
        let k = self.state.config.base.k;
        if k == 0 {
            return out;
        }
        let embeddings: Vec<(usize, Vec<f32>)> = records
            .iter()
            .enumerate()
            .filter_map(|(query, record)| {
                let text =
                    serialize_record_projected(record, selected, &self.state.config.base.serialize);
                let emb = self.encoder.encode(&text);
                // Queries with no recognised tokens match nothing.
                emb.iter().any(|&x| x != 0.0).then_some((query, emb))
            })
            .collect();
        let queries: Vec<&[f32]> = embeddings.iter().map(|(_, e)| e.as_slice()).collect();
        // Same tombstone over-fetch + live filter + top-k cut as
        // `search_live`, applied per query.
        let fetch = (k + self.state.stale_nodes).min(self.state.node_root.len());
        for ((query, _), hits) in embeddings
            .iter()
            .zip(self.state.index.search_batch(&queries, fetch))
        {
            out[*query] = hits
                .into_iter()
                .filter_map(|n| self.state.node_root[n.index].map(|root| (root, n.distance)))
                .take(k)
                .filter(|&(root, dist)| dist <= self.state.config.base.m && self.mutual(root, dist))
                .map(|(root, dist)| (self.canonical_id(root), dist))
                .collect();
        }
        out
    }

    /// Run density-based pruning over all dirty clusters now (the same pass
    /// that runs automatically every `prune_interval` accepted records), then
    /// rebuild the representative index if it got too stale.
    pub fn refresh(&mut self) {
        self.prune_dirty();
        self.maybe_rebuild();
    }

    // --- snapshot / restore -------------------------------------------------

    /// Serialize the full store state (embeddings, representative index,
    /// cluster partition, ingested records) to JSON. The encoder itself is
    /// not serialized: restore with an identically configured encoder.
    pub fn snapshot_json(&self) -> Result<String> {
        serde_json::to_string(&self.state).map_err(|e| OnlineError::Snapshot(e.to_string()))
    }

    /// Restore a store from a [`EntityStore::snapshot_json`] snapshot.
    ///
    /// `encoder` must be configured identically to the encoder the snapshot
    /// was taken with (same dimensionality and weights); otherwise new
    /// embeddings would be incompatible with the stored ones.
    pub fn restore_json(snapshot: &str, encoder: E) -> Result<Self> {
        let state: StoreState =
            serde_json::from_str(snapshot).map_err(|e| OnlineError::Snapshot(e.to_string()))?;
        Self::adopt_state(state, encoder)
    }

    /// The full store state as a [`serde::Value`] tree — the common
    /// representation behind both snapshot formats and the serving layer's
    /// write-ahead log.
    pub fn snapshot_value(&self) -> serde::Value {
        self.state.to_value()
    }

    /// Restore a store from a [`EntityStore::snapshot_value`] tree.
    pub fn restore_value(value: &serde::Value, encoder: E) -> Result<Self> {
        let state =
            StoreState::from_value(value).map_err(|e| OnlineError::Snapshot(e.to_string()))?;
        Self::adopt_state(state, encoder)
    }

    /// Serialize the full store state in the requested wire format.
    /// [`SnapshotFormat::Binary`] is typically 5–10x smaller than JSON (see
    /// [`crate::wire`]); [`EntityStore::restore_bytes`] auto-detects which
    /// one it is handed.
    pub fn snapshot_bytes(&self, format: SnapshotFormat) -> Result<Vec<u8>> {
        match format {
            SnapshotFormat::Json => self.snapshot_json().map(String::into_bytes),
            SnapshotFormat::Binary => {
                let mut out = Vec::from(*wire::SNAPSHOT_MAGIC);
                wire::write_value(&mut out, &self.snapshot_value());
                Ok(out)
            }
        }
    }

    /// Restore a store from [`EntityStore::snapshot_bytes`] output of either
    /// format (binary snapshots are recognised by their magic prefix).
    pub fn restore_bytes(bytes: &[u8], encoder: E) -> Result<Self> {
        if let Some(payload) = bytes.strip_prefix(wire::SNAPSHOT_MAGIC.as_slice()) {
            let value = wire::value_from_bytes(payload)
                .map_err(|e| OnlineError::Snapshot(e.to_string()))?;
            Self::restore_value(&value, encoder)
        } else {
            let text = std::str::from_utf8(bytes)
                .map_err(|e| OnlineError::Snapshot(format!("snapshot is not utf-8: {e}")))?;
            Self::restore_json(text, encoder)
        }
    }

    fn adopt_state(mut state: StoreState, encoder: E) -> Result<Self> {
        if state.records.dim() != encoder.dim() {
            return Err(OnlineError::Snapshot(format!(
                "snapshot embeddings have dim {}, encoder produces dim {}",
                state.records.dim(),
                encoder.dim()
            )));
        }
        // Re-attach the storage backend to its backing files (disk-backed
        // snapshots carry the segment index, not the sealed payloads).
        state.records.reopen()?;
        Ok(Self { encoder, state })
    }

    /// Prepare an empty store to accept single-record
    /// [`EntityStore::insert`]s without a bootstrap dataset or a first batch:
    /// fixes the schema and resolves the attribute projection from it.
    /// Serving-layer shards use this so every shard agrees on the projection
    /// before any data arrives.
    ///
    /// Fails when `schema` conflicts with one already in place, or when the
    /// selection strategy is [`SelectionStrategy::AutoOnFirstData`] and no
    /// data has resolved it yet — Algorithm 1 needs records to score, so
    /// data-free initialisation requires `Fixed` or `AllAttributes`.
    pub fn init_schema(&mut self, schema: Arc<Schema>) -> Result<()> {
        self.ensure_schema(&schema)?;
        if self.state.selected.is_some() {
            return Ok(());
        }
        let schema_len = schema.len();
        let selected = match &self.state.config.selection {
            SelectionStrategy::Fixed(attrs) => {
                if attrs.iter().any(|&a| a >= schema_len) {
                    return Err(OnlineError::InvalidConfig(format!(
                        "fixed attribute selection references attribute >= {schema_len}"
                    )));
                }
                attrs.clone()
            }
            SelectionStrategy::AllAttributes => (0..schema_len).collect(),
            SelectionStrategy::AutoOnFirstData => {
                return Err(OnlineError::InvalidConfig(
                    "AutoOnFirstData cannot resolve an attribute projection without data; \
                     bootstrap or ingest a batch first, or configure Fixed / AllAttributes"
                        .into(),
                ))
            }
        };
        self.state.selected = Some(selected);
        Ok(())
    }

    // --- internals ----------------------------------------------------------

    fn dense_of(&self, id: EntityId) -> Option<usize> {
        let base = *self.state.dense_base.get(id.source as usize)?;
        if (id.row as usize) < self.state.records.source_len(id.source) {
            Some(base + id.row as usize)
        } else {
            None
        }
    }

    /// The stored embedding of a dense record id. Memory backend: a copy of
    /// the resident vector; disk backend: tail/cache hit or a segment read.
    fn embedding_of_dense(&self, dense: usize) -> Vec<f32> {
        let id = self.state.entity_of_dense[dense];
        self.state
            .records
            .embedding(id)
            .expect("every ingested record has a stored embedding")
    }

    fn canonical_id(&self, root: usize) -> EntityId {
        let meta = &self.state.clusters[&root];
        meta.members
            .iter()
            .map(|&d| self.state.entity_of_dense[d])
            .min()
            .expect("clusters are never empty")
    }

    fn ensure_schema(&mut self, schema: &Arc<Schema>) -> Result<()> {
        match &self.state.schema {
            None => {
                self.state.schema = Some(schema.clone());
                Ok(())
            }
            Some(existing) if existing.same_shape(schema) => Ok(()),
            Some(existing) => {
                let detail = if schema.len() != existing.len() {
                    format!(
                        "table schema has {} attributes, store schema has {}",
                        schema.len(),
                        existing.len()
                    )
                } else {
                    let diff = existing
                        .names()
                        .zip(schema.names())
                        .find(|(a, b)| a != b)
                        .map(|(a, b)| format!("store has `{a}`, table has `{b}`"))
                        .unwrap_or_else(|| "attribute lists differ".to_string());
                    format!("attribute names differ: {diff}")
                };
                Err(OnlineError::SchemaMismatch(detail))
            }
        }
    }

    fn resolve_selection(&mut self, dataset: &Dataset) -> Result<()> {
        let schema_len = dataset.schema().len();
        let (selected, selection) = match &self.state.config.selection {
            SelectionStrategy::Fixed(attrs) => {
                if attrs.iter().any(|&a| a >= schema_len) {
                    return Err(OnlineError::InvalidConfig(format!(
                        "fixed attribute selection references attribute >= {schema_len}"
                    )));
                }
                (attrs.clone(), None)
            }
            SelectionStrategy::AllAttributes => ((0..schema_len).collect(), None),
            SelectionStrategy::AutoOnFirstData => {
                let sel = select_attributes(dataset, &self.encoder, &self.state.config.base)?;
                (sel.selected.clone(), Some(sel))
            }
        };
        self.state.selected = Some(selected);
        self.state.selection = selection;
        Ok(())
    }

    fn open_source(&mut self, name: &str) -> u32 {
        self.state.dense_base.push(self.state.entity_of_dense.len());
        self.state.records.open_source(name)
    }

    fn make_meta(&self, members: Vec<usize>) -> ClusterMeta {
        let dim = self.encoder.dim();
        let mut sum = vec![0.0f32; dim];
        for &d in &members {
            for (a, x) in sum.iter_mut().zip(self.embedding_of_dense(d)) {
                *a += x;
            }
        }
        ClusterMeta {
            members,
            sum,
            node: None,
            dirty: false,
        }
    }

    /// Insert `meta` into the cluster map under `root`, indexing its
    /// representative when the cluster has a non-zero embedding.
    fn register_cluster(&mut self, root: usize, mut meta: ClusterMeta) {
        if meta.is_embedded() {
            let node = self.state.index.insert(&meta.centroid());
            debug_assert_eq!(node, self.state.node_root.len());
            self.state.node_root.push(Some(root));
            meta.node = Some(node);
        }
        self.state.clusters.insert(root, meta);
    }

    fn tombstone(&mut self, node: Option<usize>) {
        if let Some(n) = node {
            if self.state.node_root[n].take().is_some() {
                self.state.stale_nodes += 1;
            }
        }
    }

    /// Search the representative index, returning up to `k` *live* clusters
    /// as `(root, node, distance)`, closest first.
    fn search_live(&self, query: &[f32], k: usize) -> Vec<(usize, usize, f32)> {
        if k == 0 {
            return Vec::new();
        }
        // Tombstones still occupy index slots, so over-fetch by their count.
        let fetch = (k + self.state.stale_nodes).min(self.state.node_root.len());
        self.state
            .index
            .search(query, fetch)
            .into_iter()
            .filter_map(|n| self.state.node_root[n.index].map(|root| (root, n.index, n.distance)))
            .take(k)
            .collect()
    }

    /// Would the new record (at `dist_to_candidate` from the candidate's
    /// representative) be within the candidate's top-K? True when fewer than
    /// K other live representatives are closer to the candidate than the new
    /// record is — the reverse direction of Eq. 1.
    fn mutual(&self, candidate_root: usize, dist_to_candidate: f32) -> bool {
        let k = self.state.config.base.k;
        let meta = &self.state.clusters[&candidate_root];
        let Some(own_node) = meta.node else {
            return false;
        };
        let closer = self
            .search_live(&meta.centroid(), k + 1)
            .into_iter()
            .filter(|&(_, node, dist)| node != own_node && dist < dist_to_candidate)
            .count();
        closer < k
    }

    /// Whether a record from `source` may merge directly into the cluster:
    /// the batch pipeline never compares two items of the same source table
    /// directly, so by default a candidate whose members all share the
    /// record's source is skipped.
    fn source_compatible(&self, candidate_root: usize, source: u32) -> bool {
        if self.state.config.match_within_source {
            return true;
        }
        self.state.clusters[&candidate_root]
            .members
            .iter()
            .any(|&d| self.state.entity_of_dense[d].source != source)
    }

    /// The shared incremental insert path. Returns whether the record merged
    /// into at least one existing cluster.
    fn insert_embedded(&mut self, source: u32, record: &Record, emb: &[f32]) -> Result<bool> {
        let row_id = self.state.records.append(source, record, emb)?;
        let dense = self.state.uf.push();
        self.state.entity_of_dense.push(row_id);
        debug_assert_eq!(self.dense_of(row_id), Some(dense));

        let k = self.state.config.base.k;
        let m = self.state.config.base.m;
        let singleton = ClusterMeta {
            members: vec![dense],
            sum: emb.to_vec(),
            node: None,
            dirty: false,
        };

        // Zero embeddings (empty serialized text) never match anything; keep
        // them as unindexed singletons, like the batch merger skips them.
        if !singleton.is_embedded() {
            let root = self.state.uf.find(dense);
            self.state.clusters.insert(root, singleton);
            return Ok(false);
        }

        let matches: Vec<usize> = self
            .search_live(emb, k)
            .into_iter()
            .filter(|&(root, _, dist)| {
                dist <= m && self.source_compatible(root, source) && self.mutual(root, dist)
            })
            .map(|(root, _, _)| root)
            .collect();

        let merged = !matches.is_empty();
        let mut fused = singleton;
        for root in matches {
            let old = self
                .state
                .clusters
                .remove(&root)
                .expect("candidate root exists");
            self.tombstone(old.node);
            self.state.uf.union(dense, old.members[0]);
            fused.members.extend_from_slice(&old.members);
            for (a, x) in fused.sum.iter_mut().zip(&old.sum) {
                *a += *x;
            }
        }
        fused.dirty = merged;
        let root = self.state.uf.find(dense);
        self.register_cluster(root, fused);

        self.state.accepted_since_prune += 1;
        if let Some(interval) = self.state.config.prune_interval {
            if self.state.accepted_since_prune >= interval {
                self.prune_dirty();
            }
        }
        self.maybe_rebuild();
        Ok(merged)
    }

    /// Density-based pruning (Algorithm 4) over dirty clusters: outliers are
    /// detached into fresh singleton clusters.
    fn prune_dirty(&mut self) {
        self.state.accepted_since_prune = 0;
        if !self.state.config.base.pruning {
            return;
        }
        let dirty_roots: Vec<usize> = self
            .state
            .clusters
            .iter()
            .filter(|(_, m)| m.dirty && m.members.len() >= 2)
            .map(|(&root, _)| root)
            .collect();
        for root in dirty_roots {
            let mut meta = self
                .state
                .clusters
                .remove(&root)
                .expect("dirty root exists");
            // Fetch member embeddings through the storage backend (resident
            // for the memory backend; tail/cache hits or segment reads for
            // disk) and prune the raw points.
            let points: Vec<Vec<f32>> = meta
                .members
                .iter()
                .map(|&d| self.embedding_of_dense(d))
                .collect();
            let point_refs: Vec<&[f32]> = points.iter().map(Vec::as_slice).collect();
            let (kept, removed) = prune_points(&point_refs, &self.state.config.base);
            if removed.is_empty() {
                meta.dirty = false;
                self.state.clusters.insert(root, meta);
                continue;
            }
            self.state.pruned_outliers += removed.len();
            self.tombstone(meta.node);
            // Rebuild cluster sums from the points already fetched above —
            // a refetch through `make_meta` would hit the storage backend
            // (and possibly segment files) a second time per member.
            for &i in &removed {
                let dense = meta.members[i];
                let new_root = self.state.uf.detach(dense);
                let single = ClusterMeta {
                    members: vec![dense],
                    sum: points[i].clone(),
                    node: None,
                    dirty: false,
                };
                self.register_cluster(new_root, single);
            }
            if !kept.is_empty() {
                let mut sum = vec![0.0f32; self.encoder.dim()];
                for &i in &kept {
                    for (a, x) in sum.iter_mut().zip(&points[i]) {
                        *a += *x;
                    }
                }
                let kept_meta = ClusterMeta {
                    members: kept.iter().map(|&i| meta.members[i]).collect(),
                    sum,
                    node: None,
                    dirty: false,
                };
                self.register_cluster(root, kept_meta);
            }
        }
    }

    /// Rebuild the representative index when tombstones dominate, or when the
    /// store grew past `hnsw_threshold` while still on the brute-force
    /// backend (the online analogue of [`IndexBackend::Auto`]).
    fn maybe_rebuild(&mut self) {
        let total = self.state.node_root.len();
        if total == 0 {
            return;
        }
        let live = total - self.state.stale_nodes;
        let staleness = self.state.stale_nodes as f64 / total as f64;
        let needs_upgrade = matches!(self.state.config.base.index_backend, IndexBackend::Auto)
            && matches!(self.state.index, RepIndex::Brute(_))
            && live >= self.state.config.base.hnsw_threshold;
        if staleness <= self.state.config.rebuild_staleness && !needs_upgrade {
            return;
        }
        let mut index = new_index(&self.state.config, live, self.encoder.dim());
        let mut node_root = Vec::with_capacity(live);
        for (&root, meta) in self.state.clusters.iter_mut() {
            if meta.node.is_some() {
                let node = index.insert(&meta.centroid());
                debug_assert_eq!(node, node_root.len());
                node_root.push(Some(root));
                meta.node = Some(node);
            }
        }
        self.state.index = index;
        self.state.node_root = node_root;
        self.state.stale_nodes = 0;
        self.state.rebuilds += 1;
    }
}

fn new_index(config: &OnlineConfig, live: usize, dim: usize) -> RepIndex {
    let use_hnsw = match config.base.index_backend {
        IndexBackend::BruteForce => false,
        IndexBackend::Hnsw => true,
        IndexBackend::Auto => live >= config.base.hnsw_threshold,
    };
    if use_hnsw {
        RepIndex::Hnsw(Box::new(HnswIndex::new(
            dim,
            config.base.merge_metric,
            config.base.hnsw.clone(),
        )))
    } else {
        RepIndex::Brute(BruteForceIndex::new(dim, config.base.merge_metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_core::MultiEmConfig;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;

    fn config() -> OnlineConfig {
        OnlineConfig::new(MultiEmConfig {
            m: 0.35,
            ..MultiEmConfig::default()
        })
        .with_all_attributes()
    }

    fn store() -> EntityStore<HashedLexicalEncoder> {
        EntityStore::new(config(), HashedLexicalEncoder::default())
    }

    fn table(name: &str, schema: &Arc<Schema>, titles: &[&str]) -> Table {
        Table::with_records(
            name,
            schema.clone(),
            titles.iter().map(|t| Record::from_texts([*t])).collect(),
        )
        .unwrap()
    }

    fn title_schema() -> Arc<Schema> {
        Schema::new(["title"]).shared()
    }

    fn music_dataset(seed: u64) -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig {
            name: "music-online".into(),
            num_sources: 4,
            num_tuples: 40,
            num_singletons: 20,
            min_tuple_size: 2,
            max_tuple_size: 4,
            seed,
        };
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn cross_source_duplicates_merge() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table(
            "a",
            &schema,
            &["apple iphone 8 plus 64gb silver", "sony tv"],
        ))
        .unwrap();
        let report = s
            .ingest_batch(&table(
                "b",
                &schema,
                &["apple iphone 8 plus 64 gb silver", "dyson v11"],
            ))
            .unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.merged, 1);
        let tuples = s.tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(
            tuples[0].members(),
            &[EntityId::new(0, 0), EntityId::new(1, 0)]
        );
    }

    #[test]
    fn same_source_duplicates_do_not_merge_directly() {
        let schema = title_schema();
        let mut s = store();
        let report = s
            .ingest_batch(&table(
                "a",
                &schema,
                &["apple iphone 8 plus 64gb", "apple iphone 8 plus 64gb"],
            ))
            .unwrap();
        assert_eq!(report.merged, 0);
        assert!(s.tuples().is_empty());
    }

    #[test]
    fn single_insert_matches_existing_cluster() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table(
            "a",
            &schema,
            &["golden heart river", "makita drill 18v"],
        ))
        .unwrap();
        let id = s
            .insert(Record::from_texts(["golden heart river live"]))
            .unwrap();
        assert_eq!(id.source, 1, "single inserts open a stream source");
        let members = s.cluster_members(id).unwrap();
        assert_eq!(members, vec![EntityId::new(0, 0), id]);
    }

    #[test]
    fn match_record_is_read_only() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table(
            "a",
            &schema,
            &["golden heart river", "makita drill 18v"],
        ))
        .unwrap();
        let before = s.stats();
        let hits = s.match_record(&Record::from_texts(["golden heart river remaster"]));
        assert_eq!(s.stats(), before, "match_record must not mutate");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, EntityId::new(0, 0));
        assert!(hits[0].1 <= 0.35);
        // A completely different product misses.
        assert!(s
            .match_record(&Record::from_texts(["bosch washing machine"]))
            .is_empty());
    }

    #[test]
    fn match_batch_agrees_with_match_record() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table(
            "a",
            &schema,
            &[
                "golden heart river",
                "makita drill 18v",
                "bosch jigsaw 700w",
            ],
        ))
        .unwrap();
        let probes: Vec<Record> = [
            "golden heart river remaster",
            "bosch washing machine",
            "makita drill 18 v",
            "", // no recognised tokens -> zero embedding -> no hits
        ]
        .iter()
        .map(|t| Record::from_texts([*t]))
        .collect();
        let batched = s.match_batch(&probes);
        assert_eq!(batched.len(), probes.len());
        for (probe, hits) in probes.iter().zip(&batched) {
            assert_eq!(hits, &s.match_record(probe));
        }
        assert!(batched[0].len() == 1 && batched[3].is_empty());
        assert!(s.match_batch(&[]).is_empty());
    }

    #[test]
    fn empty_record_stays_singleton() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table("a", &schema, &["real item"]))
            .unwrap();
        let id = s
            .insert(Record::new(vec![multiem_table::Value::Null]))
            .unwrap();
        assert_eq!(s.cluster_members(id).unwrap(), vec![id]);
        assert!(s
            .match_record(&Record::new(vec![multiem_table::Value::Null]))
            .is_empty());
    }

    #[test]
    fn insert_requires_schema_and_matching_arity() {
        let mut s = store();
        assert!(matches!(
            s.insert(Record::from_texts(["x"])),
            Err(OnlineError::SchemaMismatch(_))
        ));
        let schema = title_schema();
        s.ingest_batch(&table("a", &schema, &["x"])).unwrap();
        assert!(matches!(
            s.insert(Record::from_texts(["a", "b"])),
            Err(OnlineError::SchemaMismatch(_))
        ));
        let other = Schema::new(["a", "b"]).shared();
        assert!(matches!(
            s.ingest_batch(&table("b", &other, &[])),
            Err(OnlineError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn bootstrap_matches_streaming_state_shape() {
        let ds = music_dataset(3);
        let mut s = store();
        let report = s.bootstrap(&ds).unwrap();
        assert_eq!(report.records, ds.total_entities());
        assert_eq!(s.num_sources(), ds.num_sources());
        assert!(!s.tuples().is_empty());
        assert!(matches!(
            s.bootstrap(&ds),
            Err(OnlineError::AlreadyPopulated)
        ));
        // Streaming continues after bootstrap.
        let record = ds.record(EntityId::new(0, 0)).unwrap().clone();
        let id = s.insert(record).unwrap();
        assert_eq!(id.source as usize, ds.num_sources());
    }

    #[test]
    fn transitive_merge_through_new_record() {
        // Two border clusters that only connect through a bridging record.
        let schema = title_schema();
        let mut cfg = config();
        cfg.base.m = 0.5;
        let mut s = EntityStore::new(cfg, HashedLexicalEncoder::default());
        s.ingest_batch(&table(
            "a",
            &schema,
            &["silver river serenade acoustic cover"],
        ))
        .unwrap();
        s.ingest_batch(&table("b", &schema, &["silver river serenade"]))
            .unwrap();
        let stats = s.stats();
        assert!(stats.clusters >= 1);
        // The pair is close enough to have merged already; add a third copy.
        s.ingest_batch(&table("c", &schema, &["silver river serenade live"]))
            .unwrap();
        let tuples = s.tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 3);
    }

    #[test]
    fn refresh_prunes_outlier_from_dirty_cluster() {
        let schema = title_schema();
        let mut cfg = config();
        // Loose merge threshold lets an outlier sneak in; strict epsilon
        // prunes it again.
        cfg.base.m = 1.1;
        cfg.base.epsilon = 0.8;
        cfg.prune_interval = None; // only explicit refresh
        let mut s = EntityStore::new(cfg, HashedLexicalEncoder::default());
        s.ingest_batch(&table("a", &schema, &["apple iphone 8 plus 64gb silver"]))
            .unwrap();
        s.ingest_batch(&table(
            "b",
            &schema,
            &["apple iphone 8 plus 64gb silver unlocked"],
        ))
        .unwrap();
        s.ingest_batch(&table(
            "c",
            &schema,
            &["apple iphone plus silver deluxe kit box"],
        ))
        .unwrap();
        let before = s.tuples();
        assert_eq!(before.len(), 1);
        let size_before = before[0].len();
        s.refresh();
        let after = s.tuples();
        let stats = s.stats();
        if stats.pruned_outliers > 0 {
            assert!(after.is_empty() || after[0].len() < size_before);
        }
        // Pruned members remain known records with singleton clusters.
        let total: usize = s.num_records();
        assert_eq!(total, 3);
    }

    #[test]
    fn index_rebuild_preserves_matching() {
        let schema = title_schema();
        let mut cfg = config();
        cfg.rebuild_staleness = 0.0; // rebuild eagerly after every merge
        let mut s = EntityStore::new(cfg, HashedLexicalEncoder::default());
        s.ingest_batch(&table(
            "a",
            &schema,
            &["golden heart river", "makita drill 18v"],
        ))
        .unwrap();
        s.ingest_batch(&table(
            "b",
            &schema,
            &["golden heart river live", "makita drill 18 v"],
        ))
        .unwrap();
        assert_eq!(s.tuples().len(), 2);
        assert!(s.stats().rebuilds > 0);
        assert_eq!(s.stats().stale_nodes, 0);
        // Matching still works after rebuilds.
        let hits = s.match_record(&Record::from_texts(["golden heart river remaster"]));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn auto_backend_upgrades_to_hnsw_past_threshold() {
        let schema = title_schema();
        let mut cfg = config();
        cfg.base.hnsw_threshold = 4;
        let mut s = EntityStore::new(cfg, HashedLexicalEncoder::default());
        s.ingest_batch(&table(
            "a",
            &schema,
            &[
                "golden heart river",
                "makita drill 18v",
                "sony bravia tv",
                "dyson v11 vacuum",
            ],
        ))
        .unwrap();
        s.ingest_batch(&table(
            "b",
            &schema,
            &["golden heart river live", "crimson ballad"],
        ))
        .unwrap();
        assert!(
            matches!(s.state.index, RepIndex::Hnsw(_)),
            "auto backend should have upgraded to HNSW"
        );
        // Matching still works on the upgraded index.
        let hits = s.match_record(&Record::from_texts(["golden heart river remaster"]));
        assert_eq!(hits.len(), 1);
        assert_eq!(s.tuples().len(), 1);
    }

    #[test]
    fn stats_and_bytes_account_the_store() {
        let ds = music_dataset(5);
        let mut s = store();
        s.bootstrap(&ds).unwrap();
        let stats = s.stats();
        assert_eq!(stats.records, ds.total_entities());
        assert_eq!(stats.sources, ds.num_sources());
        assert!(stats.clusters > 0 && stats.tuples > 0);
        assert!(stats.clusters >= stats.tuples);
        assert!(s.approx_bytes() > 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let ds = music_dataset(7);
        let mut s = store();
        s.bootstrap(&ds).unwrap();
        s.insert(ds.record(EntityId::new(1, 3)).unwrap().clone())
            .unwrap();

        let snapshot = s.snapshot_json().unwrap();
        let restored: EntityStore<HashedLexicalEncoder> =
            EntityStore::restore_json(&snapshot, HashedLexicalEncoder::default()).unwrap();

        let mut a = s.tuples();
        let mut b = restored.tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(s.stats(), restored.stats());

        // The restored store keeps evolving identically: insert the same
        // record into both and compare.
        let probe = ds.record(EntityId::new(2, 5)).unwrap().clone();
        let mut s2 = s.clone();
        let mut r2 = restored.clone();
        let ia = s2.insert(probe.clone()).unwrap();
        let ib = r2.insert(probe).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(s2.cluster_members(ia), r2.cluster_members(ib));
    }

    #[test]
    fn binary_snapshot_roundtrips_and_is_smaller_than_json() {
        let ds = music_dataset(11);
        let mut s = store();
        s.bootstrap(&ds).unwrap();

        let json = s.snapshot_bytes(SnapshotFormat::Json).unwrap();
        let binary = s.snapshot_bytes(SnapshotFormat::Binary).unwrap();
        assert!(
            binary.len() * 3 < json.len(),
            "binary snapshot should be well under a third of JSON ({} vs {} bytes)",
            binary.len(),
            json.len()
        );

        // Both formats restore through the same auto-detecting entry point.
        for snapshot in [&json, &binary] {
            let restored: EntityStore<HashedLexicalEncoder> =
                EntityStore::restore_bytes(snapshot, HashedLexicalEncoder::default()).unwrap();
            let mut a = s.tuples();
            let mut b = restored.tuples();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            assert_eq!(s.stats(), restored.stats());
        }

        // The restored binary store keeps evolving identically.
        let probe = ds.record(EntityId::new(1, 2)).unwrap().clone();
        let mut from_binary: EntityStore<HashedLexicalEncoder> =
            EntityStore::restore_bytes(&binary, HashedLexicalEncoder::default()).unwrap();
        let mut original = s.clone();
        let ia = original.insert(probe.clone()).unwrap();
        let ib = from_binary.insert(probe).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(
            original.cluster_members(ia),
            from_binary.cluster_members(ib)
        );
    }

    #[test]
    fn init_schema_enables_data_free_inserts() {
        let schema = title_schema();
        let mut s = store(); // AllAttributes strategy
        s.init_schema(schema.clone()).unwrap();
        let a = s
            .insert(Record::from_texts(["golden heart river"]))
            .unwrap();
        assert_eq!(a, EntityId::new(0, 0));
        assert_eq!(s.cluster_members(a).unwrap(), vec![a]);
        // Conflicting schema is rejected, idempotent re-init is fine.
        assert!(s.init_schema(schema).is_ok());
        let other = Schema::new(["a", "b"]).shared();
        assert!(matches!(
            s.init_schema(other),
            Err(OnlineError::SchemaMismatch(_))
        ));
        // Auto selection cannot resolve without data.
        let mut auto = EntityStore::new(
            OnlineConfig::new(MultiEmConfig::default()),
            HashedLexicalEncoder::default(),
        );
        assert!(matches!(
            auto.init_schema(title_schema()),
            Err(OnlineError::InvalidConfig(_))
        ));
    }

    fn disk_config(tag: &str) -> (OnlineConfig, std::path::PathBuf) {
        static DIR_SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "multiem-store-disk-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        let mut cfg = config().with_disk_storage(dir.display().to_string());
        // Tiny segments and cache so even small tests spill and re-read.
        if let crate::config::StorageConfig::Disk(disk) = &mut cfg.storage {
            disk.segment_records = 16;
            disk.cache_records = 8;
        }
        (cfg, dir)
    }

    #[test]
    fn disk_backend_matches_memory_backend_exactly() {
        let ds = music_dataset(17);
        let (disk_cfg, dir) = disk_config("equiv");
        let mut on_disk = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
        let mut in_mem = store();
        for table in ds.tables() {
            let a = on_disk.ingest_batch(table).unwrap();
            let b = in_mem.ingest_batch(table).unwrap();
            assert_eq!(a, b, "ingest reports must not depend on storage");
        }
        on_disk.refresh();
        in_mem.refresh();

        let mut a = on_disk.tuples();
        let mut b = in_mem.tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b, "matching must not depend on the storage backend");
        assert_eq!(on_disk.stats(), in_mem.stats());

        let probe = ds.record(EntityId::new(0, 3)).unwrap().clone();
        assert_eq!(on_disk.match_record(&probe), in_mem.match_record(&probe));
        // Records read back identically through the segment files.
        for id in [EntityId::new(0, 0), EntityId::new(2, 5)] {
            assert_eq!(on_disk.record(id), in_mem.record(id));
        }

        let ds_stats = on_disk.storage_stats();
        assert_eq!(ds_stats.backend, "disk");
        assert!(ds_stats.spilled_records > 0, "test must actually spill");
        assert!(
            ds_stats.resident_records < ds_stats.records,
            "disk backend must not keep everything resident"
        );
        assert!(on_disk.approx_bytes() < in_mem.approx_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backend_snapshot_restores_and_continues() {
        let ds = music_dataset(19);
        let (disk_cfg, dir) = disk_config("snap");
        let mut s = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
        let tables = ds.tables();
        for table in &tables[..2] {
            s.ingest_batch(table).unwrap();
        }

        // Without a flush the snapshot carries the unsealed tail inline;
        // with one it carries only the segment index. Both must restore.
        for flush in [false, true] {
            let mut current = s.clone();
            if flush {
                current.flush_storage().unwrap();
            }
            let snapshot = current.snapshot_bytes(SnapshotFormat::Binary).unwrap();
            let mut restored: EntityStore<HashedLexicalEncoder> =
                EntityStore::restore_bytes(&snapshot, HashedLexicalEncoder::default()).unwrap();
            assert_eq!(restored.stats(), current.stats());
            for table in &tables[2..] {
                current.ingest_batch(table).unwrap();
                restored.ingest_batch(table).unwrap();
            }
            current.refresh();
            restored.refresh();
            let mut a = current.tuples();
            let mut b = restored.tuples();
            a.sort();
            b.sort();
            assert_eq!(a, b, "restored disk store must continue identically");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_snapshot_after_flush_is_a_delta() {
        let ds = music_dataset(23);
        let (disk_cfg, dir) = disk_config("delta");
        let mut s = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
        for table in ds.tables() {
            s.ingest_batch(table).unwrap();
        }
        let inline = s.snapshot_bytes(SnapshotFormat::Binary).unwrap();
        s.flush_storage().unwrap();
        let delta = s.snapshot_bytes(SnapshotFormat::Binary).unwrap();
        assert!(
            delta.len() < inline.len(),
            "sealing the tail must shrink the snapshot ({} vs {} bytes)",
            delta.len(),
            inline.len()
        );
        // A memory-backend snapshot of the same data dwarfs the disk delta
        // (it carries every record and embedding).
        let mut mem = store();
        for table in ds.tables() {
            mem.ingest_batch(table).unwrap();
        }
        let full = mem.snapshot_bytes(SnapshotFormat::Binary).unwrap();
        assert!(
            delta.len() * 2 < full.len(),
            "disk snapshot should be well under half the resident one \
             ({} vs {} bytes)",
            delta.len(),
            full.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_record_detaches_and_forgets() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table(
            "a",
            &schema,
            &["golden heart river", "makita drill 18v"],
        ))
        .unwrap();
        let id = s
            .insert(Record::from_texts(["golden heart river live"]))
            .unwrap();
        assert_eq!(s.cluster_members(id).unwrap().len(), 2);

        assert!(s.delete_record(id).unwrap());
        assert!(!s.delete_record(id).unwrap(), "idempotent");
        assert!(!s.delete_record(EntityId::new(9, 9)).unwrap(), "unknown");
        assert_eq!(s.record(id), None);
        assert_eq!(s.cluster_members(id), None, "deleted ids are unknown");
        // The survivor is a singleton again with a working representative.
        let anchor = EntityId::new(0, 0);
        assert_eq!(s.cluster_members(anchor).unwrap(), vec![anchor]);
        let hits = s.match_record(&Record::from_texts(["golden heart river remaster"]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, anchor, "match must never surface a deleted id");

        let stats = s.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.tuples, 0);
        assert_eq!(s.num_records(), 2);
        assert_eq!(s.num_deleted(), 1);

        // Deleting the last member of a singleton cluster drops the cluster.
        assert!(s.delete_record(EntityId::new(0, 1)).unwrap());
        assert!(s
            .match_record(&Record::from_texts(["makita drill 18v"]))
            .is_empty());
    }

    #[test]
    fn deletion_is_identical_across_storage_backends() {
        let ds = music_dataset(29);
        let (disk_cfg, dir) = disk_config("delete-equiv");
        let mut on_disk = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
        let mut in_mem = store();
        for table in ds.tables() {
            on_disk.ingest_batch(table).unwrap();
            in_mem.ingest_batch(table).unwrap();
        }
        // Delete every third record of every source, both stores alike.
        for source in 0..ds.num_sources() as u32 {
            for row in (0..ds.tables()[source as usize].len() as u32).step_by(3) {
                let id = EntityId::new(source, row);
                assert_eq!(
                    on_disk.delete_record(id).unwrap(),
                    in_mem.delete_record(id).unwrap()
                );
            }
        }
        on_disk.refresh();
        in_mem.refresh();
        assert_eq!(on_disk.stats(), in_mem.stats());
        let mut a = on_disk.tuples();
        let mut b = in_mem.tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b, "deletion must not depend on the storage backend");
        let probe = ds.record(EntityId::new(1, 1)).unwrap().clone();
        assert_eq!(on_disk.match_record(&probe), in_mem.match_record(&probe));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_after_delete_and_compaction_continues_identically() {
        let ds = music_dataset(31);
        let (disk_cfg, dir) = disk_config("delete-snap");
        let mut s = EntityStore::new(disk_cfg, HashedLexicalEncoder::default());
        for table in ds.tables() {
            s.ingest_batch(table).unwrap();
        }
        s.flush_storage().unwrap();
        let spilled_before = s.storage_stats().spilled_bytes;
        // Delete more than half of source 0 and 1 so segments hollow out.
        let mut deleted = 0;
        for source in 0..2u32 {
            for row in 0..ds.tables()[source as usize].len() as u32 {
                if row % 3 != 2 && s.delete_record(EntityId::new(source, row)).unwrap() {
                    deleted += 1;
                }
            }
        }
        assert!(deleted > 0);
        let report = s.compact_storage().unwrap();
        assert!(report.segments_compacted > 0, "compaction must trigger");
        assert!(s.storage_stats().spilled_bytes < spilled_before);
        s.gc_storage().unwrap();

        let snapshot = s.snapshot_bytes(SnapshotFormat::Binary).unwrap();
        let mut restored: EntityStore<HashedLexicalEncoder> =
            EntityStore::restore_bytes(&snapshot, HashedLexicalEncoder::default()).unwrap();
        assert_eq!(restored.stats(), s.stats());
        assert_eq!(
            restored.storage_stats().deleted_records,
            s.storage_stats().deleted_records
        );
        // Both stores keep evolving identically after restore: insert and
        // delete the same things.
        let probe = ds.record(EntityId::new(2, 3)).unwrap().clone();
        let ia = s.insert(probe.clone()).unwrap();
        let ib = restored.insert(probe).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(
            s.delete_record(ia).unwrap(),
            restored.delete_record(ib).unwrap()
        );
        let mut a = s.tuples();
        let mut b = restored.tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_mismatched_encoder_dim() {
        let schema = title_schema();
        let mut s = store();
        s.ingest_batch(&table("a", &schema, &["x"])).unwrap();
        let snapshot = s.snapshot_json().unwrap();
        let err = EntityStore::restore_json(&snapshot, HashedLexicalEncoder::with_dim(64));
        assert!(matches!(err, Err(OnlineError::Snapshot(_))));
    }
}
