//! The fully resident record-store backend.

use super::{record_heap_bytes, RecordIter, RecordStore, StorageStats};
use crate::Result;
use multiem_core::representation::EmbeddingStore;
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};

/// In-memory storage: per-source record vectors plus an [`EmbeddingStore`]
/// — exactly the state the entity store owned before storage became
/// pluggable, so the memory profile and snapshot contents of the default
/// configuration are unchanged in spirit.
///
/// Deletion frees the record payload in place (the slot flips to `None`,
/// dropping its strings); the embedding slot stays allocated inside the
/// dense matrix — rows are positional — but is no longer readable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemRecordStore {
    names: Vec<String>,
    records: Vec<Vec<Option<Record>>>,
    embeddings: EmbeddingStore,
    /// Global append order (sources interleave under streaming ingest).
    order: Vec<EntityId>,
    /// Running total of [`record_heap_bytes`] across every stored record.
    record_bytes: usize,
    /// Records tombstoned so far (cumulative, persisted).
    deleted: usize,
}

impl MemRecordStore {
    /// An empty store for embeddings of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            names: Vec::new(),
            records: Vec::new(),
            embeddings: EmbeddingStore::empty(dim),
            order: Vec::new(),
            record_bytes: 0,
            deleted: 0,
        }
    }

    fn slot(&self, id: EntityId) -> Option<&Option<Record>> {
        self.records.get(id.source as usize)?.get(id.row as usize)
    }
}

impl RecordStore for MemRecordStore {
    fn dim(&self) -> usize {
        self.embeddings.dim()
    }

    fn open_source(&mut self, name: &str) -> u32 {
        self.names.push(name.to_string());
        self.records.push(Vec::new());
        self.embeddings.add_source()
    }

    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId> {
        let id = self.embeddings.push(source, embedding);
        self.record_bytes += record_heap_bytes(record);
        self.records[source as usize].push(Some(record.clone()));
        debug_assert_eq!(id.row as usize, self.records[source as usize].len() - 1);
        self.order.push(id);
        Ok(id)
    }

    fn get(&self, id: EntityId) -> Option<Record> {
        self.slot(id)?.clone()
    }

    fn embedding(&self, id: EntityId) -> Option<Vec<f32>> {
        if self.slot(id)?.is_some() {
            Some(self.embeddings.embedding(id).to_vec())
        } else {
            None
        }
    }

    fn delete(&mut self, id: EntityId) -> Result<bool> {
        let Some(slot) = self
            .records
            .get_mut(id.source as usize)
            .and_then(|rows| rows.get_mut(id.row as usize))
        else {
            return Ok(false);
        };
        match slot.take() {
            Some(record) => {
                self.record_bytes = self.record_bytes.saturating_sub(record_heap_bytes(&record));
                self.deleted += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn iter(&self) -> RecordIter<'_> {
        Box::new(self.order.iter().filter_map(|&id| {
            let record = self.records[id.source as usize][id.row as usize].clone()?;
            Some((id, record))
        }))
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn num_sources(&self) -> usize {
        self.records.len()
    }

    fn source_len(&self, source: u32) -> usize {
        self.records.get(source as usize).map_or(0, Vec::len)
    }

    fn source_name(&self, source: u32) -> Option<&str> {
        self.names.get(source as usize).map(String::as_str)
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn reopen(&mut self) -> Result<()> {
        // Rebuild the byte accounting the snapshot did not carry precisely.
        self.record_bytes = self
            .records
            .iter()
            .flatten()
            .flatten()
            .map(record_heap_bytes)
            .sum();
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        let records = self.len();
        StorageStats {
            backend: "memory",
            records,
            deleted_records: self.deleted,
            resident_records: records - self.deleted,
            resident_bytes: self.record_bytes + self.embeddings.approx_bytes(),
            spilled_records: 0,
            spilled_bytes: 0,
            segments: 0,
            segments_deleted: 0,
            compactions: 0,
            reclaimed_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}
