//! Pluggable record/embedding storage for the online entity store.
//!
//! [`crate::EntityStore`] used to own every ingested [`Record`] (in
//! `Vec<Table>`) and every embedding (in an
//! [`multiem_core::representation::EmbeddingStore`]) directly, so resident
//! memory grew linearly with ingest. This module factors that ownership out
//! behind the [`RecordStore`] trait with two backends:
//!
//! * [`MemRecordStore`] — everything resident, the original behaviour and
//!   the default ([`crate::StorageConfig::Memory`]);
//! * [`SegmentRecordStore`] — records and embeddings spill to append-only,
//!   CRC-framed segment files (the framing of [`crate::wire`], shared with
//!   the WAL and the binary snapshot codec), keeping only the unsealed tail
//!   and a fixed-size hot cache in memory
//!   ([`crate::StorageConfig::Disk`]).
//!
//! The matching state itself (cluster metadata, centroids, the
//! representative ANN index, union-find) stays in memory in both cases —
//! it is the *per-record* payload (text + `dim` floats) that dominates
//! long-running deployments and that the disk backend bounds.
//!
//! [`RecordStorage`] is the concrete enum the store embeds (static
//! dispatch, and it keeps `Clone`/serde derivable); both variants and the
//! enum itself implement [`RecordStore`].

pub mod mem;
pub mod segment;

pub use mem::MemRecordStore;
pub use segment::SegmentRecordStore;

use crate::config::StorageConfig;
use crate::Result;
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};

/// Boxed iterator over every stored record in append order.
pub type RecordIter<'a> = Box<dyn Iterator<Item = (EntityId, Record)> + 'a>;

/// Counters describing where records live and what they cost in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StorageStats {
    /// Backend tag (`"memory"` or `"disk"`).
    pub backend: &'static str,
    /// Total stored records.
    pub records: usize,
    /// Records whose decoded form is resident (memory backend: all;
    /// disk backend: unsealed tail + hot cache).
    pub resident_records: usize,
    /// Approximate bytes of resident record + embedding payload, including
    /// the disk backend's per-record index overhead.
    pub resident_bytes: usize,
    /// Records that live only in sealed segment files.
    pub spilled_records: usize,
    /// On-disk bytes across sealed segment files.
    pub spilled_bytes: u64,
    /// Sealed segment files.
    pub segments: usize,
    /// Unreferenced segment files deleted by [`RecordStore::gc`] over this
    /// store's lifetime (volatile: resets on restore).
    pub segments_deleted: u64,
    /// Hot-cache hits since the store was opened (volatile: not part of the
    /// persisted state, resets on restore).
    pub cache_hits: u64,
    /// Hot-cache misses (each one is a segment-file read).
    pub cache_misses: u64,
}

/// Append-only storage of `(record, embedding)` pairs keyed by
/// [`EntityId`], with per-source row numbering.
///
/// Implementations must preserve exact round-trips: `get` / `embedding`
/// return byte-identical data to what was appended, in any order, across
/// `flush` + `reopen` cycles.
pub trait RecordStore {
    /// Embedding dimensionality every appended embedding must match.
    fn dim(&self) -> usize;

    /// Open a new source table, returning its source id.
    fn open_source(&mut self, name: &str) -> u32;

    /// Append one record with its embedding to `source`, returning the id
    /// it is retrievable under (row numbers are dense per source).
    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId>;

    /// The record stored under `id`, or `None` for unknown ids.
    fn get(&self, id: EntityId) -> Option<Record>;

    /// The embedding stored under `id`, or `None` for unknown ids.
    fn embedding(&self, id: EntityId) -> Option<Vec<f32>>;

    /// Iterate every record in append order.
    fn iter(&self) -> RecordIter<'_>;

    /// Total stored records.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of opened sources.
    fn num_sources(&self) -> usize;

    /// Records stored for one source (0 for unknown sources).
    fn source_len(&self, source: u32) -> usize;

    /// Name a source was opened with.
    fn source_name(&self, source: u32) -> Option<&str>;

    /// Persist any buffered state (the disk backend seals its tail segment,
    /// so a subsequent snapshot carries no record payload). No-op for the
    /// memory backend.
    fn flush(&mut self) -> Result<()>;

    /// Re-attach deserialized metadata to its backing files (the disk
    /// backend re-scans its segment files and rebuilds frame offsets).
    /// Called by [`crate::EntityStore`] after snapshot restore.
    fn reopen(&mut self) -> Result<()>;

    /// Garbage-collect backing files the store no longer references (the
    /// disk backend deletes segment files absent from its committed segment
    /// index — orphans left behind by a crash between sealing and
    /// checkpoint commit). Returns the number of files deleted; the
    /// cumulative count is surfaced as
    /// [`StorageStats::segments_deleted`]. No-op for the memory backend.
    fn gc(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Storage counters.
    fn stats(&self) -> StorageStats;
}

/// The concrete storage backends, selected by
/// [`StorageConfig`](crate::StorageConfig).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecordStorage {
    /// Fully resident storage.
    Mem(MemRecordStore),
    /// Spill-to-disk segment storage.
    Disk(SegmentRecordStore),
}

impl RecordStorage {
    /// Build the backend named by `config` for embeddings of width `dim`.
    pub fn new(config: &StorageConfig, dim: usize) -> Result<Self> {
        Ok(match config {
            StorageConfig::Memory => RecordStorage::Mem(MemRecordStore::new(dim)),
            StorageConfig::Disk(disk) => {
                RecordStorage::Disk(SegmentRecordStore::create(disk.clone(), dim)?)
            }
        })
    }
}

macro_rules! delegate {
    ($self:ident, $store:ident => $body:expr) => {
        match $self {
            RecordStorage::Mem($store) => $body,
            RecordStorage::Disk($store) => $body,
        }
    };
}

impl RecordStore for RecordStorage {
    fn dim(&self) -> usize {
        delegate!(self, s => s.dim())
    }

    fn open_source(&mut self, name: &str) -> u32 {
        delegate!(self, s => s.open_source(name))
    }

    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId> {
        delegate!(self, s => s.append(source, record, embedding))
    }

    fn get(&self, id: EntityId) -> Option<Record> {
        delegate!(self, s => s.get(id))
    }

    fn embedding(&self, id: EntityId) -> Option<Vec<f32>> {
        delegate!(self, s => s.embedding(id))
    }

    fn iter(&self) -> RecordIter<'_> {
        delegate!(self, s => s.iter())
    }

    fn len(&self) -> usize {
        delegate!(self, s => s.len())
    }

    fn num_sources(&self) -> usize {
        delegate!(self, s => s.num_sources())
    }

    fn source_len(&self, source: u32) -> usize {
        delegate!(self, s => s.source_len(source))
    }

    fn source_name(&self, source: u32) -> Option<&str> {
        delegate!(self, s => s.source_name(source))
    }

    fn flush(&mut self) -> Result<()> {
        delegate!(self, s => s.flush())
    }

    fn reopen(&mut self) -> Result<()> {
        delegate!(self, s => s.reopen())
    }

    fn gc(&mut self) -> Result<u64> {
        delegate!(self, s => s.gc())
    }

    fn stats(&self) -> StorageStats {
        delegate!(self, s => s.stats())
    }
}

/// Approximate heap footprint of one record's values (used by both backends
/// for resident-byte accounting).
pub(crate) fn record_heap_bytes(record: &Record) -> usize {
    let mut bytes = std::mem::size_of::<Record>();
    for v in record.values() {
        bytes += std::mem::size_of_val(v);
        if let Some(t) = v.as_text() {
            bytes += t.len();
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskStorageConfig;
    use multiem_table::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "multiem-storage-test-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: usize) -> Record {
        Record::new(vec![
            Value::Text(format!("item number {i}")),
            Value::Number(i as f64),
            Value::Null,
        ])
    }

    fn embedding(i: usize, dim: usize) -> Vec<f32> {
        (0..dim).map(|d| (i * 31 + d) as f32 * 0.25).collect()
    }

    fn exercise(store: &mut dyn RecordStore, n: usize) {
        let dim = store.dim();
        let a = store.open_source("alpha");
        let b = store.open_source("beta");
        for i in 0..n {
            let source = if i % 3 == 0 { b } else { a };
            let id = store
                .append(source, &record(i), &embedding(i, dim))
                .unwrap();
            assert_eq!(id.source, source);
        }
        assert_eq!(store.len(), n);
        assert_eq!(store.num_sources(), 2);
        assert_eq!(store.source_len(a) + store.source_len(b), n);
        assert_eq!(store.source_name(b), Some("beta"));
        assert_eq!(store.source_name(9), None);
    }

    fn verify(store: &dyn RecordStore, n: usize) {
        let dim = store.dim();
        // Reconstruct the expected (source, row) assignment.
        let mut rows = [0u32; 2];
        for i in 0..n {
            let source = u32::from(i % 3 == 0);
            let id = EntityId::new(source, rows[source as usize]);
            rows[source as usize] += 1;
            assert_eq!(store.get(id), Some(record(i)), "record {i}");
            assert_eq!(
                store.embedding(id),
                Some(embedding(i, dim)),
                "embedding {i}"
            );
        }
        assert_eq!(store.get(EntityId::new(5, 0)), None);
        assert_eq!(store.embedding(EntityId::new(0, u32::MAX)), None);
        // Iteration covers everything in append order.
        let all: Vec<(EntityId, Record)> = store.iter().collect();
        assert_eq!(all.len(), n);
        for (i, (_, r)) in all.iter().enumerate() {
            assert_eq!(r, &record(i));
        }
    }

    #[test]
    fn memory_backend_roundtrips() {
        let mut store = MemRecordStore::new(4);
        exercise(&mut store, 40);
        verify(&store, 40);
        let stats = store.stats();
        assert_eq!(stats.backend, "memory");
        assert_eq!(stats.records, 40);
        assert_eq!(stats.resident_records, 40);
        assert_eq!(stats.spilled_records, 0);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn disk_backend_roundtrips_and_spills() {
        let dir = temp_dir("roundtrip");
        let config = DiskStorageConfig {
            segment_records: 8,
            cache_records: 6,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 40);
        verify(&store, 40);
        let stats = store.stats();
        assert_eq!(stats.backend, "disk");
        assert_eq!(stats.records, 40);
        assert_eq!(stats.segments, 5, "40 appends at 8/segment seal 5 files");
        assert_eq!(stats.spilled_records, 40);
        assert!(stats.spilled_bytes > 0);
        assert!(
            stats.resident_records <= 6,
            "resident records bounded by the cache: {stats:?}"
        );
        assert!(stats.cache_hits + stats.cache_misses > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backend_flush_seals_partial_tail() {
        let dir = temp_dir("flush");
        let config = DiskStorageConfig {
            segment_records: 100,
            cache_records: 4,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 10);
        assert_eq!(store.stats().segments, 0, "tail not yet sealed");
        store.flush().unwrap();
        assert_eq!(store.stats().segments, 1);
        assert_eq!(store.stats().spilled_records, 10);
        // Appends continue into a fresh tail; mixed segment sizes resolve.
        exercise_more(&mut store, 10, 5);
        store.flush().unwrap();
        assert_eq!(store.stats().segments, 2);
        verify(&store, 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Append records `n..n + extra` following the `exercise` routing.
    fn exercise_more(store: &mut dyn RecordStore, n: usize, extra: usize) {
        let dim = store.dim();
        for i in n..n + extra {
            let source = u32::from(i % 3 == 0);
            store
                .append(source, &record(i), &embedding(i, dim))
                .unwrap();
        }
    }

    #[test]
    fn disk_backend_survives_serde_reopen() {
        let dir = temp_dir("reopen");
        let config = DiskStorageConfig {
            segment_records: 7,
            cache_records: 8,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 30);

        // Serialize metadata + unsealed tail, as a snapshot would.
        let value = serde::Serialize::to_value(&store);
        let mut reopened: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        reopened.reopen().unwrap();
        verify(&reopened, 30);
        assert_eq!(reopened.stats().segments, store.stats().segments);

        // The reopened store keeps appending where the original left off.
        exercise_more(&mut reopened, 30, 12);
        verify(&reopened, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backend_reopen_rejects_missing_or_corrupt_segments() {
        let dir = temp_dir("corrupt");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 10);
        let value = serde::Serialize::to_value(&store);

        // Truncate one segment file: reopen must fail loudly.
        let seg = dir.join("seg-000001.seg");
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let mut broken: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        assert!(broken.reopen().is_err());

        // A missing file fails too.
        std::fs::remove_file(&seg).unwrap();
        let mut missing: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        assert!(missing.reopen().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_deletes_only_unreferenced_segment_files() {
        let dir = temp_dir("gc");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 4,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 12); // seals seg-000000 and seg-000001
        let sealed = store.stats().segments;
        assert_eq!(sealed, 2);

        // Orphans a crash between sealing and checkpoint commit could
        // leave: a segment beyond the index and an interrupted seal's tmp.
        std::fs::write(dir.join("seg-000042.seg"), b"orphan").unwrap();
        std::fs::write(dir.join("seg-000007.tmp"), b"torn seal").unwrap();
        // Foreign files are not ours to delete.
        std::fs::write(dir.join("NOTES.md"), b"keep").unwrap();

        assert_eq!(store.gc().unwrap(), 2);
        assert!(!dir.join("seg-000042.seg").exists());
        assert!(!dir.join("seg-000007.tmp").exists());
        assert!(dir.join("NOTES.md").exists());
        // Referenced segments survive and still serve reads.
        verify(&store, 12);
        let stats = store.stats();
        assert_eq!(stats.segments, sealed);
        assert_eq!(stats.segments_deleted, 2, "cumulative counter");
        // A second pass finds nothing.
        assert_eq!(store.gc().unwrap(), 0);
        assert_eq!(store.stats().segments_deleted, 2);

        // The memory backend's gc is a no-op.
        let mut mem = MemRecordStore::new(4);
        assert_eq!(mem.gc().unwrap(), 0);
        assert_eq!(mem.stats().segments_deleted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_capacity_cache_still_reads_correctly() {
        let dir = temp_dir("nocache");
        let config = DiskStorageConfig {
            segment_records: 4,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 20);
        verify(&store, 20);
        let stats = store.stats();
        assert_eq!(stats.cache_hits, 0, "cache disabled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enum_dispatch_matches_config() {
        let mem = RecordStorage::new(&StorageConfig::Memory, 3).unwrap();
        assert_eq!(mem.stats().backend, "memory");
        let dir = temp_dir("enum");
        let disk = RecordStorage::new(
            &StorageConfig::Disk(DiskStorageConfig::new(dir.display().to_string())),
            3,
        )
        .unwrap();
        assert_eq!(disk.stats().backend, "disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
