//! Pluggable record/embedding storage for the online entity store.
//!
//! [`crate::EntityStore`] used to own every ingested [`Record`] (in
//! `Vec<Table>`) and every embedding (in an
//! [`multiem_core::representation::EmbeddingStore`]) directly, so resident
//! memory grew linearly with ingest. This module factors that ownership out
//! behind the [`RecordStore`] trait with two backends:
//!
//! * [`MemRecordStore`] — everything resident, the original behaviour and
//!   the default ([`crate::StorageConfig::Memory`]);
//! * [`SegmentRecordStore`] — records and embeddings spill to append-only,
//!   CRC-framed segment files (the framing of [`crate::wire`], shared with
//!   the WAL and the binary snapshot codec), keeping only the unsealed tail
//!   and a fixed-size hot cache in memory
//!   ([`crate::StorageConfig::Disk`]).
//!
//! The matching state itself (cluster metadata, centroids, the
//! representative ANN index, union-find) stays in memory in both cases —
//! it is the *per-record* payload (text + `dim` floats) that dominates
//! long-running deployments and that the disk backend bounds.
//!
//! [`RecordStorage`] is the concrete enum the store embeds (static
//! dispatch, and it keeps `Clone`/serde derivable); both variants and the
//! enum itself implement [`RecordStore`].

pub mod mem;
pub mod segment;

pub use mem::MemRecordStore;
pub use segment::SegmentRecordStore;

use crate::config::StorageConfig;
use crate::Result;
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};

/// Boxed iterator over every stored record in append order.
pub type RecordIter<'a> = Box<dyn Iterator<Item = (EntityId, Record)> + 'a>;

/// Counters describing where records live and what they cost in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StorageStats {
    /// Backend tag (`"memory"` or `"disk"`).
    pub backend: &'static str,
    /// Total appended records, including tombstoned ones (row ids stay
    /// stable under deletion, so the append count never shrinks).
    pub records: usize,
    /// Records tombstoned by [`RecordStore::delete`] over the store's
    /// lifetime (persisted: survives snapshot/restore).
    pub deleted_records: usize,
    /// Records whose decoded form is resident (memory backend: all live;
    /// disk backend: unsealed tail + hot cache).
    pub resident_records: usize,
    /// Approximate bytes of resident record + embedding payload, including
    /// the disk backend's per-record index overhead.
    pub resident_bytes: usize,
    /// Records that live only in sealed segment files (live + tombstoned
    /// frames still present on disk).
    pub spilled_records: usize,
    /// On-disk bytes across sealed segment files.
    pub spilled_bytes: u64,
    /// Sealed segment files.
    pub segments: usize,
    /// Unreferenced segment files deleted by [`RecordStore::gc`] over this
    /// store's lifetime. Persisted through snapshot/restore; the restored
    /// value lags by at most the sweeps since the snapshot was taken (GC
    /// runs after the snapshot that the counter rides in).
    pub segments_deleted: u64,
    /// Segment files rewritten or dropped by [`RecordStore::compact`] over
    /// the store's lifetime (persisted: survives snapshot/restore).
    pub compactions: u64,
    /// On-disk bytes reclaimed by compaction over the store's lifetime
    /// (persisted). Counted when the rewrite commits; the superseded files
    /// are physically removed by the next [`RecordStore::gc`].
    pub reclaimed_bytes: u64,
    /// Hot-cache hits since the store was opened (volatile: not part of the
    /// persisted state, resets on restore).
    pub cache_hits: u64,
    /// Hot-cache misses (each one is a segment-file read).
    pub cache_misses: u64,
}

impl Default for StorageStats {
    /// All-zero counters tagged with the default (`"memory"`) backend —
    /// the identity element for the serving layer's cross-shard merges.
    fn default() -> Self {
        StorageStats {
            backend: "memory",
            records: 0,
            deleted_records: 0,
            resident_records: 0,
            resident_bytes: 0,
            spilled_records: 0,
            spilled_bytes: 0,
            segments: 0,
            segments_deleted: 0,
            compactions: 0,
            reclaimed_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }
}

/// Health of one sealed segment file (the per-segment rows of the serving
/// layer's `/debug/storage` surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SegmentStats {
    /// Frames in the file (live records at seal time).
    pub records: usize,
    /// Frames tombstoned since the file was sealed.
    pub dead: usize,
    /// File size in bytes.
    pub bytes: u64,
}

impl SegmentStats {
    /// Fraction of the file's frames still live (compaction triggers once
    /// this falls to the configured threshold).
    pub fn live_ratio(&self) -> f64 {
        (self.records - self.dead) as f64 / self.records.max(1) as f64
    }
}

/// Outcome of one [`RecordStore::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CompactionReport {
    /// Segment files rewritten or dropped by this pass.
    pub segments_compacted: u64,
    /// Fresh segment files the pass sealed (0 when every compacted segment
    /// was fully dead).
    pub segments_written: u64,
    /// Bytes of superseded segment files minus bytes of their replacements.
    pub reclaimed_bytes: u64,
}

/// Append-only storage of `(record, embedding)` pairs keyed by
/// [`EntityId`], with per-source row numbering.
///
/// Implementations must preserve exact round-trips: `get` / `embedding`
/// return byte-identical data to what was appended, in any order, across
/// `flush` + `reopen` cycles.
pub trait RecordStore {
    /// Embedding dimensionality every appended embedding must match.
    fn dim(&self) -> usize;

    /// Open a new source table, returning its source id.
    fn open_source(&mut self, name: &str) -> u32;

    /// Append one record with its embedding to `source`, returning the id
    /// it is retrievable under (row numbers are dense per source).
    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId>;

    /// The record stored under `id`, or `None` for unknown or deleted ids.
    fn get(&self, id: EntityId) -> Option<Record>;

    /// The embedding stored under `id`, or `None` for unknown or deleted
    /// ids.
    fn embedding(&self, id: EntityId) -> Option<Vec<f32>>;

    /// Tombstone the record under `id`: `get` / `embedding` return `None`
    /// from now on, and the payload is freed (memory backend) or marked
    /// dead pending [`RecordStore::compact`] (disk backend). Row numbering
    /// is unaffected — ids of other records never shift. Returns whether a
    /// live record was deleted (`false` for unknown or already-deleted
    /// ids).
    fn delete(&mut self, id: EntityId) -> Result<bool>;

    /// Iterate every *live* record in append order.
    fn iter(&self) -> RecordIter<'_>;

    /// Total stored records.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of opened sources.
    fn num_sources(&self) -> usize;

    /// Records stored for one source (0 for unknown sources).
    fn source_len(&self, source: u32) -> usize;

    /// Name a source was opened with.
    fn source_name(&self, source: u32) -> Option<&str>;

    /// Persist any buffered state (the disk backend seals its tail segment,
    /// so a subsequent snapshot carries no record payload). No-op for the
    /// memory backend.
    fn flush(&mut self) -> Result<()>;

    /// Re-attach deserialized metadata to its backing files (the disk
    /// backend re-scans its segment files and rebuilds frame offsets).
    /// Called by [`crate::EntityStore`] after snapshot restore.
    fn reopen(&mut self) -> Result<()>;

    /// Garbage-collect backing files the store no longer references (the
    /// disk backend deletes segment files absent from its committed segment
    /// index — orphans left behind by a crash between sealing and
    /// checkpoint commit). Returns the number of files deleted; the
    /// cumulative count is surfaced as
    /// [`StorageStats::segments_deleted`]. No-op for the memory backend.
    fn gc(&mut self) -> Result<u64> {
        Ok(0)
    }

    /// Rewrite sealed segment files whose live fraction fell to or below
    /// the configured threshold
    /// ([`DiskStorageConfig::compact_live_ratio`](crate::DiskStorageConfig))
    /// into fresh sealed files holding only live records, dropping
    /// fully-dead files outright. The in-memory index switches atomically;
    /// superseded files stay on disk until [`RecordStore::gc`] sweeps them,
    /// so callers persisting snapshots must commit the post-compaction
    /// index before sweeping. No-op for the memory backend.
    fn compact(&mut self) -> Result<CompactionReport> {
        Ok(CompactionReport::default())
    }

    /// Storage counters.
    fn stats(&self) -> StorageStats;

    /// Per-segment health, in segment order (empty for backends without
    /// segment files — the memory backend keeps the default).
    fn segment_stats(&self) -> Vec<SegmentStats> {
        Vec::new()
    }
}

/// The concrete storage backends, selected by
/// [`StorageConfig`](crate::StorageConfig).
// One store embeds exactly one backend, so the size gap between the two
// variants buys nothing by boxing (and the vendored serde stand-in has no
// `Box` support).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecordStorage {
    /// Fully resident storage.
    Mem(MemRecordStore),
    /// Spill-to-disk segment storage.
    Disk(SegmentRecordStore),
}

impl RecordStorage {
    /// Build the backend named by `config` for embeddings of width `dim`.
    pub fn new(config: &StorageConfig, dim: usize) -> Result<Self> {
        Ok(match config {
            StorageConfig::Memory => RecordStorage::Mem(MemRecordStore::new(dim)),
            StorageConfig::Disk(disk) => {
                RecordStorage::Disk(SegmentRecordStore::create(disk.clone(), dim)?)
            }
        })
    }
}

macro_rules! delegate {
    ($self:ident, $store:ident => $body:expr) => {
        match $self {
            RecordStorage::Mem($store) => $body,
            RecordStorage::Disk($store) => $body,
        }
    };
}

impl RecordStore for RecordStorage {
    fn dim(&self) -> usize {
        delegate!(self, s => s.dim())
    }

    fn open_source(&mut self, name: &str) -> u32 {
        delegate!(self, s => s.open_source(name))
    }

    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId> {
        delegate!(self, s => s.append(source, record, embedding))
    }

    fn get(&self, id: EntityId) -> Option<Record> {
        delegate!(self, s => s.get(id))
    }

    fn embedding(&self, id: EntityId) -> Option<Vec<f32>> {
        delegate!(self, s => s.embedding(id))
    }

    fn delete(&mut self, id: EntityId) -> Result<bool> {
        delegate!(self, s => s.delete(id))
    }

    fn iter(&self) -> RecordIter<'_> {
        delegate!(self, s => s.iter())
    }

    fn len(&self) -> usize {
        delegate!(self, s => s.len())
    }

    fn num_sources(&self) -> usize {
        delegate!(self, s => s.num_sources())
    }

    fn source_len(&self, source: u32) -> usize {
        delegate!(self, s => s.source_len(source))
    }

    fn source_name(&self, source: u32) -> Option<&str> {
        delegate!(self, s => s.source_name(source))
    }

    fn flush(&mut self) -> Result<()> {
        delegate!(self, s => s.flush())
    }

    fn reopen(&mut self) -> Result<()> {
        delegate!(self, s => s.reopen())
    }

    fn gc(&mut self) -> Result<u64> {
        delegate!(self, s => s.gc())
    }

    fn compact(&mut self) -> Result<CompactionReport> {
        delegate!(self, s => s.compact())
    }

    fn stats(&self) -> StorageStats {
        delegate!(self, s => s.stats())
    }

    fn segment_stats(&self) -> Vec<SegmentStats> {
        delegate!(self, s => s.segment_stats())
    }
}

/// Approximate heap footprint of one record's values (used by both backends
/// for resident-byte accounting).
pub(crate) fn record_heap_bytes(record: &Record) -> usize {
    let mut bytes = std::mem::size_of::<Record>();
    for v in record.values() {
        bytes += std::mem::size_of_val(v);
        if let Some(t) = v.as_text() {
            bytes += t.len();
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskStorageConfig;
    use multiem_table::Value;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "multiem-storage-test-{}-{}-{tag}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: usize) -> Record {
        Record::new(vec![
            Value::Text(format!("item number {i}")),
            Value::Number(i as f64),
            Value::Null,
        ])
    }

    fn embedding(i: usize, dim: usize) -> Vec<f32> {
        (0..dim).map(|d| (i * 31 + d) as f32 * 0.25).collect()
    }

    fn exercise(store: &mut dyn RecordStore, n: usize) {
        let dim = store.dim();
        let a = store.open_source("alpha");
        let b = store.open_source("beta");
        for i in 0..n {
            let source = if i % 3 == 0 { b } else { a };
            let id = store
                .append(source, &record(i), &embedding(i, dim))
                .unwrap();
            assert_eq!(id.source, source);
        }
        assert_eq!(store.len(), n);
        assert_eq!(store.num_sources(), 2);
        assert_eq!(store.source_len(a) + store.source_len(b), n);
        assert_eq!(store.source_name(b), Some("beta"));
        assert_eq!(store.source_name(9), None);
    }

    fn verify(store: &dyn RecordStore, n: usize) {
        let dim = store.dim();
        // Reconstruct the expected (source, row) assignment.
        let mut rows = [0u32; 2];
        for i in 0..n {
            let source = u32::from(i % 3 == 0);
            let id = EntityId::new(source, rows[source as usize]);
            rows[source as usize] += 1;
            assert_eq!(store.get(id), Some(record(i)), "record {i}");
            assert_eq!(
                store.embedding(id),
                Some(embedding(i, dim)),
                "embedding {i}"
            );
        }
        assert_eq!(store.get(EntityId::new(5, 0)), None);
        assert_eq!(store.embedding(EntityId::new(0, u32::MAX)), None);
        // Iteration covers everything in append order.
        let all: Vec<(EntityId, Record)> = store.iter().collect();
        assert_eq!(all.len(), n);
        for (i, (_, r)) in all.iter().enumerate() {
            assert_eq!(r, &record(i));
        }
    }

    #[test]
    fn memory_backend_roundtrips() {
        let mut store = MemRecordStore::new(4);
        exercise(&mut store, 40);
        verify(&store, 40);
        let stats = store.stats();
        assert_eq!(stats.backend, "memory");
        assert_eq!(stats.records, 40);
        assert_eq!(stats.resident_records, 40);
        assert_eq!(stats.spilled_records, 0);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn disk_backend_roundtrips_and_spills() {
        let dir = temp_dir("roundtrip");
        let config = DiskStorageConfig {
            segment_records: 8,
            cache_records: 6,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 40);
        verify(&store, 40);
        let stats = store.stats();
        assert_eq!(stats.backend, "disk");
        assert_eq!(stats.records, 40);
        assert_eq!(stats.segments, 5, "40 appends at 8/segment seal 5 files");
        assert_eq!(stats.spilled_records, 40);
        assert!(stats.spilled_bytes > 0);
        assert!(
            stats.resident_records <= 6,
            "resident records bounded by the cache: {stats:?}"
        );
        assert!(stats.cache_hits + stats.cache_misses > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backend_flush_seals_partial_tail() {
        let dir = temp_dir("flush");
        let config = DiskStorageConfig {
            segment_records: 100,
            cache_records: 4,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 10);
        assert_eq!(store.stats().segments, 0, "tail not yet sealed");
        store.flush().unwrap();
        assert_eq!(store.stats().segments, 1);
        assert_eq!(store.stats().spilled_records, 10);
        // Appends continue into a fresh tail; mixed segment sizes resolve.
        exercise_more(&mut store, 10, 5);
        store.flush().unwrap();
        assert_eq!(store.stats().segments, 2);
        verify(&store, 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Append records `n..n + extra` following the `exercise` routing.
    fn exercise_more(store: &mut dyn RecordStore, n: usize, extra: usize) {
        let dim = store.dim();
        for i in n..n + extra {
            let source = u32::from(i % 3 == 0);
            store
                .append(source, &record(i), &embedding(i, dim))
                .unwrap();
        }
    }

    #[test]
    fn disk_backend_survives_serde_reopen() {
        let dir = temp_dir("reopen");
        let config = DiskStorageConfig {
            segment_records: 7,
            cache_records: 8,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 30);

        // Serialize metadata + unsealed tail, as a snapshot would.
        let value = serde::Serialize::to_value(&store);
        let mut reopened: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        reopened.reopen().unwrap();
        verify(&reopened, 30);
        assert_eq!(reopened.stats().segments, store.stats().segments);

        // The reopened store keeps appending where the original left off.
        exercise_more(&mut reopened, 30, 12);
        verify(&reopened, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backend_reopen_rejects_missing_or_corrupt_segments() {
        let dir = temp_dir("corrupt");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 10);
        let value = serde::Serialize::to_value(&store);

        // Truncate one segment file: reopen must fail loudly.
        let seg = dir.join("seg-000001.seg");
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let mut broken: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        assert!(broken.reopen().is_err());

        // A missing file fails too.
        std::fs::remove_file(&seg).unwrap();
        let mut missing: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        assert!(missing.reopen().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_deletes_only_unreferenced_segment_files() {
        let dir = temp_dir("gc");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 4,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 12); // seals seg-000000 and seg-000001
        let sealed = store.stats().segments;
        assert_eq!(sealed, 2);

        // Orphans a crash between sealing and checkpoint commit could
        // leave: a segment beyond the index and an interrupted seal's tmp.
        std::fs::write(dir.join("seg-000042.seg"), b"orphan").unwrap();
        std::fs::write(dir.join("seg-000007.tmp"), b"torn seal").unwrap();
        // Foreign files are not ours to delete.
        std::fs::write(dir.join("NOTES.md"), b"keep").unwrap();

        assert_eq!(store.gc().unwrap(), 2);
        assert!(!dir.join("seg-000042.seg").exists());
        assert!(!dir.join("seg-000007.tmp").exists());
        assert!(dir.join("NOTES.md").exists());
        // Referenced segments survive and still serve reads.
        verify(&store, 12);
        let stats = store.stats();
        assert_eq!(stats.segments, sealed);
        assert_eq!(stats.segments_deleted, 2, "cumulative counter");
        // A second pass finds nothing.
        assert_eq!(store.gc().unwrap(), 0);
        assert_eq!(store.stats().segments_deleted, 2);

        // The memory backend's gc is a no-op.
        let mut mem = MemRecordStore::new(4);
        assert_eq!(mem.gc().unwrap(), 0);
        assert_eq!(mem.stats().segments_deleted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The `(append index, id)` pairs of the `exercise` routing.
    fn exercise_ids(n: usize) -> Vec<EntityId> {
        let mut rows = [0u32; 2];
        (0..n)
            .map(|i| {
                let source = u32::from(i % 3 == 0);
                let id = EntityId::new(source, rows[source as usize]);
                rows[source as usize] += 1;
                id
            })
            .collect()
    }

    /// Delete every even-indexed append of an `exercise(store, n)` run.
    fn delete_evens(store: &mut dyn RecordStore, n: usize) {
        for (i, id) in exercise_ids(n).iter().enumerate() {
            if i % 2 == 0 {
                assert!(store.delete(*id).unwrap(), "delete {i}");
                assert!(!store.delete(*id).unwrap(), "idempotent {i}");
            }
        }
        assert!(
            !store.delete(EntityId::new(7, 0)).unwrap(),
            "unknown source"
        );
        assert!(
            !store.delete(EntityId::new(0, u32::MAX)).unwrap(),
            "unknown row"
        );
    }

    /// Read-only verification after [`delete_evens`]: deleted lookups go
    /// `None`, survivors read back exact, iteration skips the dead.
    fn verify_deleted(store: &dyn RecordStore, n: usize) {
        let ids = exercise_ids(n);
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(store.get(*id), None, "deleted record {i} readable");
                assert_eq!(store.embedding(*id), None);
            } else {
                assert_eq!(store.get(*id), Some(record(i)), "survivor {i}");
                assert_eq!(store.embedding(*id), Some(embedding(i, store.dim())));
            }
        }
        let live: Vec<(EntityId, Record)> = store.iter().collect();
        assert_eq!(live.len(), n - n.div_ceil(2), "iter yields only live");
        assert!(live.iter().all(|(id, _)| ids
            .iter()
            .enumerate()
            .any(|(i, known)| known == id && i % 2 == 1)));
        let stats = store.stats();
        assert_eq!(stats.records, n, "append count never shrinks");
        assert_eq!(stats.deleted_records, n.div_ceil(2));
    }

    /// [`delete_evens`] + [`verify_deleted`].
    fn exercise_delete(store: &mut dyn RecordStore, n: usize) {
        delete_evens(store, n);
        verify_deleted(store, n);
    }

    #[test]
    fn memory_backend_deletes_and_frees() {
        let mut store = MemRecordStore::new(4);
        exercise(&mut store, 20);
        let bytes_before = store.stats().resident_bytes;
        exercise_delete(&mut store, 20);
        assert!(
            store.stats().resident_bytes < bytes_before,
            "deletes must free record payload in place"
        );
    }

    #[test]
    fn disk_backend_deletes_across_tail_and_sealed() {
        let dir = temp_dir("delete");
        let config = DiskStorageConfig {
            segment_records: 6,
            cache_records: 4,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 20); // 3 sealed segments + 2 in the tail
        exercise_delete(&mut store, 20);

        // Serde + reopen keeps the tombstones.
        let value = serde::Serialize::to_value(&store);
        let mut reopened: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        reopened.reopen().unwrap();
        let stats = reopened.stats();
        assert_eq!(stats.deleted_records, 10);
        assert_eq!(reopened.iter().count(), 10);
        // Appends continue after deletes and a reopen.
        exercise_more(&mut reopened, 20, 4);
        assert_eq!(reopened.stats().records, 24);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rewrites_hollow_segments_and_reclaims_bytes() {
        let dir = temp_dir("compact");
        let config = DiskStorageConfig {
            segment_records: 4,
            cache_records: 0,
            compact_live_ratio: 0.6,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 16); // 4 sealed segments of 4
        let before = store.stats();
        assert_eq!(before.segments, 4);

        // Nothing dead: compaction is a no-op.
        let report = store.compact().unwrap();
        assert_eq!(report, CompactionReport::default());

        // Delete half of every segment (alternating append order).
        exercise_delete(&mut store, 16);
        let report = store.compact().unwrap();
        assert_eq!(report.segments_compacted, 4, "all segments were half dead");
        assert!(report.reclaimed_bytes > 0);
        let after = store.stats();
        assert_eq!(after.compactions, 4);
        assert_eq!(after.reclaimed_bytes, report.reclaimed_bytes);
        assert!(
            after.spilled_bytes * 10 <= before.spilled_bytes * 6,
            "half the records deleted must reclaim ~half the bytes \
             ({} -> {})",
            before.spilled_bytes,
            after.spilled_bytes
        );
        // The merged run packs 8 survivors into 2 files of 4.
        assert_eq!(after.segments, 2);
        assert_eq!(after.spilled_records, 8);

        // Reads still come back exact after the rewrite...
        verify_deleted(&store, 16);
        // ...and GC sweeps exactly the superseded files.
        let swept = store.gc().unwrap();
        assert_eq!(swept, 4, "four original files replaced by two");
        verify_deleted(&store, 16);

        // A snapshot taken after compaction reopens cleanly (sparse
        // segment index survives serde).
        let value = serde::Serialize::to_value(&store);
        let mut reopened: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        reopened.reopen().unwrap();
        verify_deleted(&reopened, 16);
        let restored = reopened.stats();
        assert_eq!(restored.compactions, 4, "compaction counter persisted");
        assert_eq!(restored.segments_deleted, 4, "gc counter persisted");
        assert_eq!(restored.reclaimed_bytes, after.reclaimed_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_refuses_an_index_missing_a_live_segment() {
        // A snapshot whose segment list lost an entry while the sequence
        // map still marks those records live must fail restore loudly —
        // accepting it would defer the damage to a panic on first read.
        let dir = temp_dir("lost-segment");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 10); // two sealed segments
        let mut value = serde::Serialize::to_value(&store);
        if let serde::Value::Map(entries) = &mut value {
            for (key, field) in entries.iter_mut() {
                if key == "segments" {
                    if let serde::Value::Seq(segments) = field {
                        segments.pop();
                    }
                }
            }
        }
        let mut broken: SegmentRecordStore = serde::Deserialize::from_value(&value).unwrap();
        let err = broken.reopen();
        assert!(err.is_err(), "truncated segment index must be refused");
        assert!(
            format!("{}", err.unwrap_err()).contains("not covered"),
            "error should name the uncovered sequence"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_dead_segments_vanish_without_successor() {
        let dir = temp_dir("all-dead");
        let config = DiskStorageConfig {
            segment_records: 5,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        let source = store.open_source("only");
        for i in 0..10 {
            store.append(source, &record(i), &embedding(i, 4)).unwrap();
        }
        // Kill the entire first segment (rows 0..5).
        for row in 0..5 {
            assert!(store.delete(EntityId::new(source, row)).unwrap());
        }
        let report = store.compact().unwrap();
        assert_eq!(report.segments_compacted, 1);
        assert_eq!(report.segments_written, 0, "no survivors, no new file");
        let stats = store.stats();
        assert_eq!(stats.segments, 1, "only the live segment remains");
        store.gc().unwrap();
        // Survivors read fine; the second segment is untouched.
        for row in 5..10 {
            assert_eq!(
                store.get(EntityId::new(source, row)),
                Some(record(row as usize))
            );
        }
        // Deleting a tail record and sealing skips the dead entry.
        for i in 10..13 {
            store.append(source, &record(i), &embedding(i, 4)).unwrap();
        }
        assert!(store.delete(EntityId::new(source, 11)).unwrap());
        store.flush().unwrap();
        assert_eq!(store.get(EntityId::new(source, 11)), None);
        assert_eq!(
            store.get(EntityId::new(source, 12)),
            Some(record(12)),
            "live tail record survives a seal that skipped a dead one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_capacity_cache_still_reads_correctly() {
        let dir = temp_dir("nocache");
        let config = DiskStorageConfig {
            segment_records: 4,
            cache_records: 0,
            ..DiskStorageConfig::new(dir.display().to_string())
        };
        let mut store = SegmentRecordStore::create(config, 4).unwrap();
        exercise(&mut store, 20);
        verify(&store, 20);
        let stats = store.stats();
        assert_eq!(stats.cache_hits, 0, "cache disabled");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enum_dispatch_matches_config() {
        let mem = RecordStorage::new(&StorageConfig::Memory, 3).unwrap();
        assert_eq!(mem.stats().backend, "memory");
        let dir = temp_dir("enum");
        let disk = RecordStorage::new(
            &StorageConfig::Disk(DiskStorageConfig::new(dir.display().to_string())),
            3,
        )
        .unwrap();
        assert_eq!(disk.stats().backend, "disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
