//! The spill-to-disk segment record store.
//!
//! Appends accumulate in an in-memory *tail*; once the tail reaches
//! `segment_records` entries (or [`RecordStore::flush`] runs, e.g. at a
//! serving-layer checkpoint) it is *sealed*: encoded as a run of CRC32
//! frames ([`crate::wire`], the same framing the WAL and binary snapshots
//! use) and published atomically as `seg-NNNNNN.seg` under the configured
//! directory. Sealed segments are immutable; the only resident state they
//! keep is per-frame offsets (8 bytes/record) plus whatever a bounded,
//! two-generation hot cache holds.
//!
//! One frame holds one record: the serde value tree of the [`Record`]
//! (binary value codec) followed by the raw little-endian `f32` embedding.
//! A read miss seeks straight to the frame offset, verifies the CRC and
//! decodes one record — no segment-wide scan.
//!
//! # Deletion and compaction
//!
//! [`RecordStore::delete`] tombstones a record by re-pointing its row in
//! the per-source sequence map at a sentinel — the frame itself stays in
//! its immutable segment file, and the segment's `dead` counter tracks how
//! many of its frames are pinned garbage. Once a segment's live fraction
//! drops to the configured `compact_live_ratio`,
//! [`RecordStore::compact`] rewrites it: consecutive runs of compactable
//! segments are merged into fresh sealed files holding only live frames
//! (fully-dead segments vanish without a successor). A rewritten segment
//! is *sparse* — it records the global sequence of each surviving frame —
//! so point reads keep seeking by sequence. Superseded files are left on
//! disk for [`RecordStore::gc`] so a snapshot referencing the old index
//! stays restorable until the new index is durably committed.
//!
//! Serialization (for snapshots) carries the segment *index* — file names,
//! sequence coverage, sizes, dead counts — and the unsealed tail, **not**
//! the sealed payload: a checkpoint of a disk-backed store is a delta, it
//! re-ships only what changed since the segments were sealed.
//! [`RecordStore::reopen`] re-attaches the deserialized index to the files,
//! re-scanning frame headers to rebuild offsets and refusing to open
//! missing or size-mismatched segments.
//!
//! Durability contract: sealed segments survive the process; tail records
//! live in memory until sealed and must be covered by an external log (the
//! serving layer's WAL) or a snapshot, exactly like the memory backend.
//! One live writer per directory — concurrent writers would race on
//! segment file names.

use super::{
    record_heap_bytes, CompactionReport, RecordIter, RecordStore, SegmentStats, StorageStats,
};
use crate::config::DiskStorageConfig;
use crate::error::OnlineError;
use crate::wire::{self, Frame};
use crate::Result;
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Sentinel in the per-source sequence map marking a deleted row. (A store
/// would need 2^32 - 1 appends for a real sequence to collide with it; the
/// append path guards against that overflow.)
const TOMBSTONE_SEQ: u32 = u32::MAX;

/// Index entry of one sealed, immutable segment file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SegmentMeta {
    /// File name under the store directory (`seg-NNNNNN.seg`).
    file: String,
    /// Global append sequence of the segment's first frame.
    first_seq: u32,
    /// Frames in the file (live records at seal time; deletions since then
    /// are counted by `dead`, the frames stay put until compaction).
    records: usize,
    /// Total file size in bytes (magic + frames).
    bytes: u64,
    /// Frames tombstoned since the file was sealed.
    dead: usize,
    /// Global sequence of each frame, in file order, for segments whose
    /// frames are not contiguous (`None` = dense:
    /// `first_seq .. first_seq + records`). Compaction produces sparse
    /// segments; plain seals of an all-live tail stay dense.
    seqs: Option<Vec<u32>>,
    /// Byte offset of each frame, rebuilt by `reopen` (not persisted).
    #[serde(skip)]
    offsets: Vec<u64>,
}

impl SegmentMeta {
    /// Global sequence of frame `i`.
    fn seq_at(&self, i: usize) -> u32 {
        match &self.seqs {
            None => self.first_seq + i as u32,
            Some(seqs) => seqs[i],
        }
    }

    /// One past the last sequence this segment covers.
    fn end_seq(&self) -> u32 {
        match &self.seqs {
            None => self.first_seq + self.records as u32,
            Some(seqs) => seqs.last().copied().unwrap_or(self.first_seq) + 1,
        }
    }

    /// Index of the frame holding `seq`, if present.
    fn frame_of(&self, seq: u32) -> Option<usize> {
        match &self.seqs {
            None => {
                let i = seq.checked_sub(self.first_seq)? as usize;
                (i < self.records).then_some(i)
            }
            Some(seqs) => seqs.binary_search(&seq).ok(),
        }
    }

    /// Fraction of the file's frames still live.
    fn live_ratio(&self) -> f64 {
        (self.records - self.dead) as f64 / self.records.max(1) as f64
    }
}

/// One appended entry: source, record, embedding.
type TailEntry = (u32, Record, Vec<f32>);

/// Two-generation (segmented-LRU) cache over sealed records, keyed by
/// global append sequence. Promotion on hit, wholesale demotion of the
/// older generation once the newer one fills half the capacity.
#[derive(Debug, Default, Clone)]
struct RecordCache {
    current: HashMap<u32, (Record, Vec<f32>)>,
    previous: HashMap<u32, (Record, Vec<f32>)>,
    hits: u64,
    misses: u64,
}

impl RecordCache {
    fn get(&mut self, seq: u32) -> Option<(Record, Vec<f32>)> {
        if let Some(hit) = self.current.get(&seq) {
            self.hits += 1;
            return Some(hit.clone());
        }
        if let Some(hit) = self.previous.remove(&seq) {
            self.hits += 1;
            self.current.insert(seq, hit.clone());
            return Some(hit);
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, cap: usize, seq: u32, entry: (Record, Vec<f32>)) {
        if cap == 0 {
            return;
        }
        if self.current.len() >= cap.div_ceil(2) {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(seq, entry);
    }

    /// Drop a (deleted) sequence from both generations.
    fn remove(&mut self, seq: u32) {
        self.current.remove(&seq);
        self.previous.remove(&seq);
    }

    fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    fn approx_bytes(&self) -> usize {
        self.current
            .values()
            .chain(self.previous.values())
            .map(|(r, e)| record_heap_bytes(r) + e.len() * 4 + 16)
            .sum()
    }
}

/// Append-only segment-file storage with a bounded resident footprint,
/// tombstone deletion and live-ratio-driven compaction. See the
/// [module docs](self).
#[derive(Debug, Serialize, Deserialize)]
pub struct SegmentRecordStore {
    config: DiskStorageConfig,
    dim: usize,
    /// Source names, in open order.
    names: Vec<String>,
    /// Per-source: row -> global append sequence ([`TOMBSTONE_SEQ`] for
    /// deleted rows).
    seq_of: Vec<Vec<u32>>,
    /// Global append sequence -> id (the inverse of `seq_of` for live rows).
    entity_of_seq: Vec<EntityId>,
    /// Sealed segments, ordered by `first_seq` (coverage never overlaps).
    segments: Vec<SegmentMeta>,
    /// Sequences covered by sealed files *or* skipped as dead at seal time;
    /// the boundary between the sealed sequence space and the tail.
    sealed: usize,
    /// Name counter for the next sealed file — monotonic even as compaction
    /// retires old files, so names never collide.
    next_seg: u64,
    /// Unsealed appends (decoded, fully resident; deleted entries are
    /// emptied in place).
    tail: Vec<TailEntry>,
    /// Tombstoned entries currently in the tail.
    tail_dead: usize,
    /// Cumulative deletions (persisted).
    deleted: usize,
    /// Cumulative segment files compacted away (persisted).
    compactions: u64,
    /// Cumulative bytes reclaimed by compaction (persisted).
    reclaimed: u64,
    /// Cumulative files deleted by [`RecordStore::gc`] (persisted; the
    /// restored value lags by any sweeps after the snapshot was taken).
    gc_deleted: u64,
    /// Hot cache over sealed records; interior-mutable so reads stay
    /// `&self` (the entity store serves reads under shared locks). Not part
    /// of the persisted state.
    #[serde(skip)]
    cache: Mutex<RecordCache>,
}

impl Clone for SegmentRecordStore {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            dim: self.dim,
            names: self.names.clone(),
            seq_of: self.seq_of.clone(),
            entity_of_seq: self.entity_of_seq.clone(),
            segments: self.segments.clone(),
            sealed: self.sealed,
            next_seg: self.next_seg,
            tail: self.tail.clone(),
            tail_dead: self.tail_dead,
            deleted: self.deleted,
            compactions: self.compactions,
            reclaimed: self.reclaimed,
            gc_deleted: self.gc_deleted,
            cache: Mutex::new(self.cache.lock().expect("cache lock poisoned").clone()),
        }
    }
}

impl SegmentRecordStore {
    /// Create (or reuse) the segment directory and start an empty store.
    pub fn create(config: DiskStorageConfig, dim: usize) -> Result<Self> {
        std::fs::create_dir_all(&config.dir).map_err(|e| {
            OnlineError::Storage(format!("cannot create segment dir `{}`: {e}", config.dir))
        })?;
        Ok(Self {
            config,
            dim,
            names: Vec::new(),
            seq_of: Vec::new(),
            entity_of_seq: Vec::new(),
            segments: Vec::new(),
            sealed: 0,
            next_seg: 0,
            tail: Vec::new(),
            tail_dead: 0,
            deleted: 0,
            compactions: 0,
            reclaimed: 0,
            gc_deleted: 0,
            cache: Mutex::new(RecordCache::default()),
        })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        Path::new(&self.config.dir)
    }

    fn path_of(&self, meta: &SegmentMeta) -> PathBuf {
        self.dir().join(&meta.file)
    }

    /// Whether the record appended as `seq` is still live (its row in the
    /// per-source map still points back at it).
    fn is_live(&self, seq: u32) -> bool {
        let id = self.entity_of_seq[seq as usize];
        self.seq_of[id.source as usize][id.row as usize] == seq
    }

    /// Encode one frame payload: record value tree + raw f32 embedding.
    fn encode_entry(record: &Record, embedding: &[f32]) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::write_value(&mut payload, &serde::Serialize::to_value(record));
        for x in embedding {
            payload.extend_from_slice(&x.to_le_bytes());
        }
        payload
    }

    fn decode_entry(payload: &[u8], dim: usize) -> Result<(Record, Vec<f32>)> {
        let mut pos = 0;
        let value = wire::read_value_at(payload, &mut pos)
            .map_err(|e| OnlineError::Storage(format!("corrupt segment record: {e}")))?;
        let record: Record = serde::Deserialize::from_value(&value)
            .map_err(|e| OnlineError::Storage(format!("corrupt segment record: {e}")))?;
        let raw = &payload[pos..];
        if raw.len() != dim * 4 {
            return Err(OnlineError::Storage(format!(
                "segment record carries {} embedding bytes, expected {}",
                raw.len(),
                dim * 4
            )));
        }
        let embedding = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();
        Ok((record, embedding))
    }

    /// Seal `entries` (sequence-ordered live records, not borrowing `self`)
    /// into a fresh segment file and advance the name counter. Used by the
    /// compaction path; `seal` drives [`write_segment_file`] directly so its
    /// entries can borrow the tail without cloning payloads.
    fn seal_entries(&mut self, entries: &[(u32, &Record, &[f32])]) -> Result<SegmentMeta> {
        let file = format!("seg-{:06}.seg", self.next_seg);
        let meta = write_segment_file(self.dir(), file, entries)?;
        self.next_seg += 1;
        Ok(meta)
    }

    /// Seal the tail. Dead tail entries are skipped (their sequences are
    /// simply never covered by a file); an all-dead tail just advances the
    /// sealed boundary.
    fn seal(&mut self) -> Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let covered = self.tail.len();
        let first_seq = self.sealed as u32;
        let live_flags: Vec<bool> = (0..covered)
            .map(|i| self.is_live(first_seq + i as u32))
            .collect();
        // Build the frame list as references into the tail — sealing must
        // not clone every record and embedding on the ingest hot path.
        let meta = if live_flags.iter().any(|&live| live) {
            let entries: Vec<(u32, &Record, &[f32])> = self
                .tail
                .iter()
                .enumerate()
                .filter(|&(i, _)| live_flags[i])
                .map(|(i, (_, record, embedding))| {
                    (first_seq + i as u32, record, embedding.as_slice())
                })
                .collect();
            let file = format!("seg-{:06}.seg", self.next_seg);
            Some(write_segment_file(self.dir(), file, &entries)?)
        } else {
            None
        };
        if let Some(meta) = meta {
            self.next_seg += 1;
            self.segments.push(meta);
        }
        // Freshly sealed records stay hot: demote them into the cache so
        // reads right after a seal (pruning of recent clusters) stay cheap
        // (moved, not cloned — the tail is done with them).
        {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            for (i, (_, record, embedding)) in self.tail.drain(..).enumerate() {
                if live_flags[i] {
                    cache.insert(
                        self.config.cache_records,
                        first_seq + i as u32,
                        (record, embedding),
                    );
                }
            }
        }
        self.sealed += covered;
        self.tail_dead = 0;
        Ok(())
    }

    /// The global append sequence of `id`, if stored and live.
    fn seq(&self, id: EntityId) -> Option<u32> {
        let seq = *self.seq_of.get(id.source as usize)?.get(id.row as usize)?;
        (seq != TOMBSTONE_SEQ).then_some(seq)
    }

    /// Index of the sealed segment covering `seq` (callers guarantee the
    /// sequence is live and sealed, so a covering segment exists).
    fn segment_index_of(&self, seq: u32) -> usize {
        self.segments
            .partition_point(|m| m.first_seq <= seq)
            .checked_sub(1)
            .expect("sealed sequence below first segment")
    }

    /// Read one sealed record straight from its segment file.
    ///
    /// # Panics
    /// Panics when the segment file vanished or fails its CRC at runtime —
    /// the same contract as a poisoned lock: the store's backing state was
    /// corrupted out from under it. (`reopen` reports such damage as a
    /// recoverable error instead.)
    fn read_sealed(&self, seq: u32) -> (Record, Vec<f32>) {
        let meta = &self.segments[self.segment_index_of(seq)];
        let frame = meta
            .frame_of(seq)
            .unwrap_or_else(|| panic!("live sealed sequence {seq} missing from segment index"));
        let offset = meta.offsets[frame];
        let path = self.path_of(meta);
        let entry = (|| -> Result<(Record, Vec<f32>)> {
            let mut file = std::fs::File::open(&path)
                .map_err(|e| OnlineError::Storage(format!("open failed: {e}")))?;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| OnlineError::Storage(format!("seek failed: {e}")))?;
            match wire::read_frame(&mut file)
                .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?
            {
                Frame::Payload(payload) => Self::decode_entry(&payload, self.dim),
                _ => Err(OnlineError::Storage(
                    "frame truncated or failed its checksum".into(),
                )),
            }
        })();
        match entry {
            Ok(entry) => entry,
            Err(e) => panic!(
                "segment `{}` corrupted at offset {offset}: {e}",
                path.display()
            ),
        }
    }

    /// Cache-through lookup of any stored live sequence.
    fn entry(&self, seq: u32) -> (Record, Vec<f32>) {
        if (seq as usize) >= self.sealed {
            let (_, record, embedding) = &self.tail[seq as usize - self.sealed];
            return (record.clone(), embedding.clone());
        }
        {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            if let Some(hit) = cache.get(seq) {
                return hit;
            }
        }
        let entry = self.read_sealed(seq);
        self.cache.lock().expect("cache lock poisoned").insert(
            self.config.cache_records,
            seq,
            entry.clone(),
        );
        entry
    }

    /// Decode a whole segment file sequentially (bulk iteration and
    /// compaction path).
    fn read_segment(&self, meta: &SegmentMeta) -> Vec<(Record, Vec<f32>)> {
        let path = self.path_of(meta);
        let decode = (|| -> Result<Vec<(Record, Vec<f32>)>> {
            let file = std::fs::File::open(&path)
                .map_err(|e| OnlineError::Storage(format!("open failed: {e}")))?;
            let mut reader = BufReader::new(file);
            let mut magic = [0u8; 4];
            reader
                .read_exact(&mut magic)
                .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?;
            if &magic != wire::SEGMENT_MAGIC {
                return Err(OnlineError::Storage("bad segment magic".into()));
            }
            let mut out = Vec::with_capacity(meta.records);
            for _ in 0..meta.records {
                match wire::read_frame(&mut reader)
                    .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?
                {
                    Frame::Payload(payload) => out.push(Self::decode_entry(&payload, self.dim)?),
                    _ => {
                        return Err(OnlineError::Storage(
                            "frame truncated or failed its checksum".into(),
                        ))
                    }
                }
            }
            Ok(out)
        })();
        match decode {
            Ok(out) => out,
            Err(e) => panic!("segment `{}` corrupted: {e}", path.display()),
        }
    }
}

/// Encode `entries` (sequence-ordered live records) as one segment file and
/// publish it atomically under `dir` as `file` (tmp + rename; the file is
/// fsynced before publication so a manifest that later references it cannot
/// outlive its contents). Returns the index entry for the new file.
fn write_segment_file(
    dir: &Path,
    file: String,
    entries: &[(u32, &Record, &[f32])],
) -> Result<SegmentMeta> {
    debug_assert!(!entries.is_empty());
    let mut buf = Vec::from(*wire::SEGMENT_MAGIC);
    let mut offsets = Vec::with_capacity(entries.len());
    for (_, record, embedding) in entries {
        offsets.push(buf.len() as u64);
        let payload = SegmentRecordStore::encode_entry(record, embedding);
        wire::write_frame(&mut buf, &payload)
            .map_err(|e| OnlineError::Storage(format!("segment encode failed: {e}")))?;
    }

    let path = dir.join(&file);
    let tmp = path.with_extension("tmp");
    let publish = (|| -> std::io::Result<()> {
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    })();
    publish.map_err(|e| {
        OnlineError::Storage(format!("cannot seal segment `{}`: {e}", path.display()))
    })?;

    let first_seq = entries[0].0;
    let dense = entries
        .last()
        .expect("entries not empty")
        .0
        .checked_sub(first_seq)
        .map(|span| span as usize + 1 == entries.len())
        .unwrap_or(false);
    Ok(SegmentMeta {
        file,
        first_seq,
        records: entries.len(),
        bytes: buf.len() as u64,
        dead: 0,
        seqs: if dense {
            None
        } else {
            Some(entries.iter().map(|&(seq, _, _)| seq).collect())
        },
        offsets,
    })
}

impl RecordStore for SegmentRecordStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn open_source(&mut self, name: &str) -> u32 {
        self.names.push(name.to_string());
        self.seq_of.push(Vec::new());
        (self.seq_of.len() - 1) as u32
    }

    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId> {
        assert_eq!(embedding.len(), self.dim, "embedding width mismatch");
        let seq = self.entity_of_seq.len() as u32;
        assert!(seq < TOMBSTONE_SEQ, "sequence space exhausted");
        let row = self.seq_of[source as usize].len() as u32;
        let id = EntityId::new(source, row);
        self.seq_of[source as usize].push(seq);
        self.entity_of_seq.push(id);
        self.tail.push((source, record.clone(), embedding.to_vec()));
        if self.tail.len() >= self.config.segment_records {
            self.seal()?;
        }
        Ok(id)
    }

    fn get(&self, id: EntityId) -> Option<Record> {
        Some(self.entry(self.seq(id)?).0)
    }

    fn embedding(&self, id: EntityId) -> Option<Vec<f32>> {
        Some(self.entry(self.seq(id)?).1)
    }

    fn delete(&mut self, id: EntityId) -> Result<bool> {
        let Some(seq) = self.seq(id) else {
            return Ok(false);
        };
        self.seq_of[id.source as usize][id.row as usize] = TOMBSTONE_SEQ;
        if (seq as usize) < self.sealed {
            let idx = self.segment_index_of(seq);
            debug_assert!(self.segments[idx].frame_of(seq).is_some());
            self.segments[idx].dead += 1;
            self.cache.lock().expect("cache lock poisoned").remove(seq);
        } else {
            // Free the tail payload in place; the slot keeps the sequence
            // space aligned until the next seal skips it.
            self.tail[seq as usize - self.sealed] =
                (id.source, Record::new(Vec::new()), Vec::new());
            self.tail_dead += 1;
        }
        self.deleted += 1;
        Ok(true)
    }

    fn iter(&self) -> RecordIter<'_> {
        let sealed = self.segments.iter().flat_map(move |meta| {
            self.read_segment(meta)
                .into_iter()
                .enumerate()
                .filter_map(move |(i, (record, _))| {
                    let seq = meta.seq_at(i);
                    self.is_live(seq)
                        .then(|| (self.entity_of_seq[seq as usize], record))
                })
        });
        let tail = self
            .tail
            .iter()
            .enumerate()
            .filter(move |&(i, _)| self.is_live((self.sealed + i) as u32))
            .map(move |(i, (_, record, _))| (self.entity_of_seq[self.sealed + i], record.clone()));
        Box::new(sealed.chain(tail))
    }

    fn len(&self) -> usize {
        self.entity_of_seq.len()
    }

    fn num_sources(&self) -> usize {
        self.seq_of.len()
    }

    fn source_len(&self, source: u32) -> usize {
        self.seq_of.get(source as usize).map_or(0, Vec::len)
    }

    fn source_name(&self, source: u32) -> Option<&str> {
        self.names.get(source as usize).map(String::as_str)
    }

    fn flush(&mut self) -> Result<()> {
        self.seal()
    }

    fn reopen(&mut self) -> Result<()> {
        let mut previous_end = 0u32;
        for meta in &mut self.segments {
            let path = Path::new(&self.config.dir).join(&meta.file);
            let file = std::fs::File::open(&path).map_err(|e| {
                OnlineError::Storage(format!("segment `{}` missing: {e}", path.display()))
            })?;
            let actual = file
                .metadata()
                .map_err(|e| {
                    OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
                })?
                .len();
            if actual != meta.bytes {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` is {actual} bytes on disk, index says {}",
                    path.display(),
                    meta.bytes
                )));
            }
            let mut reader = BufReader::new(file);
            let mut magic = [0u8; 4];
            reader.read_exact(&mut magic).map_err(|e| {
                OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
            })?;
            if &magic != wire::SEGMENT_MAGIC {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` has a bad magic header",
                    path.display()
                )));
            }
            // Walk frame headers only, collecting offsets without decoding
            // payloads; a short file or length mismatch is refused here so
            // runtime reads never land mid-frame.
            let mut offsets = Vec::with_capacity(meta.records);
            let mut pos = 4u64;
            for i in 0..meta.records {
                let mut header = [0u8; wire::FRAME_HEADER_BYTES];
                reader.read_exact(&mut header).map_err(|_| {
                    OnlineError::Storage(format!(
                        "segment `{}` truncated at record {i}",
                        path.display()
                    ))
                })?;
                let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as u64;
                offsets.push(pos);
                pos += wire::FRAME_HEADER_BYTES as u64 + len;
                reader.seek(SeekFrom::Start(pos)).map_err(|e| {
                    OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
                })?;
            }
            if pos != meta.bytes {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` is {pos} bytes, index says {}",
                    path.display(),
                    meta.bytes
                )));
            }
            if let Some(seqs) = &meta.seqs {
                let sorted = seqs.windows(2).all(|w| w[0] < w[1]);
                if seqs.len() != meta.records || !sorted || seqs.first() != Some(&meta.first_seq) {
                    return Err(OnlineError::Storage(format!(
                        "segment `{}` carries an inconsistent sparse sequence index",
                        path.display()
                    )));
                }
            }
            // Coverage must be ordered and non-overlapping; deletion gaps
            // between segments are legal.
            if meta.first_seq < previous_end {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` starts at sequence {}, overlapping coverage up to \
                     {previous_end}",
                    path.display(),
                    meta.first_seq
                )));
            }
            previous_end = meta.end_seq();
            meta.offsets = offsets;
        }
        if previous_end as usize > self.sealed {
            return Err(OnlineError::Storage(format!(
                "segment index covers sequences up to {previous_end}, past the sealed \
                 boundary {}",
                self.sealed
            )));
        }
        if self.sealed + self.tail.len() != self.entity_of_seq.len() {
            return Err(OnlineError::Storage(format!(
                "sealed boundary {} plus {} tail records disagrees with {} appends",
                self.sealed,
                self.tail.len(),
                self.entity_of_seq.len()
            )));
        }
        // Every *live* sealed sequence must be covered by some segment
        // frame: a snapshot whose segment list lost an entry (but whose
        // sequence map still marks those records live) must be refused here
        // — `read_sealed` panics on the same damage at serving time.
        for rows in &self.seq_of {
            for &seq in rows {
                if seq == TOMBSTONE_SEQ || seq as usize >= self.sealed {
                    continue;
                }
                let covered = self
                    .segments
                    .partition_point(|m| m.first_seq <= seq)
                    .checked_sub(1)
                    .and_then(|idx| self.segments[idx].frame_of(seq))
                    .is_some();
                if !covered {
                    return Err(OnlineError::Storage(format!(
                        "live sealed sequence {seq} is not covered by any segment in the \
                         index"
                    )));
                }
            }
        }
        self.cache = Mutex::new(RecordCache::default());
        Ok(())
    }

    fn gc(&mut self) -> Result<u64> {
        let entries = std::fs::read_dir(self.dir()).map_err(|e| {
            OnlineError::Storage(format!(
                "cannot list segment dir `{}`: {e}",
                self.config.dir
            ))
        })?;
        let mut deleted = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            // Only touch files this store's naming scheme produced: sealed
            // segments and the tmp files of interrupted seals. Anything
            // else in the directory is not ours to delete.
            let ours =
                name.starts_with("seg-") && (name.ends_with(".seg") || name.ends_with(".tmp"));
            if !ours || self.segments.iter().any(|meta| meta.file == name) {
                continue;
            }
            std::fs::remove_file(entry.path()).map_err(|e| {
                OnlineError::Storage(format!("cannot delete orphaned segment `{name}`: {e}"))
            })?;
            deleted += 1;
        }
        self.gc_deleted += deleted;
        Ok(deleted)
    }

    fn compact(&mut self) -> Result<CompactionReport> {
        let threshold = self.config.compact_live_ratio;
        let compactable: Vec<bool> = self
            .segments
            .iter()
            .map(|meta| meta.dead > 0 && meta.live_ratio() <= threshold)
            .collect();
        if !compactable.iter().any(|&c| c) {
            return Ok(CompactionReport::default());
        }

        // Rebuild the whole index first and swap it in at the end: an I/O
        // error mid-pass leaves the current index (and its files) intact,
        // and any files the failed pass already sealed become gc-able
        // orphans.
        let mut report = CompactionReport::default();
        let mut rebuilt: Vec<SegmentMeta> = Vec::with_capacity(self.segments.len());
        let old_segments = self.segments.clone();
        let mut i = 0;
        while i < old_segments.len() {
            if !compactable[i] {
                rebuilt.push(old_segments[i].clone());
                i += 1;
                continue;
            }
            // A maximal run of consecutive compactable segments merges into
            // dense-as-possible replacement files (sequence coverage stays
            // sorted because the run is consecutive).
            let run_start = i;
            while i < old_segments.len() && compactable[i] {
                i += 1;
            }
            let run = &old_segments[run_start..i];
            let mut live: Vec<(u32, Record, Vec<f32>)> = Vec::new();
            let mut old_bytes = 0u64;
            for meta in run {
                old_bytes += meta.bytes;
                for (frame, (record, embedding)) in self.read_segment(meta).into_iter().enumerate()
                {
                    let seq = meta.seq_at(frame);
                    if self.is_live(seq) {
                        live.push((seq, record, embedding));
                    }
                }
            }
            let mut new_bytes = 0u64;
            for chunk in live.chunks(self.config.segment_records.max(1)) {
                let entries: Vec<(u32, &Record, &[f32])> = chunk
                    .iter()
                    .map(|(seq, record, embedding)| (*seq, record, embedding.as_slice()))
                    .collect();
                let meta = self.seal_entries(&entries)?;
                new_bytes += meta.bytes;
                report.segments_written += 1;
                rebuilt.push(meta);
            }
            report.segments_compacted += run.len() as u64;
            report.reclaimed_bytes += old_bytes.saturating_sub(new_bytes);
        }
        self.segments = rebuilt;
        self.compactions += report.segments_compacted;
        self.reclaimed += report.reclaimed_bytes;
        Ok(report)
    }

    fn stats(&self) -> StorageStats {
        let cache = self.cache.lock().expect("cache lock poisoned");
        let tail_bytes: usize = self
            .tail
            .iter()
            .map(|(_, r, e)| record_heap_bytes(r) + e.len() * 4 + 8)
            .sum();
        let spilled_records: usize = self.segments.iter().map(|m| m.records).sum();
        // Resident index overhead: seq maps (4 B/record), the seq -> id map
        // (8 B/record), frame offsets (8 B/frame) and sparse sequence lists
        // (4 B/frame where present).
        let index_bytes = self.entity_of_seq.len() * 12
            + spilled_records * 8
            + self
                .segments
                .iter()
                .filter(|m| m.seqs.is_some())
                .map(|m| m.records * 4)
                .sum::<usize>();
        StorageStats {
            backend: "disk",
            records: self.entity_of_seq.len(),
            deleted_records: self.deleted,
            resident_records: self.tail.len() - self.tail_dead + cache.len(),
            resident_bytes: tail_bytes + cache.approx_bytes() + index_bytes,
            spilled_records,
            spilled_bytes: self.segments.iter().map(|m| m.bytes).sum(),
            segments: self.segments.len(),
            segments_deleted: self.gc_deleted,
            compactions: self.compactions,
            reclaimed_bytes: self.reclaimed,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }

    fn segment_stats(&self) -> Vec<SegmentStats> {
        self.segments
            .iter()
            .map(|meta| SegmentStats {
                records: meta.records,
                dead: meta.dead,
                bytes: meta.bytes,
            })
            .collect()
    }
}
