//! The spill-to-disk segment record store.
//!
//! Appends accumulate in an in-memory *tail*; once the tail reaches
//! `segment_records` entries (or [`RecordStore::flush`] runs, e.g. at a
//! serving-layer checkpoint) it is *sealed*: encoded as a run of CRC32
//! frames ([`crate::wire`], the same framing the WAL and binary snapshots
//! use) and published atomically as `seg-NNNNNN.seg` under the configured
//! directory. Sealed segments are immutable; the only resident state they
//! keep is per-frame offsets (8 bytes/record) plus whatever a bounded,
//! two-generation hot cache holds.
//!
//! One frame holds one record: the serde value tree of the [`Record`]
//! (binary value codec) followed by the raw little-endian `f32` embedding.
//! A read miss seeks straight to the frame offset, verifies the CRC and
//! decodes one record — no segment-wide scan.
//!
//! Serialization (for snapshots) carries the segment *index* — file names,
//! first sequence numbers, sizes — and the unsealed tail, **not** the
//! sealed payload: a checkpoint of a disk-backed store is a delta, it
//! re-ships only what changed since the segments were sealed.
//! [`RecordStore::reopen`] re-attaches the deserialized index to the files,
//! re-scanning frame headers to rebuild offsets and refusing to open
//! missing or size-mismatched segments.
//!
//! Durability contract: sealed segments survive the process; tail records
//! live in memory until sealed and must be covered by an external log (the
//! serving layer's WAL) or a snapshot, exactly like the memory backend.
//! One live writer per directory — concurrent writers would race on
//! segment file names.

use super::{record_heap_bytes, RecordIter, RecordStore, StorageStats};
use crate::config::DiskStorageConfig;
use crate::error::OnlineError;
use crate::wire::{self, Frame};
use crate::Result;
use multiem_table::{EntityId, Record};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Index entry of one sealed, immutable segment file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SegmentMeta {
    /// File name under the store directory (`seg-NNNNNN.seg`).
    file: String,
    /// Global append sequence of the segment's first record.
    first_seq: u32,
    /// Records in the segment.
    records: usize,
    /// Total file size in bytes (magic + frames).
    bytes: u64,
    /// Byte offset of each frame, rebuilt by `reopen` (not persisted).
    #[serde(skip)]
    offsets: Vec<u64>,
}

/// One appended entry: source, record, embedding.
type TailEntry = (u32, Record, Vec<f32>);

/// Two-generation (segmented-LRU) cache over sealed records, keyed by
/// global append sequence. Promotion on hit, wholesale demotion of the
/// older generation once the newer one fills half the capacity.
#[derive(Debug, Default, Clone)]
struct RecordCache {
    current: HashMap<u32, (Record, Vec<f32>)>,
    previous: HashMap<u32, (Record, Vec<f32>)>,
    hits: u64,
    misses: u64,
}

impl RecordCache {
    fn get(&mut self, seq: u32) -> Option<(Record, Vec<f32>)> {
        if let Some(hit) = self.current.get(&seq) {
            self.hits += 1;
            return Some(hit.clone());
        }
        if let Some(hit) = self.previous.remove(&seq) {
            self.hits += 1;
            self.current.insert(seq, hit.clone());
            return Some(hit);
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, cap: usize, seq: u32, entry: (Record, Vec<f32>)) {
        if cap == 0 {
            return;
        }
        if self.current.len() >= cap.div_ceil(2) {
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(seq, entry);
    }

    fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    fn approx_bytes(&self) -> usize {
        self.current
            .values()
            .chain(self.previous.values())
            .map(|(r, e)| record_heap_bytes(r) + e.len() * 4 + 16)
            .sum()
    }
}

/// Append-only segment-file storage with a bounded resident footprint. See
/// the [module docs](self).
#[derive(Debug, Serialize, Deserialize)]
pub struct SegmentRecordStore {
    config: DiskStorageConfig,
    dim: usize,
    /// Source names, in open order.
    names: Vec<String>,
    /// Per-source: row -> global append sequence.
    seq_of: Vec<Vec<u32>>,
    /// Global append sequence -> id (the inverse of `seq_of`).
    entity_of_seq: Vec<EntityId>,
    /// Sealed segments, in sequence order.
    segments: Vec<SegmentMeta>,
    /// Records covered by sealed segments (`entity_of_seq[..sealed]`).
    sealed: usize,
    /// Unsealed appends (decoded, fully resident).
    tail: Vec<TailEntry>,
    /// Hot cache over sealed records; interior-mutable so reads stay
    /// `&self` (the entity store serves reads under shared locks). Not part
    /// of the persisted state.
    #[serde(skip)]
    cache: Mutex<RecordCache>,
    /// Files deleted by [`RecordStore::gc`] this store lifetime (volatile).
    #[serde(skip)]
    gc_deleted: u64,
}

impl Clone for SegmentRecordStore {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            dim: self.dim,
            names: self.names.clone(),
            seq_of: self.seq_of.clone(),
            entity_of_seq: self.entity_of_seq.clone(),
            segments: self.segments.clone(),
            sealed: self.sealed,
            tail: self.tail.clone(),
            cache: Mutex::new(self.cache.lock().expect("cache lock poisoned").clone()),
            gc_deleted: self.gc_deleted,
        }
    }
}

impl SegmentRecordStore {
    /// Create (or reuse) the segment directory and start an empty store.
    pub fn create(config: DiskStorageConfig, dim: usize) -> Result<Self> {
        std::fs::create_dir_all(&config.dir).map_err(|e| {
            OnlineError::Storage(format!("cannot create segment dir `{}`: {e}", config.dir))
        })?;
        Ok(Self {
            config,
            dim,
            names: Vec::new(),
            seq_of: Vec::new(),
            entity_of_seq: Vec::new(),
            segments: Vec::new(),
            sealed: 0,
            tail: Vec::new(),
            cache: Mutex::new(RecordCache::default()),
            gc_deleted: 0,
        })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        Path::new(&self.config.dir)
    }

    fn path_of(&self, meta: &SegmentMeta) -> PathBuf {
        self.dir().join(&meta.file)
    }

    /// Encode one frame payload: record value tree + raw f32 embedding.
    fn encode_entry(record: &Record, embedding: &[f32]) -> Vec<u8> {
        let mut payload = Vec::new();
        wire::write_value(&mut payload, &serde::Serialize::to_value(record));
        for x in embedding {
            payload.extend_from_slice(&x.to_le_bytes());
        }
        payload
    }

    fn decode_entry(payload: &[u8], dim: usize) -> Result<(Record, Vec<f32>)> {
        let mut pos = 0;
        let value = wire::read_value_at(payload, &mut pos)
            .map_err(|e| OnlineError::Storage(format!("corrupt segment record: {e}")))?;
        let record: Record = serde::Deserialize::from_value(&value)
            .map_err(|e| OnlineError::Storage(format!("corrupt segment record: {e}")))?;
        let raw = &payload[pos..];
        if raw.len() != dim * 4 {
            return Err(OnlineError::Storage(format!(
                "segment record carries {} embedding bytes, expected {}",
                raw.len(),
                dim * 4
            )));
        }
        let embedding = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();
        Ok((record, embedding))
    }

    /// Seal the tail into a new immutable segment file (atomic tmp +
    /// rename; the file is fsynced before publication so a manifest that
    /// later references it cannot outlive its contents).
    fn seal(&mut self) -> Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::from(*wire::SEGMENT_MAGIC);
        let mut offsets = Vec::with_capacity(self.tail.len());
        for (_, record, embedding) in &self.tail {
            offsets.push(buf.len() as u64);
            let payload = Self::encode_entry(record, embedding);
            wire::write_frame(&mut buf, &payload)
                .map_err(|e| OnlineError::Storage(format!("segment encode failed: {e}")))?;
        }

        let file = format!("seg-{:06}.seg", self.segments.len());
        let path = self.dir().join(&file);
        let tmp = path.with_extension("tmp");
        let publish = (|| -> std::io::Result<()> {
            {
                use std::io::Write;
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&buf)?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)
        })();
        publish.map_err(|e| {
            OnlineError::Storage(format!("cannot seal segment `{}`: {e}", path.display()))
        })?;

        let records = self.tail.len();
        let first_seq = self.sealed as u32;
        // Freshly sealed records stay hot: demote them into the cache so
        // reads right after a seal (pruning of recent clusters) stay cheap.
        {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            for (i, (_, record, embedding)) in self.tail.drain(..).enumerate() {
                cache.insert(
                    self.config.cache_records,
                    first_seq + i as u32,
                    (record, embedding),
                );
            }
        }
        self.sealed += records;
        self.segments.push(SegmentMeta {
            file,
            first_seq,
            records,
            bytes: buf.len() as u64,
            offsets,
        });
        Ok(())
    }

    /// Global append sequence of `id`, if stored.
    fn seq(&self, id: EntityId) -> Option<u32> {
        self.seq_of
            .get(id.source as usize)?
            .get(id.row as usize)
            .copied()
    }

    /// The sealed segment covering `seq` (callers guarantee `seq < sealed`).
    fn segment_of(&self, seq: u32) -> &SegmentMeta {
        let idx = self
            .segments
            .partition_point(|m| m.first_seq <= seq)
            .checked_sub(1)
            .expect("sealed sequence below first segment");
        &self.segments[idx]
    }

    /// Read one sealed record straight from its segment file.
    ///
    /// # Panics
    /// Panics when the segment file vanished or fails its CRC at runtime —
    /// the same contract as a poisoned lock: the store's backing state was
    /// corrupted out from under it. (`reopen` reports such damage as a
    /// recoverable error instead.)
    fn read_sealed(&self, seq: u32) -> (Record, Vec<f32>) {
        let meta = self.segment_of(seq);
        let offset = meta.offsets[(seq - meta.first_seq) as usize];
        let path = self.path_of(meta);
        let entry = (|| -> Result<(Record, Vec<f32>)> {
            let mut file = std::fs::File::open(&path)
                .map_err(|e| OnlineError::Storage(format!("open failed: {e}")))?;
            file.seek(SeekFrom::Start(offset))
                .map_err(|e| OnlineError::Storage(format!("seek failed: {e}")))?;
            match wire::read_frame(&mut file)
                .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?
            {
                Frame::Payload(payload) => Self::decode_entry(&payload, self.dim),
                _ => Err(OnlineError::Storage(
                    "frame truncated or failed its checksum".into(),
                )),
            }
        })();
        match entry {
            Ok(entry) => entry,
            Err(e) => panic!(
                "segment `{}` corrupted at offset {offset}: {e}",
                path.display()
            ),
        }
    }

    /// Cache-through lookup of any stored sequence.
    fn entry(&self, seq: u32) -> (Record, Vec<f32>) {
        if (seq as usize) >= self.sealed {
            let (_, record, embedding) = &self.tail[seq as usize - self.sealed];
            return (record.clone(), embedding.clone());
        }
        {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            if let Some(hit) = cache.get(seq) {
                return hit;
            }
        }
        let entry = self.read_sealed(seq);
        self.cache.lock().expect("cache lock poisoned").insert(
            self.config.cache_records,
            seq,
            entry.clone(),
        );
        entry
    }

    /// Decode a whole segment file sequentially (bulk iteration path).
    fn read_segment(&self, meta: &SegmentMeta) -> Vec<(Record, Vec<f32>)> {
        let path = self.path_of(meta);
        let decode = (|| -> Result<Vec<(Record, Vec<f32>)>> {
            let file = std::fs::File::open(&path)
                .map_err(|e| OnlineError::Storage(format!("open failed: {e}")))?;
            let mut reader = BufReader::new(file);
            let mut magic = [0u8; 4];
            reader
                .read_exact(&mut magic)
                .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?;
            if &magic != wire::SEGMENT_MAGIC {
                return Err(OnlineError::Storage("bad segment magic".into()));
            }
            let mut out = Vec::with_capacity(meta.records);
            for _ in 0..meta.records {
                match wire::read_frame(&mut reader)
                    .map_err(|e| OnlineError::Storage(format!("read failed: {e}")))?
                {
                    Frame::Payload(payload) => out.push(Self::decode_entry(&payload, self.dim)?),
                    _ => {
                        return Err(OnlineError::Storage(
                            "frame truncated or failed its checksum".into(),
                        ))
                    }
                }
            }
            Ok(out)
        })();
        match decode {
            Ok(out) => out,
            Err(e) => panic!("segment `{}` corrupted: {e}", path.display()),
        }
    }
}

impl RecordStore for SegmentRecordStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn open_source(&mut self, name: &str) -> u32 {
        self.names.push(name.to_string());
        self.seq_of.push(Vec::new());
        (self.seq_of.len() - 1) as u32
    }

    fn append(&mut self, source: u32, record: &Record, embedding: &[f32]) -> Result<EntityId> {
        assert_eq!(embedding.len(), self.dim, "embedding width mismatch");
        let seq = self.entity_of_seq.len() as u32;
        let row = self.seq_of[source as usize].len() as u32;
        let id = EntityId::new(source, row);
        self.seq_of[source as usize].push(seq);
        self.entity_of_seq.push(id);
        self.tail.push((source, record.clone(), embedding.to_vec()));
        if self.tail.len() >= self.config.segment_records {
            self.seal()?;
        }
        Ok(id)
    }

    fn get(&self, id: EntityId) -> Option<Record> {
        Some(self.entry(self.seq(id)?).0)
    }

    fn embedding(&self, id: EntityId) -> Option<Vec<f32>> {
        Some(self.entry(self.seq(id)?).1)
    }

    fn iter(&self) -> RecordIter<'_> {
        let sealed = self.segments.iter().flat_map(move |meta| {
            self.read_segment(meta)
                .into_iter()
                .enumerate()
                .map(move |(i, (record, _))| {
                    (self.entity_of_seq[meta.first_seq as usize + i], record)
                })
        });
        let tail = self
            .tail
            .iter()
            .enumerate()
            .map(move |(i, (_, record, _))| (self.entity_of_seq[self.sealed + i], record.clone()));
        Box::new(sealed.chain(tail))
    }

    fn len(&self) -> usize {
        self.entity_of_seq.len()
    }

    fn num_sources(&self) -> usize {
        self.seq_of.len()
    }

    fn source_len(&self, source: u32) -> usize {
        self.seq_of.get(source as usize).map_or(0, Vec::len)
    }

    fn source_name(&self, source: u32) -> Option<&str> {
        self.names.get(source as usize).map(String::as_str)
    }

    fn flush(&mut self) -> Result<()> {
        self.seal()
    }

    fn reopen(&mut self) -> Result<()> {
        let mut covered = 0usize;
        for meta in &mut self.segments {
            let path = Path::new(&self.config.dir).join(&meta.file);
            let file = std::fs::File::open(&path).map_err(|e| {
                OnlineError::Storage(format!("segment `{}` missing: {e}", path.display()))
            })?;
            let actual = file
                .metadata()
                .map_err(|e| {
                    OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
                })?
                .len();
            if actual != meta.bytes {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` is {actual} bytes on disk, index says {}",
                    path.display(),
                    meta.bytes
                )));
            }
            let mut reader = BufReader::new(file);
            let mut magic = [0u8; 4];
            reader.read_exact(&mut magic).map_err(|e| {
                OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
            })?;
            if &magic != wire::SEGMENT_MAGIC {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` has a bad magic header",
                    path.display()
                )));
            }
            // Walk frame headers only, collecting offsets without decoding
            // payloads; a short file or length mismatch is refused here so
            // runtime reads never land mid-frame.
            let mut offsets = Vec::with_capacity(meta.records);
            let mut pos = 4u64;
            for i in 0..meta.records {
                let mut header = [0u8; wire::FRAME_HEADER_BYTES];
                reader.read_exact(&mut header).map_err(|_| {
                    OnlineError::Storage(format!(
                        "segment `{}` truncated at record {i}",
                        path.display()
                    ))
                })?;
                let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as u64;
                offsets.push(pos);
                pos += wire::FRAME_HEADER_BYTES as u64 + len;
                reader.seek(SeekFrom::Start(pos)).map_err(|e| {
                    OnlineError::Storage(format!("segment `{}` unreadable: {e}", path.display()))
                })?;
            }
            if pos != meta.bytes {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` is {pos} bytes, index says {}",
                    path.display(),
                    meta.bytes
                )));
            }
            if meta.first_seq as usize != covered {
                return Err(OnlineError::Storage(format!(
                    "segment `{}` starts at sequence {}, expected {covered}",
                    path.display(),
                    meta.first_seq
                )));
            }
            covered += meta.records;
            meta.offsets = offsets;
        }
        self.sealed = covered;
        if covered + self.tail.len() != self.entity_of_seq.len() {
            return Err(OnlineError::Storage(format!(
                "segment index covers {covered} records plus {} in the tail, store expects {}",
                self.tail.len(),
                self.entity_of_seq.len()
            )));
        }
        self.cache = Mutex::new(RecordCache::default());
        Ok(())
    }

    fn gc(&mut self) -> Result<u64> {
        let entries = std::fs::read_dir(self.dir()).map_err(|e| {
            OnlineError::Storage(format!(
                "cannot list segment dir `{}`: {e}",
                self.config.dir
            ))
        })?;
        let mut deleted = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            // Only touch files this store's naming scheme produced: sealed
            // segments and the tmp files of interrupted seals. Anything
            // else in the directory is not ours to delete.
            let ours =
                name.starts_with("seg-") && (name.ends_with(".seg") || name.ends_with(".tmp"));
            if !ours || self.segments.iter().any(|meta| meta.file == name) {
                continue;
            }
            std::fs::remove_file(entry.path()).map_err(|e| {
                OnlineError::Storage(format!("cannot delete orphaned segment `{name}`: {e}"))
            })?;
            deleted += 1;
        }
        self.gc_deleted += deleted;
        Ok(deleted)
    }

    fn stats(&self) -> StorageStats {
        let cache = self.cache.lock().expect("cache lock poisoned");
        let tail_bytes: usize = self
            .tail
            .iter()
            .map(|(_, r, e)| record_heap_bytes(r) + e.len() * 4 + 8)
            .sum();
        // Resident index overhead: seq maps (4 B/record), the seq -> id map
        // (8 B/record) and sealed frame offsets (8 B/record).
        let index_bytes = self.entity_of_seq.len() * 12 + self.sealed * 8;
        StorageStats {
            backend: "disk",
            records: self.entity_of_seq.len(),
            resident_records: self.tail.len() + cache.len(),
            resident_bytes: tail_bytes + cache.approx_bytes() + index_bytes,
            spilled_records: self.sealed,
            spilled_bytes: self.segments.iter().map(|m| m.bytes).sum(),
            segments: self.segments.len(),
            segments_deleted: self.gc_deleted,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
        }
    }
}
