//! Compact binary wire format shared by store snapshots and the serving
//! layer's write-ahead log.
//!
//! Two layers:
//!
//! * a **value codec** ([`value_to_bytes`] / [`value_from_bytes`]) that
//!   serializes the self-describing [`serde::Value`] tree of the vendored
//!   serde stand-in: one tag byte per node, LEB128 varints for integers and
//!   lengths, and `f32`-exact floats stored in 4 bytes (embeddings dominate
//!   snapshots, and every embedding coordinate is an exact `f32`), which is
//!   where the 5–10x size win over JSON comes from;
//! * a **frame codec** ([`write_frame`] / [`read_frame`]): length-prefixed,
//!   CRC32-checked byte blocks. The WAL is a sequence of frames; a torn final
//!   frame (a process killed mid-append) reads back as [`Frame::Torn`] so
//!   replay stops cleanly instead of erroring.

use serde::Value;
use std::io::{self, Read, Write};

/// Error while decoding the binary value format.
#[derive(Debug, Clone)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Wire-format snapshot encodings selectable on
/// [`EntityStore::snapshot_bytes`](crate::EntityStore::snapshot_bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Human-readable JSON (the PR-1 format; large but diffable).
    Json,
    /// The compact binary value codec of this module, with a magic header.
    Binary,
}

/// Magic prefix of binary snapshots (`restore` sniffs it to auto-detect the
/// format).
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"MEB1";

/// Magic prefix of segment files written by the spill-to-disk record store
/// (`crate::storage::SegmentRecordStore`).
pub const SEGMENT_MAGIC: &[u8; 4] = b"MES1";

// --------------------------------------------------------------------------
// Varints
// --------------------------------------------------------------------------

/// Append a LEB128-encoded u64.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 u64 at `pos`, advancing it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| WireError("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(WireError("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --------------------------------------------------------------------------
// Value codec
// --------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_UINT: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_F32: u8 = 6;
const TAG_STR: u8 = 7;
const TAG_SEQ: u8 = 8;
const TAG_MAP: u8 = 9;

/// Append the binary encoding of `value`.
pub fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(out, zigzag(*i));
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            write_varint(out, *u);
        }
        Value::Float(f) => {
            // Embedding coordinates are f32-exact; store them in half the
            // bytes. NaN fails the equality and takes the f64 path.
            let narrowed = *f as f32;
            if f64::from(narrowed) == *f {
                out.push(TAG_F32);
                out.extend_from_slice(&narrowed.to_le_bytes());
            } else {
                out.push(TAG_F64);
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_varint(out, items.len() as u64);
            for item in items {
                write_value(out, item);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_varint(out, entries.len() as u64);
            for (key, item) in entries {
                write_varint(out, key.len() as u64);
                out.extend_from_slice(key.as_bytes());
                write_value(out, item);
            }
        }
    }
}

/// Serialize a value tree to bytes.
pub fn value_to_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    write_value(&mut out, value);
    out
}

/// Parse a value tree from bytes, requiring full consumption.
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value, WireError> {
    let mut pos = 0;
    let value = read_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(WireError(format!(
            "{} trailing bytes after value",
            bytes.len() - pos
        )));
    }
    Ok(value)
}

/// Decode one value starting at `pos`, advancing it past the value and
/// leaving any trailing bytes unread (the segment store packs a value
/// followed by a raw embedding in one frame).
pub fn read_value_at(bytes: &[u8], pos: &mut usize) -> Result<Value, WireError> {
    read_value(bytes, pos)
}

fn read_exact_slice<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    let end = pos
        .checked_add(n)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| WireError("truncated value".into()))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = read_varint(bytes, pos)? as usize;
    let raw = read_exact_slice(bytes, pos, len)?;
    String::from_utf8(raw.to_vec()).map_err(|e| WireError(format!("invalid utf-8 string: {e}")))
}

fn read_value(bytes: &[u8], pos: &mut usize) -> Result<Value, WireError> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| WireError("truncated value tag".into()))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(unzigzag(read_varint(bytes, pos)?))),
        TAG_UINT => Ok(Value::UInt(read_varint(bytes, pos)?)),
        TAG_F64 => {
            let raw = read_exact_slice(bytes, pos, 8)?;
            Ok(Value::Float(f64::from_le_bytes(raw.try_into().unwrap())))
        }
        TAG_F32 => {
            let raw = read_exact_slice(bytes, pos, 4)?;
            Ok(Value::Float(f64::from(f32::from_le_bytes(
                raw.try_into().unwrap(),
            ))))
        }
        TAG_STR => Ok(Value::Str(read_string(bytes, pos)?)),
        TAG_SEQ => {
            let len = read_varint(bytes, pos)? as usize;
            let mut items = Vec::new();
            for _ in 0..len {
                items.push(read_value(bytes, pos)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = read_varint(bytes, pos)? as usize;
            let mut entries = Vec::new();
            for _ in 0..len {
                let key = read_string(bytes, pos)?;
                let value = read_value(bytes, pos)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        other => Err(WireError(format!("unknown value tag {other}"))),
    }
}

// --------------------------------------------------------------------------
// CRC32 (IEEE)
// --------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// --------------------------------------------------------------------------
// Frames
// --------------------------------------------------------------------------

/// Size of the frame header: payload length (u32 LE) + CRC32 (u32 LE).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Outcome of reading one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// Clean end of the stream (no partial header).
    Eof,
    /// The stream ends mid-frame or the checksum fails — the tail was torn
    /// by an interrupted write and must be discarded.
    Torn,
}

/// Write one `[len][crc32][payload]` frame.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds 4 GiB"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&crc32(payload).to_le_bytes())?;
    writer.write_all(payload)
}

/// Read one frame. Returns [`Frame::Eof`] on a clean end, [`Frame::Torn`] on
/// a truncated or checksum-failing tail.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Frame> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_full(reader, &mut header)? {
        0 => return Ok(Frame::Eof),
        n if n < FRAME_HEADER_BYTES => return Ok(Frame::Torn),
        _ => {}
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len];
    if read_full(reader, &mut payload)? < len {
        return Ok(Frame::Torn);
    }
    if crc32(&payload) != expected_crc {
        return Ok(Frame::Torn);
    }
    Ok(Frame::Payload(payload))
}

/// Read as many bytes as available up to `buf.len()`, returning the count
/// (only a true EOF stops short).
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let bytes = value_to_bytes(v);
        let back = value_from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Int(-123456789));
        roundtrip(&Value::Int(i64::MIN));
        roundtrip(&Value::UInt(u64::MAX));
        roundtrip(&Value::Float(0.25));
        roundtrip(&Value::Float(1.0e300)); // not f32-exact
        roundtrip(&Value::Str("héllo\nworld".into()));
        roundtrip(&Value::Seq(vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Seq(vec![]),
        ]));
        roundtrip(&Value::Map(vec![
            ("a".into(), Value::Null),
            ("b".into(), Value::Float(f64::from(0.1f32))),
        ]));
    }

    #[test]
    fn f32_exact_floats_use_four_bytes() {
        let exact = value_to_bytes(&Value::Float(f64::from(0.1f32)));
        assert_eq!(exact.len(), 5); // tag + 4
        let wide = value_to_bytes(&Value::Float(0.1f64));
        assert_eq!(wide.len(), 9); // tag + 8
    }

    #[test]
    fn nan_survives_binary() {
        let bytes = value_to_bytes(&Value::Float(f64::NAN));
        match value_from_bytes(&bytes).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(value_from_bytes(&[0xff]).is_err());
        assert!(value_from_bytes(&[TAG_STR, 0x05, b'a']).is_err());
        // Trailing bytes after a complete value.
        assert!(value_from_bytes(&[TAG_NULL, TAG_NULL]).is_err());
    }

    #[test]
    fn frames_roundtrip_and_detect_torn_tails() {
        let mut log: Vec<u8> = Vec::new();
        write_frame(&mut log, b"first").unwrap();
        write_frame(&mut log, b"second record").unwrap();

        let mut reader = &log[..];
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Payload(b"first".to_vec())
        );
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Payload(b"second record".to_vec())
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Eof);

        // Torn tail: drop the last 3 bytes, as if the process died mid-write.
        let torn = &log[..log.len() - 3];
        let mut reader = torn;
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Payload(b"first".to_vec())
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Torn);

        // Corrupt payload byte: checksum catches it.
        let mut bad = log.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut reader = &bad[..];
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Payload(b"first".to_vec())
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Torn);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
