//! Errors of the online entity store.

use std::fmt;

/// Everything that can go wrong while operating an [`crate::EntityStore`].
#[derive(Debug)]
pub enum OnlineError {
    /// The store configuration is invalid.
    InvalidConfig(String),
    /// A record or table does not match the store schema.
    SchemaMismatch(String),
    /// An operation that needs data ran on an empty store.
    EmptyStore,
    /// `bootstrap` was called on a store that already holds records.
    AlreadyPopulated,
    /// Snapshot serialization or restoration failed.
    Snapshot(String),
    /// The record-storage backend failed (segment I/O, corrupt frame, ...).
    Storage(String),
    /// An error bubbled up from the batch pipeline.
    Pipeline(multiem_core::MultiEmError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig(msg) => write!(f, "invalid online config: {msg}"),
            OnlineError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            OnlineError::EmptyStore => write!(f, "operation requires a non-empty store"),
            OnlineError::AlreadyPopulated => {
                write!(
                    f,
                    "bootstrap requires an empty store (records already ingested)"
                )
            }
            OnlineError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            OnlineError::Storage(msg) => write!(f, "record storage error: {msg}"),
            OnlineError::Pipeline(e) => write!(f, "batch pipeline error: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<multiem_core::MultiEmError> for OnlineError {
    fn from(e: multiem_core::MultiEmError) -> Self {
        OnlineError::Pipeline(e)
    }
}
