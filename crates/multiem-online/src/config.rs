//! Configuration of the online entity store.

use multiem_core::MultiEmConfig;
use multiem_table::AttrId;
use serde::{Deserialize, Serialize};

/// How the store decides which attributes to embed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Run the paper's automated attribute selection (Algorithm 1) over the
    /// bootstrap dataset or, lacking one, over the first ingested batch.
    /// Later records reuse that selection — re-running Algorithm 1 on every
    /// batch would silently re-embed the whole store.
    AutoOnFirstData,
    /// Embed every attribute (the `w/o EER` ablation).
    AllAttributes,
    /// Use a fixed, caller-provided attribute projection.
    Fixed(Vec<AttrId>),
}

/// Tuning of the spill-to-disk segment record store
/// ([`crate::storage::SegmentRecordStore`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskStorageConfig {
    /// Directory holding the append-only segment files. One live writer per
    /// directory: two stores appending into the same directory would race on
    /// segment file names.
    pub dir: String,
    /// Records per sealed segment file. Appends accumulate in an in-memory
    /// tail; once the tail reaches this many records it is sealed to disk
    /// and evicted from memory.
    pub segment_records: usize,
    /// Capacity (in records) of the in-memory LRU over sealed records. `0`
    /// disables the cache (every sealed read hits disk).
    pub cache_records: usize,
    /// Compaction threshold: a sealed segment whose *live* fraction
    /// (non-deleted records / records in the file) is at or below this
    /// value is rewritten by the next compaction pass
    /// ([`crate::storage::RecordStore::compact`]), reclaiming the bytes its
    /// tombstoned records pin. `0.0` compacts only fully-dead segments;
    /// `1.0` rewrites any segment with at least one deletion.
    pub compact_live_ratio: f64,
}

impl DiskStorageConfig {
    /// Disk storage under `dir` with the default segment size (512 records),
    /// hot cache (1024 records) and compaction threshold (0.6).
    pub fn new(dir: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            segment_records: 512,
            cache_records: 1024,
            compact_live_ratio: 0.6,
        }
    }
}

/// Where ingested records and their embeddings live (the pluggable record
/// storage selected by [`OnlineConfig::storage`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StorageConfig {
    /// Keep every record and embedding resident (the PR-1/PR-2 behaviour;
    /// memory grows linearly with ingest).
    Memory,
    /// Spill records and embeddings to append-only, CRC-framed segment
    /// files, keeping only the unsealed tail and a bounded hot cache in
    /// memory.
    Disk(DiskStorageConfig),
}

/// Configuration of an [`crate::EntityStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// The batch pipeline hyper-parameters reused by the incremental path:
    /// `k` / `m` / `merge_metric` drive the mutual top-K rule, `epsilon` /
    /// `min_pts` / `prune_metric` drive re-pruning, `index_backend` /
    /// `hnsw_threshold` / `hnsw` select the representative index.
    pub base: MultiEmConfig,
    /// Attribute-selection strategy.
    pub selection: SelectionStrategy,
    /// Re-run density-based pruning over dirty clusters every this many
    /// accepted records (`None` = only when [`crate::EntityStore::refresh`]
    /// is called explicitly).
    pub prune_interval: Option<usize>,
    /// Rebuild the representative index once the fraction of tombstoned
    /// (stale) nodes exceeds this threshold. Cluster merges tombstone the
    /// merged representatives, so without rebuilds searches degrade.
    pub rebuild_staleness: f64,
    /// Whether a new record may merge *directly* into a cluster whose members
    /// all come from the record's own source table. The batch pipeline never
    /// compares two items of the same source table directly (tables are
    /// merged pairwise), so the default is `false`; same-source records can
    /// still end up in one cluster transitively.
    pub match_within_source: bool,
    /// Record/embedding storage backend.
    pub storage: StorageConfig,
}

impl OnlineConfig {
    /// Configuration with the given batch hyper-parameters and the default
    /// online policies. `base.attribute_selection` carries over: when the
    /// batch config disables Algorithm 1 (the `w/o EER` ablation), the store
    /// embeds every attribute instead of auto-selecting on first data.
    pub fn new(base: MultiEmConfig) -> Self {
        let selection = if base.attribute_selection {
            SelectionStrategy::AutoOnFirstData
        } else {
            SelectionStrategy::AllAttributes
        };
        Self {
            base,
            selection,
            prune_interval: Some(256),
            rebuild_staleness: 0.5,
            match_within_source: false,
            storage: StorageConfig::Memory,
        }
    }

    /// Use a fixed attribute projection.
    pub fn with_fixed_attributes(mut self, attrs: Vec<AttrId>) -> Self {
        self.selection = SelectionStrategy::Fixed(attrs);
        self
    }

    /// Embed every attribute.
    pub fn with_all_attributes(mut self) -> Self {
        self.selection = SelectionStrategy::AllAttributes;
        self
    }

    /// Spill records and embeddings to segment files under `dir` (defaults
    /// from [`DiskStorageConfig::new`]).
    pub fn with_disk_storage(mut self, dir: impl Into<String>) -> Self {
        self.storage = StorageConfig::Disk(DiskStorageConfig::new(dir));
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if !(0.0..=1.0).contains(&self.rebuild_staleness) {
            return Err("rebuild_staleness must be in [0, 1]".into());
        }
        if self.prune_interval == Some(0) {
            return Err("prune_interval must be at least 1".into());
        }
        if let SelectionStrategy::Fixed(attrs) = &self.selection {
            if attrs.is_empty() {
                return Err("fixed attribute selection must not be empty".into());
            }
        }
        if let StorageConfig::Disk(disk) = &self.storage {
            if disk.dir.trim().is_empty() {
                return Err("disk storage needs a non-empty directory".into());
            }
            if disk.segment_records == 0 {
                return Err("disk storage segment_records must be at least 1".into());
            }
            if !(0.0..=1.0).contains(&disk.compact_live_ratio) {
                return Err("disk storage compact_live_ratio must be in [0, 1]".into());
            }
        }
        Ok(())
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self::new(MultiEmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(OnlineConfig::default().validate().is_ok());
    }

    #[test]
    fn new_respects_disabled_attribute_selection() {
        let c = OnlineConfig::new(MultiEmConfig::default().without_attribute_selection());
        assert_eq!(c.selection, SelectionStrategy::AllAttributes);
        let c = OnlineConfig::new(MultiEmConfig::default());
        assert_eq!(c.selection, SelectionStrategy::AutoOnFirstData);
    }

    #[test]
    fn builders_set_strategy() {
        let c = OnlineConfig::default().with_all_attributes();
        assert_eq!(c.selection, SelectionStrategy::AllAttributes);
        let c = OnlineConfig::default().with_fixed_attributes(vec![0, 2]);
        assert_eq!(c.selection, SelectionStrategy::Fixed(vec![0, 2]));
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = OnlineConfig {
            rebuild_staleness: 1.5,
            ..OnlineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = OnlineConfig {
            prune_interval: Some(0),
            ..OnlineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = OnlineConfig::default().with_fixed_attributes(vec![]);
        assert!(c.validate().is_err());
        let c = OnlineConfig::new(MultiEmConfig {
            k: 0,
            ..MultiEmConfig::default()
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn storage_config_validates() {
        let c = OnlineConfig::default().with_disk_storage("/tmp/multiem-x");
        assert!(c.validate().is_ok());
        let c = OnlineConfig::default().with_disk_storage("   ");
        assert!(c.validate().is_err());
        let mut c = OnlineConfig::default().with_disk_storage("/tmp/multiem-x");
        if let StorageConfig::Disk(d) = &mut c.storage {
            d.segment_records = 0;
        }
        assert!(c.validate().is_err());
        let mut c = OnlineConfig::default().with_disk_storage("/tmp/multiem-x");
        if let StorageConfig::Disk(d) = &mut c.storage {
            d.compact_live_ratio = 1.5;
        }
        assert!(c.validate().is_err());
        // The default stays fully resident.
        assert_eq!(OnlineConfig::default().storage, StorageConfig::Memory);
    }
}
