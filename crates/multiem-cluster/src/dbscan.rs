//! DBSCAN and density-based point classification.
//!
//! The pruning phase of MultiEM runs, per merged tuple, the density
//! classification of Definitions 3–5: an entity is a **core** entity when at
//! least `MinPts` entities of the tuple (itself included) lie within `ε`; a
//! **reachable** entity is a non-core entity with at least one core entity in
//! its `ε`-neighbourhood; everything else is an **outlier** and is pruned.
//! [`classify_points`] implements exactly that (Algorithm 4), and [`dbscan`]
//! provides the full clustering (assignments) used by baselines and tests.

use crate::union_find::UnionFind;
use multiem_ann::Metric;
use serde::{Deserialize, Serialize};

/// The density class of a point (Definitions 3–5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointClass {
    /// Has at least `min_pts` neighbours within `eps` (itself included).
    Core,
    /// Not core, but has a core point within `eps`.
    Reachable,
    /// Neither core nor reachable; removed by the pruning phase.
    Outlier,
}

/// Configuration of DBSCAN / density classification.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DbscanConfig {
    /// Neighbourhood radius `ε`.
    pub eps: f32,
    /// Minimum number of points (including the point itself) within `ε` for a
    /// point to be a core point. The paper uses `MinPts = 2`.
    pub min_pts: usize,
    /// Distance metric (the paper uses Euclidean distance for pruning).
    pub metric: Metric,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        Self {
            eps: 1.0,
            min_pts: 2,
            metric: Metric::Euclidean,
        }
    }
}

/// Result of a full DBSCAN clustering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbscanResult {
    /// Cluster id per point; `None` marks noise (outliers).
    pub assignment: Vec<Option<usize>>,
    /// Density class per point.
    pub classes: Vec<PointClass>,
    /// Number of clusters found.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Materialise clusters as lists of point indices (noise excluded).
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some(c) = a {
                out[*c].push(i);
            }
        }
        out
    }
}

fn neighborhoods(points: &[&[f32]], config: &DbscanConfig) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut neigh = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if config.metric.distance(points[i], points[j]) <= config.eps {
                neigh[i].push(j);
            }
        }
    }
    neigh
}

/// Classify every point as core / reachable / outlier (Algorithm 4).
pub fn classify_points(points: &[&[f32]], config: &DbscanConfig) -> Vec<PointClass> {
    let n = points.len();
    let neigh = neighborhoods(points, config);
    let mut classes = vec![PointClass::Outlier; n];
    // First pass: core points.
    for i in 0..n {
        if neigh[i].len() >= config.min_pts {
            classes[i] = PointClass::Core;
        }
    }
    // Second pass: reachable points (non-core with a core neighbour).
    for i in 0..n {
        if classes[i] == PointClass::Core {
            continue;
        }
        if neigh[i].iter().any(|&j| classes[j] == PointClass::Core) {
            classes[i] = PointClass::Reachable;
        }
    }
    classes
}

/// Full DBSCAN clustering: core points within `ε` of each other share a
/// cluster, reachable points join the cluster of (one of) their core
/// neighbours, outliers stay unassigned.
pub fn dbscan(points: &[&[f32]], config: &DbscanConfig) -> DbscanResult {
    let n = points.len();
    let neigh = neighborhoods(points, config);
    let classes = classify_points(points, config);

    let mut uf = UnionFind::new(n);
    for i in 0..n {
        if classes[i] != PointClass::Core {
            continue;
        }
        for &j in &neigh[i] {
            if classes[j] == PointClass::Core {
                uf.union(i, j);
            }
        }
    }

    // Assign cluster ids to core components.
    let mut cluster_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut num_clusters = 0usize;
    for i in 0..n {
        if classes[i] == PointClass::Core {
            let root = uf.find(i);
            let id = *cluster_of_root.entry(root).or_insert_with(|| {
                let id = num_clusters;
                num_clusters += 1;
                id
            });
            assignment[i] = Some(id);
        }
    }
    // Reachable (border) points adopt the cluster of their first core neighbour.
    for i in 0..n {
        if classes[i] == PointClass::Reachable {
            if let Some(&core) = neigh[i].iter().find(|&&j| classes[j] == PointClass::Core) {
                assignment[i] = assignment[core];
            }
        }
    }

    DbscanResult {
        assignment,
        classes,
        num_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_refs(points: &[Vec<f32>]) -> Vec<&[f32]> {
        points.iter().map(|p| p.as_slice()).collect()
    }

    #[test]
    fn paper_figure4_outlier_detection() {
        // Figure 4: e1, e2, e3 close together, e4 merged in later but far away.
        let points = vec![
            vec![0.0, 0.0],
            vec![0.3, 0.0],
            vec![0.0, 0.3],
            vec![5.0, 5.0],
        ];
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 2,
            metric: Metric::Euclidean,
        };
        let classes = classify_points(&to_refs(&points), &cfg);
        assert_eq!(classes[0], PointClass::Core);
        assert_eq!(classes[1], PointClass::Core);
        assert_eq!(classes[2], PointClass::Core);
        assert_eq!(classes[3], PointClass::Outlier);
    }

    #[test]
    fn reachable_points_are_detected() {
        // Dense pair at origin; one point within eps of a core point but with
        // only that single neighbour besides itself → reachable when min_pts=3.
        let points = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.65]];
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 3,
            metric: Metric::Euclidean,
        };
        let classes = classify_points(&to_refs(&points), &cfg);
        assert_eq!(classes[0], PointClass::Core);
        assert_eq!(classes[1], PointClass::Core);
        assert_eq!(classes[2], PointClass::Core);
        assert_eq!(classes[3], PointClass::Reachable);
    }

    #[test]
    fn all_isolated_points_are_outliers_with_min_pts_2() {
        let points = vec![vec![0.0], vec![10.0], vec![20.0]];
        let cfg = DbscanConfig {
            eps: 1.0,
            min_pts: 2,
            metric: Metric::Euclidean,
        };
        let classes = classify_points(&to_refs(&points), &cfg);
        assert!(classes.iter().all(|c| *c == PointClass::Outlier));
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let points = vec![vec![0.0], vec![10.0]];
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 1,
            metric: Metric::Euclidean,
        };
        let classes = classify_points(&to_refs(&points), &cfg);
        assert!(classes.iter().all(|c| *c == PointClass::Core));
    }

    #[test]
    fn dbscan_separates_two_blobs() {
        let mut points = Vec::new();
        for i in 0..5 {
            points.push(vec![0.0 + i as f32 * 0.1, 0.0]);
        }
        for i in 0..5 {
            points.push(vec![10.0 + i as f32 * 0.1, 0.0]);
        }
        points.push(vec![100.0, 100.0]); // noise
        let cfg = DbscanConfig {
            eps: 0.5,
            min_pts: 2,
            metric: Metric::Euclidean,
        };
        let result = dbscan(&to_refs(&points), &cfg);
        assert_eq!(result.num_clusters, 2);
        let clusters = result.clusters();
        assert_eq!(clusters[0].len(), 5);
        assert_eq!(clusters[1].len(), 5);
        assert_eq!(result.assignment[10], None);
        assert_eq!(result.classes[10], PointClass::Outlier);
    }

    #[test]
    fn empty_input() {
        let cfg = DbscanConfig::default();
        let result = dbscan(&[], &cfg);
        assert_eq!(result.num_clusters, 0);
        assert!(result.assignment.is_empty());
        assert!(classify_points(&[], &cfg).is_empty());
    }

    #[test]
    fn cosine_metric_classification() {
        // Two vectors pointing the same way, one orthogonal.
        let points = vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]];
        let cfg = DbscanConfig {
            eps: 0.1,
            min_pts: 2,
            metric: Metric::Cosine,
        };
        let classes = classify_points(&to_refs(&points), &cfg);
        assert_eq!(classes[0], PointClass::Core);
        assert_eq!(classes[1], PointClass::Core);
        assert_eq!(classes[2], PointClass::Outlier);
    }

    #[test]
    fn reachable_points_join_core_cluster() {
        let points = vec![vec![0.0], vec![0.1], vec![0.2], vec![0.6]];
        let cfg = DbscanConfig {
            eps: 0.45,
            min_pts: 3,
            metric: Metric::Euclidean,
        };
        let result = dbscan(&to_refs(&points), &cfg);
        assert_eq!(result.classes[3], PointClass::Reachable);
        assert_eq!(result.assignment[3], result.assignment[2]);
        assert_eq!(result.num_clusters, 1);
    }
}
