//! Hierarchical agglomerative clustering (HAC).
//!
//! This is the substrate behind the MSCD-HAC baseline (Saeedi et al., KEOD
//! 2021): entities from multiple *clean* sources are clustered bottom-up, with
//! the optional constraint that a cluster may contain at most one entity per
//! source. Complexity is cubic in the number of entities, which is exactly why
//! the paper reports MSCD-HAC failing to finish on all but the smallest
//! dataset — the runtime benchmark reproduces that behaviour.

use multiem_ann::Metric;
use serde::{Deserialize, Serialize};

/// Linkage criterion used when merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA).
    #[default]
    Average,
}

/// Configuration of [`AgglomerativeClustering`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HacConfig {
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Stop merging once the closest pair of clusters is farther apart than
    /// this threshold.
    pub distance_threshold: f32,
    /// Distance metric over the input vectors.
    pub metric: Metric,
    /// When `true`, two clusters are never merged if they contain entities
    /// from the same source (the clean-source assumption of MSCD).
    pub source_constraint: bool,
}

impl Default for HacConfig {
    fn default() -> Self {
        Self {
            linkage: Linkage::Average,
            distance_threshold: 0.5,
            metric: Metric::Cosine,
            source_constraint: false,
        }
    }
}

/// Bottom-up agglomerative clustering over dense vectors.
#[derive(Debug, Clone)]
pub struct AgglomerativeClustering {
    config: HacConfig,
}

impl AgglomerativeClustering {
    /// Create a clusterer with the given configuration.
    pub fn new(config: HacConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &HacConfig {
        &self.config
    }

    /// Cluster `points`; `sources[i]` is the source id of point `i` (only used
    /// when the source constraint is enabled — pass an empty slice otherwise).
    ///
    /// Returns the clusters as lists of point indices (singletons included),
    /// ordered by smallest member.
    pub fn cluster(&self, points: &[&[f32]], sources: &[u32]) -> Vec<Vec<usize>> {
        let n = points.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(
            !self.config.source_constraint || sources.len() == n,
            "source labels required when the source constraint is enabled"
        );

        // Pairwise distance matrix between points (row-major upper storage).
        let mut point_dist = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.config.metric.distance(points[i], points[j]);
                point_dist[i * n + j] = d;
                point_dist[j * n + i] = d;
            }
        }

        // Active clusters: member lists and source bitsets (as sorted vectors).
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut cluster_sources: Vec<Vec<u32>> = if self.config.source_constraint {
            (0..n).map(|i| vec![sources[i]]).collect()
        } else {
            vec![Vec::new(); n]
        };
        let mut active: Vec<bool> = vec![true; n];

        let linkage_dist = |a: &[usize], b: &[usize]| -> f32 {
            match self.config.linkage {
                Linkage::Single => {
                    let mut best = f32::INFINITY;
                    for &i in a {
                        for &j in b {
                            best = best.min(point_dist[i * n + j]);
                        }
                    }
                    best
                }
                Linkage::Complete => {
                    let mut worst = 0.0f32;
                    for &i in a {
                        for &j in b {
                            worst = worst.max(point_dist[i * n + j]);
                        }
                    }
                    worst
                }
                Linkage::Average => {
                    let mut sum = 0.0f32;
                    for &i in a {
                        for &j in b {
                            sum += point_dist[i * n + j];
                        }
                    }
                    sum / (a.len() * b.len()) as f32
                }
            }
        };

        let sources_conflict = |a: &[u32], b: &[u32]| -> bool {
            if !self.config.source_constraint {
                return false;
            }
            a.iter().any(|s| b.contains(s))
        };

        loop {
            // Find the closest pair of active, mergeable clusters.
            let mut best: Option<(usize, usize, f32)> = None;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    if sources_conflict(&cluster_sources[i], &cluster_sources[j]) {
                        continue;
                    }
                    let d = linkage_dist(&members[i], &members[j]);
                    if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                        best = Some((i, j, d));
                    }
                }
            }
            let Some((i, j, d)) = best else { break };
            if d > self.config.distance_threshold {
                break;
            }
            // Merge j into i.
            let moved = std::mem::take(&mut members[j]);
            members[i].extend(moved);
            members[i].sort_unstable();
            if self.config.source_constraint {
                let moved_sources = std::mem::take(&mut cluster_sources[j]);
                cluster_sources[i].extend(moved_sources);
                cluster_sources[i].sort_unstable();
            }
            active[j] = false;
        }

        let mut out: Vec<Vec<usize>> = (0..n)
            .filter(|&i| active[i])
            .map(|i| members[i].clone())
            .collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(points: &[Vec<f32>]) -> Vec<&[f32]> {
        points.iter().map(|p| p.as_slice()).collect()
    }

    #[test]
    fn merges_two_obvious_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let cfg = HacConfig {
            linkage: Linkage::Average,
            distance_threshold: 1.0,
            metric: Metric::Euclidean,
            source_constraint: false,
        };
        let clusters = AgglomerativeClustering::new(cfg).cluster(&refs(&points), &[]);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4]);
    }

    #[test]
    fn threshold_zero_keeps_singletons() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let cfg = HacConfig {
            distance_threshold: 0.0,
            metric: Metric::Euclidean,
            ..HacConfig::default()
        };
        let clusters = AgglomerativeClustering::new(cfg).cluster(&refs(&points), &[]);
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn single_vs_complete_linkage_on_a_chain() {
        // A chain 0 - 1 - 2 where consecutive points are 1.0 apart.
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let single_cfg = HacConfig {
            linkage: Linkage::Single,
            distance_threshold: 1.1,
            metric: Metric::Euclidean,
            source_constraint: false,
        };
        let complete_cfg = HacConfig {
            linkage: Linkage::Complete,
            ..single_cfg.clone()
        };
        let single = AgglomerativeClustering::new(single_cfg).cluster(&refs(&points), &[]);
        let complete = AgglomerativeClustering::new(complete_cfg).cluster(&refs(&points), &[]);
        // Single linkage chains everything together; complete linkage stops at
        // the 2.0 span.
        assert_eq!(single.len(), 1);
        assert_eq!(complete.len(), 2);
    }

    #[test]
    fn source_constraint_prevents_same_source_merges() {
        // Two nearly identical points from the same source must not merge.
        let points = vec![vec![0.0], vec![0.01], vec![0.02]];
        let sources = vec![0, 0, 1];
        let cfg = HacConfig {
            distance_threshold: 1.0,
            metric: Metric::Euclidean,
            source_constraint: true,
            ..HacConfig::default()
        };
        let clusters = AgglomerativeClustering::new(cfg).cluster(&refs(&points), &sources);
        // Point 2 merges with one of the source-0 points, the other stays alone.
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            let s: Vec<u32> = c.iter().map(|&i| sources[i]).collect();
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(s.len(), dedup.len(), "cluster {c:?} has duplicate sources");
        }
    }

    #[test]
    fn empty_input() {
        let cfg = HacConfig::default();
        assert!(AgglomerativeClustering::new(cfg)
            .cluster(&[], &[])
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "source labels required")]
    fn missing_source_labels_panics_when_constrained() {
        let points = vec![vec![0.0], vec![1.0]];
        let cfg = HacConfig {
            source_constraint: true,
            ..HacConfig::default()
        };
        AgglomerativeClustering::new(cfg).cluster(&refs(&points), &[]);
    }

    #[test]
    fn cosine_metric_clusters_by_direction() {
        let points = vec![vec![1.0, 0.0], vec![2.0, 0.01], vec![0.0, 1.0]];
        let cfg = HacConfig {
            distance_threshold: 0.05,
            metric: Metric::Cosine,
            ..HacConfig::default()
        };
        let clusters = AgglomerativeClustering::new(cfg).cluster(&refs(&points), &[]);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0], vec![0, 1]);
    }
}
