//! Incremental disjoint-set union for streaming merging.
//!
//! The batch pipeline builds a fresh [`crate::UnionFind`] per two-table merge.
//! The online entity store instead maintains one long-lived partition of all
//! ingested records that must support three operations the plain structure
//! cannot offer together:
//!
//! * **growth** — new records arrive one at a time ([`DynamicUnionFind::push`]);
//! * **union** — mutual-nearest-neighbour matches merge clusters
//!   ([`DynamicUnionFind::union`]);
//! * **detach** — density-based re-pruning removes outlier records from their
//!   cluster again ([`DynamicUnionFind::detach`]).
//!
//! Classic union-find forests do not support deletions, so `detach` uses the
//! standard virtual-node construction: every external element points at an
//! internal forest node, and detaching an element simply allocates a fresh
//! internal singleton node for it. Internal nodes are never removed; the
//! orphaned node keeps the remaining cluster connected. Amortised cost of all
//! operations stays the near-constant inverse-Ackermann bound, and memory
//! grows by one node per detach (bounded by the number of prune removals).

use serde::{Deserialize, Serialize};

/// A growable disjoint-set forest over external elements `0..len()` with
/// support for detaching single elements back into singletons.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DynamicUnionFind {
    /// Internal forest: `parent[i]` is `i` for roots.
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// External element -> internal node.
    node_of: Vec<usize>,
}

impl DynamicUnionFind {
    /// Create an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create `len` external singleton elements.
    pub fn with_len(len: usize) -> Self {
        Self {
            parent: (0..len).collect(),
            rank: vec![0; len],
            node_of: (0..len).collect(),
        }
    }

    /// Number of external elements.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    fn alloc_node(&mut self) -> usize {
        let node = self.parent.len();
        self.parent.push(node);
        self.rank.push(0);
        node
    }

    /// Append a new singleton element, returning its external id.
    pub fn push(&mut self) -> usize {
        let node = self.alloc_node();
        self.node_of.push(node);
        self.node_of.len() - 1
    }

    fn find_node(&mut self, mut node: usize) -> usize {
        let mut root = node;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        while self.parent[node] != root {
            let next = self.parent[node];
            self.parent[node] = root;
            node = next;
        }
        root
    }

    /// Representative (internal root) of external element `x`.
    ///
    /// Roots are stable only until the next `union`/`detach`; treat them as
    /// transient cluster keys, exactly like [`crate::UnionFind::find`].
    pub fn find(&mut self, x: usize) -> usize {
        let node = self.node_of[x];
        self.find_node(node)
    }

    /// Representative of `x` without path compression; usable behind shared
    /// references (serving-path reads) at the cost of longer parent walks.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut node = self.node_of[x];
        while self.parent[node] != node {
            node = self.parent[node];
        }
        node
    }

    /// Merge the clusters of external elements `a` and `b`. Returns the root
    /// that survived, or `None` when they were already in the same cluster.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        Some(big)
    }

    /// Whether `a` and `b` are currently in the same cluster.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Detach external element `x` from its cluster into a fresh singleton.
    /// Returns the new internal root of `x`.
    ///
    /// The rest of `x`'s former cluster is unaffected (it keeps its root even
    /// if that root was `x`'s old node, which simply becomes an orphaned
    /// internal node).
    pub fn detach(&mut self, x: usize) -> usize {
        let node = self.alloc_node();
        self.node_of[x] = node;
        node
    }

    /// Materialise all clusters as lists of external elements. Clusters are
    /// ordered by their smallest member; members are sorted ascending.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.len() {
            let root = self.find(x);
            map.entry(root).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Like [`DynamicUnionFind::groups`] but only clusters with at least
    /// `min_size` members.
    pub fn groups_min_size(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        self.groups()
            .into_iter()
            .filter(|g| g.len() >= min_size)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_union_find_roundtrip() {
        let mut uf = DynamicUnionFind::new();
        let a = uf.push();
        let b = uf.push();
        let c = uf.push();
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(uf.union(a, b).is_some());
        assert!(uf.union(a, b).is_none(), "already merged");
        assert!(uf.connected(a, b));
        assert!(!uf.connected(a, c));
        assert_eq!(uf.groups(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn with_len_matches_pushes() {
        let mut a = DynamicUnionFind::with_len(4);
        let mut b = DynamicUnionFind::new();
        for _ in 0..4 {
            b.push();
        }
        assert_eq!(a.groups(), b.groups());
    }

    #[test]
    fn detach_splits_single_element_out() {
        let mut uf = DynamicUnionFind::with_len(4);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.detach(1);
        assert!(uf.connected(0, 2), "remaining cluster must stay connected");
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.groups(), vec![vec![0, 2], vec![1], vec![3]]);
        // The detached element can join clusters again.
        uf.union(1, 3);
        assert_eq!(uf.groups(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn detach_of_root_element_keeps_others_together() {
        let mut uf = DynamicUnionFind::with_len(3);
        uf.union(0, 1);
        uf.union(0, 2);
        // Whichever internal node is the root, detaching element 0 must leave
        // 1 and 2 connected.
        uf.detach(0);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn groups_min_size_filters_singletons() {
        let mut uf = DynamicUnionFind::with_len(5);
        uf.union(0, 4);
        uf.union(2, 3);
        assert_eq!(uf.groups_min_size(2), vec![vec![0, 4], vec![2, 3]]);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = DynamicUnionFind::with_len(6);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.detach(3);
        for x in 0..6 {
            assert_eq!(uf.find_immutable(x), uf.find(x));
        }
    }

    #[test]
    fn growth_after_unions() {
        let mut uf = DynamicUnionFind::with_len(2);
        uf.union(0, 1);
        let c = uf.push();
        assert_eq!(c, 2);
        assert!(!uf.connected(0, c));
        uf.union(c, 0);
        assert_eq!(uf.groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = DynamicUnionFind::new();
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
