//! Disjoint-set union (union-find) with path compression and union by rank.
//!
//! Used to apply transitivity when aggregating matched pairs into tuples: if
//! `A` matches `B` and `B` matches `C`, all three end up in the same set.

/// A disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    groups: usize,
}

impl UnionFind {
    /// Create `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len).collect(),
            rank: vec![0; len],
            groups: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Find the representative of `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Find without mutating (no path compression); useful behind shared refs.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.groups -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Materialise all sets as lists of member indices. Sets are ordered by
    /// their smallest member; members are sorted ascending.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..self.len() {
            let root = self.find(i);
            map.entry(root).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Like [`UnionFind::groups`] but only returns sets with at least
    /// `min_size` members.
    pub fn groups_min_size(&mut self, min_size: usize) -> Vec<Vec<usize>> {
        self.groups()
            .into_iter()
            .filter(|g| g.len() >= min_size)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_groups(), 4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.groups().len(), 4);
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.num_groups(), 3);
    }

    #[test]
    fn groups_are_sorted_and_complete() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(0, 2);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3, 5], vec![4]]);
        let multi = uf.groups_min_size(2);
        assert_eq!(multi, vec![vec![0, 2], vec![3, 5]]);
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(7, 3);
        let root_mut = uf.find(3);
        let root_imm = uf.find_immutable(0);
        assert_eq!(root_mut, root_imm);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.groups().len(), 0);
    }

    #[test]
    fn chain_unions_collapse_to_one_group() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_groups(), 1);
        assert_eq!(uf.groups()[0].len(), n);
    }
}
