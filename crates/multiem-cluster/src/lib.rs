//! Clustering substrate for MultiEM.
//!
//! Three different parts of the reproduction need clustering machinery:
//!
//! * the **pruning phase** of MultiEM classifies the entities of every merged
//!   tuple into core / reachable / outlier entities with DBSCAN-style density
//!   definitions (Definitions 3–5, Algorithm 4) — [`dbscan`];
//! * the **merging phase** aggregates matched pairs into tuples through
//!   transitivity — [`union_find`];
//! * the **baselines** MSCD-HAC and MSCD-AP are clustering algorithms
//!   (source-aware hierarchical agglomerative clustering and affinity
//!   propagation) — [`hac`] and [`affinity`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod dbscan;
pub mod hac;
pub mod incremental;
pub mod union_find;

pub use affinity::{AffinityPropagation, AffinityPropagationConfig};
pub use dbscan::{classify_points, dbscan, DbscanConfig, DbscanResult, PointClass};
pub use hac::{AgglomerativeClustering, HacConfig, Linkage};
pub use incremental::DynamicUnionFind;
pub use union_find::UnionFind;
