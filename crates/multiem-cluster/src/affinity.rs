//! Affinity propagation clustering (Frey & Dueck, Science 2007).
//!
//! Substrate behind the MSCD-AP baseline (Lerm, Saeedi & Rahm, BTW 2021):
//! entities exchange "responsibility" and "availability" messages until a set
//! of exemplars emerges; every entity is then assigned to its best exemplar.
//! The implementation operates on a dense similarity matrix, so its quadratic
//! memory footprint and cubic-ish runtime mirror the scalability problems the
//! paper attributes to clustering-based multi-table EM.

use multiem_ann::Metric;
use serde::{Deserialize, Serialize};

/// Configuration of [`AffinityPropagation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AffinityPropagationConfig {
    /// Damping factor in `[0.5, 1)` applied to message updates.
    pub damping: f32,
    /// Maximum number of message-passing iterations.
    pub max_iterations: usize,
    /// Stop early when exemplar assignments have been stable for this many
    /// consecutive iterations.
    pub convergence_iterations: usize,
    /// Self-similarity (preference). `None` uses the median pairwise
    /// similarity, the standard default.
    pub preference: Option<f32>,
    /// Distance metric; similarities are negated distances.
    pub metric: Metric,
}

impl Default for AffinityPropagationConfig {
    fn default() -> Self {
        Self {
            damping: 0.7,
            max_iterations: 200,
            convergence_iterations: 15,
            preference: None,
            metric: Metric::Cosine,
        }
    }
}

/// Affinity propagation clusterer.
#[derive(Debug, Clone)]
pub struct AffinityPropagation {
    config: AffinityPropagationConfig,
}

impl AffinityPropagation {
    /// Create a clusterer with the given configuration.
    pub fn new(config: AffinityPropagationConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AffinityPropagationConfig {
        &self.config
    }

    /// Cluster `points`. Returns clusters as lists of point indices (ordered by
    /// smallest member, singletons included).
    pub fn cluster(&self, points: &[&[f32]]) -> Vec<Vec<usize>> {
        let n = points.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![vec![0]];
        }

        // Similarity matrix: s(i, k) = -distance(i, k).
        let mut sim = vec![0.0f32; n * n];
        let mut offdiag: Vec<f32> = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for k in 0..n {
                if i == k {
                    continue;
                }
                let s = -self.config.metric.distance(points[i], points[k]);
                sim[i * n + k] = s;
                offdiag.push(s);
            }
        }
        let preference = self.config.preference.unwrap_or_else(|| {
            offdiag.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            offdiag[offdiag.len() / 2]
        });
        for i in 0..n {
            sim[i * n + i] = preference;
        }

        let mut resp = vec![0.0f32; n * n];
        let mut avail = vec![0.0f32; n * n];
        let damping = self.config.damping.clamp(0.5, 0.99);

        let mut last_exemplars: Vec<usize> = Vec::new();
        let mut stable_for = 0usize;

        for _ in 0..self.config.max_iterations {
            // Responsibilities: r(i,k) = s(i,k) - max_{k' != k} (a(i,k') + s(i,k')).
            for i in 0..n {
                // Track the two largest a + s values for row i.
                let mut best = f32::NEG_INFINITY;
                let mut second = f32::NEG_INFINITY;
                let mut best_k = 0usize;
                for k in 0..n {
                    let v = avail[i * n + k] + sim[i * n + k];
                    if v > best {
                        second = best;
                        best = v;
                        best_k = k;
                    } else if v > second {
                        second = v;
                    }
                }
                for k in 0..n {
                    let cap = if k == best_k { second } else { best };
                    let new_r = sim[i * n + k] - cap;
                    resp[i * n + k] = damping * resp[i * n + k] + (1.0 - damping) * new_r;
                }
            }

            // Availabilities:
            // a(i,k) = min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k)))   (i != k)
            // a(k,k) = sum_{i' != k} max(0, r(i',k)).
            for k in 0..n {
                let mut positive_sum = 0.0f32;
                for i in 0..n {
                    if i != k {
                        positive_sum += resp[i * n + k].max(0.0);
                    }
                }
                for i in 0..n {
                    let new_a = if i == k {
                        positive_sum
                    } else {
                        let without_i = positive_sum - resp[i * n + k].max(0.0);
                        (resp[k * n + k] + without_i).min(0.0)
                    };
                    avail[i * n + k] = damping * avail[i * n + k] + (1.0 - damping) * new_a;
                }
            }

            // Current exemplars.
            let exemplars: Vec<usize> = (0..n)
                .filter(|&k| resp[k * n + k] + avail[k * n + k] > 0.0)
                .collect();
            if exemplars == last_exemplars && !exemplars.is_empty() {
                stable_for += 1;
                if stable_for >= self.config.convergence_iterations {
                    break;
                }
            } else {
                stable_for = 0;
                last_exemplars = exemplars;
            }
        }

        let mut exemplars: Vec<usize> = (0..n)
            .filter(|&k| resp[k * n + k] + avail[k * n + k] > 0.0)
            .collect();
        if exemplars.is_empty() {
            // Degenerate case: fall back to the point with the highest self-evidence.
            let best = (0..n)
                .max_by(|&a, &b| {
                    let va = resp[a * n + a] + avail[a * n + a];
                    let vb = resp[b * n + b] + avail[b * n + b];
                    va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            exemplars.push(best);
        }

        // Assign every point to its most similar exemplar (exemplars assign to
        // themselves).
        let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> =
            exemplars.iter().map(|&e| (e, Vec::new())).collect();
        for i in 0..n {
            let target = if exemplars.contains(&i) {
                i
            } else {
                *exemplars
                    .iter()
                    .max_by(|&&a, &&b| {
                        sim[i * n + a]
                            .partial_cmp(&sim[i * n + b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("at least one exemplar")
            };
            clusters
                .get_mut(&target)
                .expect("exemplar cluster exists")
                .push(i);
        }

        let mut out: Vec<Vec<usize>> = clusters.into_values().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(points: &[Vec<f32>]) -> Vec<&[f32]> {
        points.iter().map(|p| p.as_slice()).collect()
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ];
        let cfg = AffinityPropagationConfig {
            metric: Metric::Euclidean,
            ..Default::default()
        };
        let clusters = AffinityPropagation::new(cfg).cluster(&refs(&points));
        assert_eq!(clusters.len(), 2, "clusters: {clusters:?}");
        assert_eq!(clusters[0], vec![0, 1, 2]);
        assert_eq!(clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn every_point_assigned_exactly_once() {
        let points: Vec<Vec<f32>> = (0..12)
            .map(|i| vec![(i % 4) as f32 * 3.0, (i / 4) as f32 * 3.0])
            .collect();
        let cfg = AffinityPropagationConfig {
            metric: Metric::Euclidean,
            ..Default::default()
        };
        let clusters = AffinityPropagation::new(cfg).cluster(&refs(&points));
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn single_and_empty_inputs() {
        let cfg = AffinityPropagationConfig::default();
        let ap = AffinityPropagation::new(cfg);
        assert!(ap.cluster(&[]).is_empty());
        let one = vec![vec![1.0, 2.0]];
        assert_eq!(ap.cluster(&refs(&one)), vec![vec![0]]);
    }

    #[test]
    fn identical_points_form_one_cluster() {
        let points = vec![vec![1.0, 1.0]; 5];
        let cfg = AffinityPropagationConfig {
            metric: Metric::Euclidean,
            ..Default::default()
        };
        let clusters = AffinityPropagation::new(cfg).cluster(&refs(&points));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 5);
    }

    #[test]
    fn low_preference_reduces_cluster_count() {
        let points: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32]).collect();
        let many_cfg = AffinityPropagationConfig {
            metric: Metric::Euclidean,
            preference: Some(-0.1),
            ..Default::default()
        };
        let few_cfg = AffinityPropagationConfig {
            metric: Metric::Euclidean,
            preference: Some(-50.0),
            ..Default::default()
        };
        let many = AffinityPropagation::new(many_cfg)
            .cluster(&refs(&points))
            .len();
        let few = AffinityPropagation::new(few_cfg)
            .cluster(&refs(&points))
            .len();
        assert!(many >= few, "many={many} few={few}");
    }
}
