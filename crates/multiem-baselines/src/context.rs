//! Shared, pre-computed inputs handed to every baseline.

use multiem_core::{AttributeSelection, EmbeddingStore, MultiEmConfig};
use multiem_embed::EmbeddingModel;
use multiem_eval::LabeledPair;
use multiem_table::{serialize_record, Dataset, EntityId, SerializeOptions};
use std::collections::HashSet;

/// Pre-computed context shared by all baselines on one dataset:
/// entity embeddings (all attributes — baselines do not run attribute
/// selection), serialized texts, token sets and the labelled sample available
/// to supervised methods.
pub struct MatchContext<'a> {
    /// The dataset under evaluation.
    pub dataset: &'a Dataset,
    /// Embeddings of every entity (serialized with **all** attributes).
    pub store: EmbeddingStore,
    /// Serialized text per entity, indexed `[source][row]`.
    pub texts: Vec<Vec<String>>,
    /// Lowercased token sets per entity, indexed `[source][row]`.
    pub token_sets: Vec<Vec<HashSet<String>>>,
    /// Labelled pairs available to supervised baselines (empty for
    /// unsupervised methods).
    pub labeled: Vec<LabeledPair>,
}

impl<'a> MatchContext<'a> {
    /// Build the context: serialize and embed every entity, tokenize the
    /// serialized text, and attach the labelled sample.
    pub fn build(
        dataset: &'a Dataset,
        encoder: &dyn EmbeddingModel,
        labeled: Vec<LabeledPair>,
    ) -> Self {
        let opts = SerializeOptions::default();
        let config = MultiEmConfig {
            serialize: opts.clone(),
            ..MultiEmConfig::default()
        };
        let selection = AttributeSelection::all_attributes(dataset);
        let store = EmbeddingStore::build(dataset, encoder, &selection.selected, &config);

        let mut texts: Vec<Vec<String>> = Vec::with_capacity(dataset.num_sources());
        let mut token_sets: Vec<Vec<HashSet<String>>> = Vec::with_capacity(dataset.num_sources());
        for table in dataset.tables() {
            let mut t_texts = Vec::with_capacity(table.len());
            let mut t_tokens = Vec::with_capacity(table.len());
            for (_, record) in table.iter() {
                let text = serialize_record(record, &opts);
                let tokens: HashSet<String> =
                    text.split_whitespace().map(|t| t.to_string()).collect();
                t_texts.push(text);
                t_tokens.push(tokens);
            }
            texts.push(t_texts);
            token_sets.push(t_tokens);
        }
        Self {
            dataset,
            store,
            texts,
            token_sets,
            labeled,
        }
    }

    /// Serialized text of one entity.
    pub fn text(&self, id: EntityId) -> &str {
        &self.texts[id.source as usize][id.row as usize]
    }

    /// Token set of one entity.
    pub fn tokens(&self, id: EntityId) -> &HashSet<String> {
        &self.token_sets[id.source as usize][id.row as usize]
    }

    /// Embedding of one entity.
    pub fn embedding(&self, id: EntityId) -> &[f32] {
        self.store.embedding(id)
    }

    /// Token Jaccard similarity between two entities.
    pub fn jaccard(&self, a: EntityId, b: EntityId) -> f32 {
        let ta = self.tokens(a);
        let tb = self.tokens(b);
        if ta.is_empty() && tb.is_empty() {
            return 0.0;
        }
        let inter = ta.intersection(tb).count() as f32;
        let union = (ta.len() + tb.len()) as f32 - inter;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Cosine similarity between two entities' embeddings.
    pub fn cosine(&self, a: EntityId, b: EntityId) -> f32 {
        multiem_embed::cosine_similarity(self.embedding(a), self.embedding(b))
    }

    /// All entity ids of one source table.
    pub fn source_entities(&self, source: u32) -> Vec<EntityId> {
        (0..self.texts[source as usize].len() as u32)
            .map(|row| EntityId::new(source, row))
            .collect()
    }

    /// Accounted bytes of the context's large structures (embeddings + texts).
    pub fn approx_bytes(&self) -> usize {
        let text_bytes: usize = self
            .texts
            .iter()
            .flat_map(|t| t.iter().map(String::len))
            .sum();
        let token_bytes: usize = self
            .token_sets
            .iter()
            .flat_map(|t| t.iter().map(|s| s.iter().map(String::len).sum::<usize>()))
            .sum();
        self.store.approx_bytes() + text_bytes + token_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;

    fn dataset() -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        MultiSourceGenerator::new(GeneratorConfig::small_test("ctx", 3))
            .generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn context_exposes_texts_tokens_and_embeddings() {
        let ds = dataset();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let id = ds.entity_ids().next().unwrap();
        assert!(!ctx.text(id).is_empty());
        assert!(!ctx.tokens(id).is_empty());
        assert_eq!(ctx.embedding(id).len(), encoder.dim());
        assert_eq!(ctx.source_entities(0).len(), ds.table(0).unwrap().len());
        assert!(ctx.approx_bytes() > 0);
    }

    #[test]
    fn jaccard_and_cosine_are_sane() {
        let ds = dataset();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let gt = ds.ground_truth().unwrap();
        let (a, b) = *gt.pairs().iter().next().unwrap();
        // Matched entities share tokens and embedding direction.
        assert!(ctx.jaccard(a, b) > 0.2);
        assert!(ctx.cosine(a, b) > 0.4);
        // Self-similarity is maximal.
        assert!((ctx.jaccard(a, a) - 1.0).abs() < 1e-6);
        assert!(ctx.cosine(a, a) > 0.99);
    }
}
