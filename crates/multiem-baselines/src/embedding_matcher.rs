//! A generic unsupervised two-table matcher: mutual nearest neighbours over
//! entity embeddings with a similarity threshold.
//!
//! This is the "vanilla" representation-based two-table EM method the paper's
//! complexity analysis assumes (mutual top-K search); it is used as the base
//! matcher for ablation-style comparisons of the pairwise / chain extensions
//! against hierarchical merging.

use crate::context::MatchContext;
use crate::{MatchedPair, TwoTableMatcher};
use multiem_ann::{BruteForceIndex, Metric};
use multiem_table::EntityId;

/// Mutual-nearest-neighbour matcher over embeddings with a cosine-similarity
/// threshold.
#[derive(Debug, Clone)]
pub struct EmbeddingThresholdMatcher {
    /// Minimum cosine similarity for a match.
    pub min_similarity: f32,
    /// Top-K bound of the mutual check.
    pub k: usize,
}

impl Default for EmbeddingThresholdMatcher {
    fn default() -> Self {
        Self {
            min_similarity: 0.65,
            k: 1,
        }
    }
}

impl TwoTableMatcher for EmbeddingThresholdMatcher {
    fn name(&self) -> &str {
        "EmbedMNN"
    }

    fn match_collections(
        &self,
        ctx: &MatchContext<'_>,
        left: &[EntityId],
        right: &[EntityId],
    ) -> Vec<MatchedPair> {
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        let dim = ctx.store.dim();
        let left_index = BruteForceIndex::from_vectors(
            dim,
            Metric::Cosine,
            left.iter().map(|&id| ctx.embedding(id)),
        );
        let right_index = BruteForceIndex::from_vectors(
            dim,
            Metric::Cosine,
            right.iter().map(|&id| ctx.embedding(id)),
        );
        let max_distance = 1.0 - self.min_similarity;
        let left_vecs: Vec<&[f32]> = left.iter().map(|&id| ctx.embedding(id)).collect();
        let right_vecs: Vec<&[f32]> = right.iter().map(|&id| ctx.embedding(id)).collect();
        multiem_ann::mutual_top_k(
            &left_index,
            &right_index,
            &left_vecs,
            &right_vecs,
            self.k,
            max_distance,
        )
        .into_iter()
        .map(|m| MatchedPair::new(left[m.left], right[m.right], 1.0 - m.distance))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;

    #[test]
    fn finds_cross_source_matches_on_clean_data() {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::none());
        let ds = MultiSourceGenerator::new(GeneratorConfig::small_test("emb-mnn", 2))
            .generate(factory.as_ref(), &corruptor);
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let matcher = EmbeddingThresholdMatcher::default();
        let pairs =
            matcher.match_collections(&ctx, &ctx.source_entities(0), &ctx.source_entities(1));
        assert!(!pairs.is_empty());
        // Every returned pair crosses the two collections and scores above threshold.
        for p in &pairs {
            assert_eq!(p.a.source, 0);
            assert_eq!(p.b.source, 1);
            assert!(p.score >= matcher.min_similarity);
        }
        // Recall against ground truth restricted to sources 0/1 should be high
        // on uncorrupted data.
        let gt: Vec<_> = ds
            .ground_truth()
            .unwrap()
            .pairs()
            .into_iter()
            .filter(|(a, b)| a.source == 0 && b.source == 1)
            .collect();
        let found: std::collections::BTreeSet<_> =
            pairs.iter().map(|p| (p.a.min(p.b), p.a.max(p.b))).collect();
        let hit = gt.iter().filter(|p| found.contains(p)).count();
        assert!(
            hit as f64 >= 0.9 * gt.len() as f64,
            "recall {hit}/{}",
            gt.len()
        );
    }

    #[test]
    fn empty_collections_return_nothing() {
        let factory = Domain::Geo.factory();
        let corruptor = Corruptor::new(CorruptionConfig::none());
        let ds = MultiSourceGenerator::new(GeneratorConfig::small_test("emb-empty", 2))
            .generate(factory.as_ref(), &corruptor);
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let matcher = EmbeddingThresholdMatcher::default();
        assert!(matcher
            .match_collections(&ctx, &[], &ctx.source_entities(0))
            .is_empty());
        assert!(matcher
            .match_collections(&ctx, &ctx.source_entities(0), &[])
            .is_empty());
        assert_eq!(matcher.name(), "EmbedMNN");
    }
}
