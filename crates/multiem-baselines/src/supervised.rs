//! Supervised two-table matcher — the Ditto / PromptEM stand-in.
//!
//! The real baselines fine-tune pre-trained language models on a 5 % labelled
//! sample. Running a transformer is out of scope offline, so this matcher
//! keeps the evaluation-relevant structure: it *requires labelled pairs*,
//! learns a pair classifier from them (logistic regression over lexical and
//! embedding similarity features), and is applied to candidate pairs produced
//! by a cheap blocking step (top-K embedding neighbours). Its behaviour under
//! the pairwise / chain extensions — including the transitive-conflict
//! failure mode — matches the role Ditto/PromptEM play in Table IV.

use crate::context::MatchContext;
use crate::lr::LogisticRegression;
use crate::{MatchedPair, TwoTableMatcher};
use multiem_ann::{BruteForceIndex, Metric, VectorIndex};
use multiem_table::EntityId;
use serde::{Deserialize, Serialize};

/// Configuration of the supervised matcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedConfig {
    /// Number of blocking candidates per left entity.
    pub block_k: usize,
    /// Classification threshold on the predicted match probability.
    pub decision_threshold: f64,
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        Self {
            block_k: 3,
            decision_threshold: 0.5,
        }
    }
}

/// Pair features used by the classifier.
fn pair_features(ctx: &MatchContext<'_>, a: EntityId, b: EntityId) -> Vec<f64> {
    let cosine = f64::from(ctx.cosine(a, b));
    let jaccard = f64::from(ctx.jaccard(a, b));
    let ta = ctx.text(a);
    let tb = ctx.text(b);
    let len_a = ta.split_whitespace().count() as f64;
    let len_b = tb.split_whitespace().count() as f64;
    let len_ratio = if len_a.max(len_b) == 0.0 {
        1.0
    } else {
        len_a.min(len_b) / len_a.max(len_b)
    };
    // Shared-prefix indicator: first token equal.
    let first_equal = match (ta.split_whitespace().next(), tb.split_whitespace().next()) {
        (Some(x), Some(y)) if x == y => 1.0,
        _ => 0.0,
    };
    vec![cosine, jaccard, len_ratio, first_equal]
}

/// The supervised pair matcher (Ditto / PromptEM stand-in).
#[derive(Debug, Clone)]
pub struct SupervisedMatcher {
    name: String,
    config: SupervisedConfig,
    model: LogisticRegression,
    trained: bool,
}

impl SupervisedMatcher {
    /// Create an untrained matcher; call [`SupervisedMatcher::train`] before use.
    pub fn new(name: impl Into<String>, config: SupervisedConfig) -> Self {
        Self {
            name: name.into(),
            config,
            model: LogisticRegression::new(4),
            trained: false,
        }
    }

    /// A matcher playing the role of Ditto: standard fine-tuning, a tighter
    /// decision threshold (higher precision, lower recall).
    pub fn ditto_like() -> Self {
        Self::new(
            "Ditto",
            SupervisedConfig {
                block_k: 3,
                decision_threshold: 0.55,
            },
        )
    }

    /// A matcher playing the role of PromptEM: prompt-tuning is stronger in
    /// the low-resource regime, modelled as a wider candidate set and a more
    /// permissive threshold (higher recall).
    pub fn promptem_like() -> Self {
        Self::new(
            "PromptEM",
            SupervisedConfig {
                block_k: 4,
                decision_threshold: 0.45,
            },
        )
    }

    /// Whether the model has been trained on at least one example of each class.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train the pair classifier on the context's labelled sample.
    pub fn train(&mut self, ctx: &MatchContext<'_>) {
        let examples: Vec<(Vec<f64>, bool)> = ctx
            .labeled
            .iter()
            .map(|p| (pair_features(ctx, p.a, p.b), p.label))
            .collect();
        self.trained = self.model.fit(&examples);
    }

    /// Probability that `a` and `b` match.
    pub fn match_probability(&self, ctx: &MatchContext<'_>, a: EntityId, b: EntityId) -> f64 {
        self.model.predict_proba(&pair_features(ctx, a, b))
    }
}

impl TwoTableMatcher for SupervisedMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn match_collections(
        &self,
        ctx: &MatchContext<'_>,
        left: &[EntityId],
        right: &[EntityId],
    ) -> Vec<MatchedPair> {
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        // Blocking: top-K embedding neighbours of every left entity.
        let dim = ctx.store.dim();
        let right_index = BruteForceIndex::from_vectors(
            dim,
            Metric::Cosine,
            right.iter().map(|&id| ctx.embedding(id)),
        );
        let mut out = Vec::new();
        for &l in left {
            for n in right_index.search(ctx.embedding(l), self.config.block_k) {
                let r = right[n.index];
                let p = self.match_probability(ctx, l, r);
                if p >= self.config.decision_threshold {
                    out.push(MatchedPair::new(l, r, p as f32));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchContext;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_eval::{sample_labeled_pairs, SamplingConfig};
    use multiem_table::Dataset;

    fn dataset() -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig {
            name: "supervised".into(),
            num_sources: 3,
            num_tuples: 60,
            num_singletons: 20,
            min_tuple_size: 2,
            max_tuple_size: 3,
            seed: 13,
        };
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    fn trained_ctx_and_matcher(ds: &Dataset) -> (MatchContext<'_>, SupervisedMatcher) {
        let encoder = HashedLexicalEncoder::default();
        let sampling = SamplingConfig {
            positive_fraction: 0.3,
            negatives_per_positive: 3,
            seed: 2,
        };
        let labeled = sample_labeled_pairs(ds, &sampling);
        let ctx = MatchContext::build(ds, &encoder, labeled);
        let mut matcher = SupervisedMatcher::ditto_like();
        matcher.train(&ctx);
        (ctx, matcher)
    }

    #[test]
    fn trains_and_separates_matches_from_non_matches() {
        let ds = dataset();
        let (ctx, matcher) = trained_ctx_and_matcher(&ds);
        assert!(matcher.is_trained());
        let truth: Vec<_> = ds.ground_truth().unwrap().pairs().into_iter().collect();
        let (a, b) = truth[0];
        let p_match = matcher.match_probability(&ctx, a, b);
        // A clearly unrelated cross-source pair.
        let c = truth[1].0;
        let d = truth[truth.len() - 1].1;
        let p_non = matcher.match_probability(&ctx, c, d);
        assert!(p_match > p_non, "match prob {p_match} vs non-match {p_non}");
        assert!(p_match > 0.5);
    }

    #[test]
    fn match_collections_has_reasonable_quality() {
        let ds = dataset();
        let (ctx, matcher) = trained_ctx_and_matcher(&ds);
        let pairs =
            matcher.match_collections(&ctx, &ctx.source_entities(0), &ctx.source_entities(1));
        assert!(!pairs.is_empty());
        let truth = ds.ground_truth().unwrap().pairs();
        let correct = pairs
            .iter()
            .filter(|p| truth.contains(&(p.a.min(p.b), p.a.max(p.b))))
            .count();
        let precision = correct as f64 / pairs.len() as f64;
        assert!(precision > 0.6, "precision {precision}");
    }

    #[test]
    fn untrained_matcher_still_runs_without_panicking() {
        let ds = dataset();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let matcher = SupervisedMatcher::promptem_like();
        assert!(!matcher.is_trained());
        assert_eq!(matcher.name(), "PromptEM");
        // Untrained model predicts 0.5 everywhere; with threshold 0.5 it may
        // emit pairs, but it must not panic and scores stay in [0, 1].
        let pairs =
            matcher.match_collections(&ctx, &ctx.source_entities(0), &ctx.source_entities(1));
        for p in pairs {
            assert!((0.0..=1.0).contains(&p.score));
        }
    }

    #[test]
    fn empty_collections() {
        let ds = dataset();
        let (ctx, matcher) = trained_ctx_and_matcher(&ds);
        assert!(matcher
            .match_collections(&ctx, &[], &ctx.source_entities(0))
            .is_empty());
    }
}
