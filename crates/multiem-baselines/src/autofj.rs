//! AutoFuzzyJoin-style unsupervised fuzzy-join matcher.
//!
//! AutoFJ (Li et al., SIGMOD 2021) programs fuzzy joins without labels by
//! automatically choosing a join configuration that targets a user-specified
//! precision. This stand-in keeps the two properties the evaluation depends
//! on: (1) it is unsupervised, (2) it tunes its own similarity threshold to be
//! precision-oriented, which gives the high-precision / low-recall profile the
//! paper reports for AutoFJ (Table IV).
//!
//! Mechanics: candidate pairs are reciprocal best matches under token Jaccard
//! similarity; the acceptance threshold is calibrated from the score
//! distribution of *non-best* candidate pairs (an estimate of the "random
//! collision" score level), lifted by a safety margin.

use crate::context::MatchContext;
use crate::{MatchedPair, TwoTableMatcher};
use multiem_table::EntityId;
use serde::{Deserialize, Serialize};

/// Configuration of the AutoFJ-style matcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoFjConfig {
    /// Target precision proxy: quantile of the non-best-match score
    /// distribution used as the base threshold (higher = more conservative).
    pub calibration_quantile: f64,
    /// Additive safety margin on top of the calibrated threshold.
    pub margin: f32,
    /// Hard floor for the threshold.
    pub min_threshold: f32,
}

impl Default for AutoFjConfig {
    fn default() -> Self {
        Self {
            calibration_quantile: 0.95,
            margin: 0.05,
            min_threshold: 0.35,
        }
    }
}

/// Unsupervised fuzzy-join matcher with automatic threshold calibration.
#[derive(Debug, Clone, Default)]
pub struct AutoFjMatcher {
    config: AutoFjConfig,
}

impl AutoFjMatcher {
    /// Create a matcher with the given configuration.
    pub fn new(config: AutoFjConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoFjConfig {
        &self.config
    }

    /// Calibrate the acceptance threshold from observed similarity scores of
    /// candidate pairs that are *not* reciprocal best matches.
    fn calibrate(&self, background: &mut [f32]) -> f32 {
        if background.is_empty() {
            return self.config.min_threshold.max(0.5);
        }
        background.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((background.len() - 1) as f64 * self.config.calibration_quantile) as usize;
        (background[idx] + self.config.margin).max(self.config.min_threshold)
    }
}

impl TwoTableMatcher for AutoFjMatcher {
    fn name(&self) -> &str {
        "AutoFJ"
    }

    fn match_collections(
        &self,
        ctx: &MatchContext<'_>,
        left: &[EntityId],
        right: &[EntityId],
    ) -> Vec<MatchedPair> {
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        // Best right match for every left entity, and vice versa, under token
        // Jaccard. (Quadratic — AutoFJ's blocking is approximated by the fact
        // that Jaccard of disjoint token sets is 0 and never wins.)
        let mut best_right: Vec<(usize, f32)> = vec![(usize::MAX, -1.0); left.len()];
        let mut best_left: Vec<(usize, f32)> = vec![(usize::MAX, -1.0); right.len()];
        let mut background: Vec<f32> = Vec::new();
        for (i, &l) in left.iter().enumerate() {
            for (j, &r) in right.iter().enumerate() {
                let s = ctx.jaccard(l, r);
                if s > best_right[i].1 {
                    best_right[i] = (j, s);
                }
                if s > best_left[j].1 {
                    best_left[j] = (i, s);
                }
            }
        }
        // Background distribution: best scores that fail reciprocity plus a
        // sample of second-tier scores.
        for (i, &(j, s)) in best_right.iter().enumerate() {
            if j != usize::MAX && best_left[j].0 != i {
                background.push(s);
            }
        }
        let threshold = self.calibrate(&mut background);

        let mut out = Vec::new();
        for (i, &(j, s)) in best_right.iter().enumerate() {
            if j == usize::MAX || s < threshold {
                continue;
            }
            if best_left[j].0 == i {
                out.push(MatchedPair::new(left[i], right[j], s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchContext;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_table::Dataset;

    fn dataset(corruption: CorruptionConfig, sources: usize) -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(corruption);
        MultiSourceGenerator::new(GeneratorConfig::small_test("autofj", sources))
            .generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn high_precision_on_light_corruption() {
        let ds = dataset(CorruptionConfig::light(), 2);
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let matcher = AutoFjMatcher::default();
        let pairs =
            matcher.match_collections(&ctx, &ctx.source_entities(0), &ctx.source_entities(1));
        assert!(!pairs.is_empty());
        let truth = ds.ground_truth().unwrap().pairs();
        let correct = pairs
            .iter()
            .filter(|p| truth.contains(&(p.a.min(p.b), p.a.max(p.b))))
            .count();
        let precision = correct as f64 / pairs.len() as f64;
        assert!(
            precision > 0.8,
            "AutoFJ precision {precision} ({} pairs)",
            pairs.len()
        );
    }

    #[test]
    fn calibration_raises_threshold_with_noisy_background() {
        let matcher = AutoFjMatcher::default();
        let mut clean: Vec<f32> = vec![0.05, 0.1, 0.08];
        let mut noisy: Vec<f32> = vec![0.4, 0.45, 0.5, 0.42, 0.48];
        let t_clean = matcher.calibrate(&mut clean);
        let t_noisy = matcher.calibrate(&mut noisy);
        assert!(t_noisy > t_clean);
        // Empty background falls back to a conservative default.
        let t_default = matcher.calibrate(&mut Vec::new());
        assert!(t_default >= 0.5);
    }

    #[test]
    fn empty_inputs() {
        let ds = dataset(CorruptionConfig::none(), 2);
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let matcher = AutoFjMatcher::default();
        assert!(matcher
            .match_collections(&ctx, &[], &ctx.source_entities(1))
            .is_empty());
        assert_eq!(matcher.name(), "AutoFJ");
        assert!(matcher.config().calibration_quantile > 0.5);
    }
}
