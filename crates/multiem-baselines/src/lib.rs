//! Baseline multi-table entity-matching methods used in the paper's evaluation.
//!
//! The paper compares MultiEM against five baselines (Table IV). Each is
//! reimplemented here, with documented substitutions where the original relies
//! on assets that cannot ship with this repository (pre-trained language
//! models, active-learning oracles):
//!
//! | Paper baseline | This crate | Notes |
//! |---|---|---|
//! | PromptEM / Ditto (pairwise & chain) | [`SupervisedMatcher`] under [`PairwiseExtension`] / [`ChainExtension`] | logistic-regression matcher over lexical-similarity features, trained on the 5 % labelled sample — the stand-in for PLM fine-tuning |
//! | AutoFuzzyJoin (pairwise & chain) | [`AutoFjMatcher`] | unsupervised fuzzy join with automatic threshold calibration targeting high precision |
//! | ALMSER-GB | [`AlmserGb`] | graph-boosted active learning over a pair-similarity graph with a label budget |
//! | MSCD-HAC | [`MscdHac`] | source-aware hierarchical agglomerative clustering |
//! | MSCD-AP (related work) | [`MscdAp`] | affinity propagation clustering |
//!
//! Two-table methods are lifted to the multi-table setting exactly as in the
//! paper: **pairwise matching** (every pair of tables) or **chain matching**
//! (fold tables into a growing base table), followed by the pairs-to-tuples
//! conversion of Algorithm 5 ([`pairs_to_tuples`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod almser;
pub mod autofj;
pub mod context;
pub mod embedding_matcher;
pub mod extensions;
pub mod lr;
pub mod mscd;
pub mod supervised;

pub use almser::{AlmserConfig, AlmserGb};
pub use autofj::{AutoFjConfig, AutoFjMatcher};
pub use context::MatchContext;
pub use embedding_matcher::EmbeddingThresholdMatcher;
pub use extensions::{pairs_to_tuples, ChainExtension, PairwiseExtension};
pub use lr::LogisticRegression;
pub use mscd::{MscdAp, MscdHac};
pub use supervised::{SupervisedConfig, SupervisedMatcher};

use multiem_table::{EntityId, MatchTuple};

/// A matched entity pair with its match score (higher = more confident).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPair {
    /// First entity.
    pub a: EntityId,
    /// Second entity.
    pub b: EntityId,
    /// Match confidence or similarity in `[0, 1]`.
    pub score: f32,
}

impl MatchedPair {
    /// Create a pair (order of `a`/`b` is preserved as given).
    pub fn new(a: EntityId, b: EntityId, score: f32) -> Self {
        Self { a, b, score }
    }
}

/// A two-table matcher: produces matched pairs between two entity collections.
///
/// The collections are slices of [`EntityId`]s so the same matcher serves both
/// the pairwise extension (two whole source tables) and the chain extension
/// (a growing base collection against the next source table).
pub trait TwoTableMatcher: Send + Sync {
    /// Method name used in result tables.
    fn name(&self) -> &str;

    /// Match `left` against `right`, returning matched pairs.
    fn match_collections(
        &self,
        ctx: &MatchContext<'_>,
        left: &[EntityId],
        right: &[EntityId],
    ) -> Vec<MatchedPair>;
}

/// A complete multi-table matcher: consumes the whole dataset and produces
/// matched tuples.
pub trait MultiTableMatcher: Send + Sync {
    /// Method name used in result tables (e.g. "AutoFJ (c)").
    fn name(&self) -> String;

    /// Run the method over every source table of the context's dataset.
    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple>;
}
