//! MSCD-HAC and MSCD-AP: clustering-based multi-source entity resolution.
//!
//! * **MSCD-HAC** (Saeedi, David & Rahm, KEOD 2021) extends hierarchical
//!   agglomerative clustering to multiple *clean* sources: entities from the
//!   same source are never clustered together. Complexity is cubic in the
//!   total number of entities, which is why the paper reports it timing out on
//!   everything but the smallest dataset.
//! * **MSCD-AP** (Lerm, Saeedi & Rahm, BTW 2021) casts the same problem as
//!   affinity propagation over the full pairwise similarity matrix (quadratic
//!   memory).
//!
//! Both operate on the same entity embeddings as the other baselines and emit
//! clusters with at least two members as matched tuples.

use crate::context::MatchContext;
use crate::MultiTableMatcher;
use multiem_ann::Metric;
use multiem_cluster::{
    AffinityPropagation, AffinityPropagationConfig, AgglomerativeClustering, HacConfig, Linkage,
};
use multiem_table::{EntityId, MatchTuple};

/// Source-aware hierarchical agglomerative clustering (MSCD-HAC).
#[derive(Debug, Clone)]
pub struct MscdHac {
    config: HacConfig,
}

impl Default for MscdHac {
    fn default() -> Self {
        Self {
            config: HacConfig {
                linkage: Linkage::Average,
                distance_threshold: 0.4,
                metric: Metric::Cosine,
                source_constraint: true,
            },
        }
    }
}

impl MscdHac {
    /// Create with a custom clustering configuration.
    pub fn new(config: HacConfig) -> Self {
        Self { config }
    }

    /// The clustering configuration.
    pub fn config(&self) -> &HacConfig {
        &self.config
    }
}

impl MultiTableMatcher for MscdHac {
    fn name(&self) -> String {
        "MSCD-HAC".to_string()
    }

    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple> {
        let ids: Vec<EntityId> = ctx.dataset.entity_ids().collect();
        if ids.len() < 2 {
            return Vec::new();
        }
        let points: Vec<&[f32]> = ids.iter().map(|&id| ctx.embedding(id)).collect();
        let sources: Vec<u32> = ids.iter().map(|id| id.source).collect();
        let clusters = AgglomerativeClustering::new(self.config.clone()).cluster(&points, &sources);
        clusters
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|c| MatchTuple::new(c.into_iter().map(|i| ids[i])))
            .collect()
    }
}

/// Affinity-propagation clustering (MSCD-AP).
#[derive(Debug, Clone)]
pub struct MscdAp {
    config: AffinityPropagationConfig,
}

impl Default for MscdAp {
    fn default() -> Self {
        Self {
            config: AffinityPropagationConfig {
                metric: Metric::Cosine,
                // A preference well below the median keeps clusters coarse
                // enough to group co-referent entities.
                preference: Some(-0.8),
                ..AffinityPropagationConfig::default()
            },
        }
    }
}

impl MscdAp {
    /// Create with a custom affinity-propagation configuration.
    pub fn new(config: AffinityPropagationConfig) -> Self {
        Self { config }
    }

    /// The clustering configuration.
    pub fn config(&self) -> &AffinityPropagationConfig {
        &self.config
    }
}

impl MultiTableMatcher for MscdAp {
    fn name(&self) -> String {
        "MSCD-AP".to_string()
    }

    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple> {
        let ids: Vec<EntityId> = ctx.dataset.entity_ids().collect();
        if ids.len() < 2 {
            return Vec::new();
        }
        let points: Vec<&[f32]> = ids.iter().map(|&id| ctx.embedding(id)).collect();
        let clusters = AffinityPropagation::new(self.config.clone()).cluster(&points);
        clusters
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|c| MatchTuple::new(c.into_iter().map(|i| ids[i])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_eval::evaluate;
    use multiem_table::Dataset;

    fn small_geo() -> Dataset {
        let factory = Domain::Geo.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig {
            name: "mscd-geo".into(),
            num_sources: 3,
            num_tuples: 25,
            num_singletons: 10,
            min_tuple_size: 2,
            max_tuple_size: 3,
            seed: 17,
        };
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn hac_clusters_small_geo_reasonably() {
        let ds = small_geo();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let method = MscdHac::default();
        assert_eq!(method.name(), "MSCD-HAC");
        let tuples = method.run(&ctx);
        assert!(!tuples.is_empty());
        let report = evaluate(&tuples, ds.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.5, "MSCD-HAC pair-F1 {:?}", report.pair);
        // The source constraint guarantees no tuple holds two entities of one source.
        for t in &tuples {
            let mut sources: Vec<u32> = t.members().iter().map(|m| m.source).collect();
            let n = sources.len();
            sources.sort_unstable();
            sources.dedup();
            assert_eq!(sources.len(), n);
        }
    }

    #[test]
    fn ap_produces_multi_member_clusters() {
        let ds = small_geo();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let method = MscdAp::default();
        assert_eq!(method.name(), "MSCD-AP");
        let tuples = method.run(&ctx);
        assert!(!tuples.is_empty());
        let report = evaluate(&tuples, ds.ground_truth().unwrap());
        // AP without source constraints is noticeably weaker — only require
        // that it finds real signal.
        assert!(
            report.pair.recall > 0.2,
            "MSCD-AP pair metrics {:?}",
            report.pair
        );
    }

    #[test]
    fn empty_dataset_yields_no_tuples() {
        let schema = multiem_table::Schema::new(["title"]).shared();
        let mut ds = Dataset::new("empty", schema.clone());
        for name in ["a", "b"] {
            ds.add_table(multiem_table::Table::new(name, schema.clone()))
                .unwrap();
        }
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        assert!(MscdHac::default().run(&ctx).is_empty());
        assert!(MscdAp::default().run(&ctx).is_empty());
    }

    #[test]
    fn config_accessors() {
        assert!(MscdHac::default().config().source_constraint);
        assert_eq!(MscdAp::default().config().preference, Some(-0.8));
    }
}
