//! Lifting two-table matchers to the multi-table setting.
//!
//! The paper evaluates every two-table baseline under two extensions
//! (Figure 2): **pairwise matching**, which runs the matcher on every pair of
//! source tables, and **chain matching**, which folds the tables into a
//! growing base collection one table at a time. Both produce matched *pairs*;
//! [`pairs_to_tuples`] then applies Algorithm 5 (transitive closure) to turn
//! pairs into matched tuples.

use crate::context::MatchContext;
use crate::{MatchedPair, MultiTableMatcher, TwoTableMatcher};
use multiem_cluster::UnionFind;
use multiem_table::{EntityId, MatchTuple};
use std::collections::HashMap;

/// Algorithm 5: convert matched pairs into tuples via transitive closure.
pub fn pairs_to_tuples(pairs: &[MatchedPair]) -> Vec<MatchTuple> {
    if pairs.is_empty() {
        return Vec::new();
    }
    // Dense-number the entities appearing in pairs.
    let mut index: HashMap<EntityId, usize> = HashMap::new();
    let mut ids: Vec<EntityId> = Vec::new();
    let number = |id: EntityId, ids: &mut Vec<EntityId>, index: &mut HashMap<EntityId, usize>| {
        *index.entry(id).or_insert_with(|| {
            ids.push(id);
            ids.len() - 1
        })
    };
    let mut edges = Vec::with_capacity(pairs.len());
    for p in pairs {
        let a = number(p.a, &mut ids, &mut index);
        let b = number(p.b, &mut ids, &mut index);
        edges.push((a, b));
    }
    let mut uf = UnionFind::new(ids.len());
    for (a, b) in edges {
        uf.union(a, b);
    }
    uf.groups_min_size(2)
        .into_iter()
        .map(|group| MatchTuple::new(group.into_iter().map(|i| ids[i])))
        .collect()
}

/// Pairwise-matching extension (Figure 2(a)): run the matcher on every pair of
/// source tables.
pub struct PairwiseExtension<M: TwoTableMatcher> {
    matcher: M,
}

impl<M: TwoTableMatcher> PairwiseExtension<M> {
    /// Wrap a two-table matcher.
    pub fn new(matcher: M) -> Self {
        Self { matcher }
    }

    /// The wrapped matcher.
    pub fn matcher(&self) -> &M {
        &self.matcher
    }
}

impl<M: TwoTableMatcher> MultiTableMatcher for PairwiseExtension<M> {
    fn name(&self) -> String {
        format!("{} (pw)", self.matcher.name())
    }

    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple> {
        let s = ctx.dataset.num_sources();
        let mut all_pairs = Vec::new();
        for i in 0..s {
            let left = ctx.source_entities(i as u32);
            for j in (i + 1)..s {
                let right = ctx.source_entities(j as u32);
                all_pairs.extend(self.matcher.match_collections(ctx, &left, &right));
            }
        }
        pairs_to_tuples(&all_pairs)
    }
}

/// Chain-matching extension (Figure 2(c)): fold tables into a growing base
/// collection, matching each new table against everything accumulated so far.
pub struct ChainExtension<M: TwoTableMatcher> {
    matcher: M,
}

impl<M: TwoTableMatcher> ChainExtension<M> {
    /// Wrap a two-table matcher.
    pub fn new(matcher: M) -> Self {
        Self { matcher }
    }

    /// The wrapped matcher.
    pub fn matcher(&self) -> &M {
        &self.matcher
    }
}

impl<M: TwoTableMatcher> MultiTableMatcher for ChainExtension<M> {
    fn name(&self) -> String {
        format!("{} (c)", self.matcher.name())
    }

    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple> {
        let s = ctx.dataset.num_sources();
        if s == 0 {
            return Vec::new();
        }
        let mut base = ctx.source_entities(0);
        let mut all_pairs = Vec::new();
        for next in 1..s {
            let right = ctx.source_entities(next as u32);
            all_pairs.extend(self.matcher.match_collections(ctx, &base, &right));
            // The base table grows with every matched table (the inefficiency
            // the paper's Lemma 2 describes).
            base.extend(right);
        }
        pairs_to_tuples(&all_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding_matcher::EmbeddingThresholdMatcher;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_eval::evaluate;

    fn id(s: u32, r: u32) -> EntityId {
        EntityId::new(s, r)
    }

    #[test]
    fn pairs_to_tuples_applies_transitivity() {
        let pairs = vec![
            MatchedPair::new(id(0, 0), id(1, 0), 0.9),
            MatchedPair::new(id(1, 0), id(2, 0), 0.9),
            MatchedPair::new(id(0, 5), id(3, 5), 0.8),
        ];
        let mut tuples = pairs_to_tuples(&pairs);
        tuples.sort();
        assert_eq!(tuples.len(), 2);
        let sizes: Vec<usize> = tuples.iter().map(|t| t.len()).collect();
        assert!(sizes.contains(&3) && sizes.contains(&2));
    }

    #[test]
    fn pairs_to_tuples_empty_input() {
        assert!(pairs_to_tuples(&[]).is_empty());
    }

    #[test]
    fn transitive_conflicts_collapse_into_one_tuple() {
        // An incorrect bridge pair merges two real-world entities into one big
        // tuple — the failure mode the paper calls "transitive conflicts".
        let pairs = vec![
            MatchedPair::new(id(0, 0), id(1, 0), 0.9),
            MatchedPair::new(id(0, 1), id(1, 1), 0.9),
            MatchedPair::new(id(1, 0), id(0, 1), 0.6), // wrong bridge
        ];
        let tuples = pairs_to_tuples(&pairs);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 4);
    }

    fn music_ctx_dataset() -> multiem_table::Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        MultiSourceGenerator::new(GeneratorConfig::small_test("ext", 4))
            .generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn pairwise_extension_recovers_most_matches() {
        let ds = music_ctx_dataset();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let method = PairwiseExtension::new(EmbeddingThresholdMatcher::default());
        assert_eq!(method.name(), "EmbedMNN (pw)");
        let tuples = method.run(&ctx);
        let report = evaluate(&tuples, ds.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.5, "pairwise pair-F1 {:?}", report.pair);
    }

    #[test]
    fn chain_extension_runs_and_names_itself() {
        let ds = music_ctx_dataset();
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        let method = ChainExtension::new(EmbeddingThresholdMatcher::default());
        assert_eq!(method.name(), "EmbedMNN (c)");
        let tuples = method.run(&ctx);
        let report = evaluate(&tuples, ds.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.4, "chain pair-F1 {:?}", report.pair);
    }

    #[test]
    fn accessors_expose_wrapped_matcher() {
        let pw = PairwiseExtension::new(EmbeddingThresholdMatcher::default());
        assert_eq!(pw.matcher().k, 1);
        let c = ChainExtension::new(EmbeddingThresholdMatcher::default());
        assert_eq!(c.matcher().k, 1);
    }
}
