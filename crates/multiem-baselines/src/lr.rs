//! A small logistic-regression classifier.
//!
//! Shared learning machinery for the supervised baselines: the Ditto/PromptEM
//! stand-in trains it on labelled pairs, ALMSER-GB retrains it inside its
//! active-learning loop. Gradient descent with L2 regularisation; features are
//! standardised internally so callers can feed raw similarity features.

/// Logistic regression trained by batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    learning_rate: f64,
    epochs: usize,
    l2: f64,
}

impl LogisticRegression {
    /// Create an untrained model for `num_features` inputs.
    pub fn new(num_features: usize) -> Self {
        Self {
            weights: vec![0.0; num_features],
            bias: 0.0,
            feature_means: vec![0.0; num_features],
            feature_stds: vec![1.0; num_features],
            learning_rate: 0.5,
            epochs: 300,
            l2: 1e-4,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.weights.len()
    }

    fn standardize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.feature_means.iter().zip(&self.feature_stds))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    /// Fit the model on `(features, label)` examples. Returns `false` when the
    /// training set is degenerate (empty or single-class) — the model then
    /// falls back to predicting the majority class probability.
    pub fn fit(&mut self, examples: &[(Vec<f64>, bool)]) -> bool {
        if examples.is_empty() {
            return false;
        }
        let d = self.num_features();
        // Standardise features.
        let n = examples.len() as f64;
        let mut means = vec![0.0; d];
        for (x, _) in examples {
            for (m, xi) in means.iter_mut().zip(x) {
                *m += xi / n;
            }
        }
        let mut stds = vec![0.0; d];
        for (x, _) in examples {
            for ((s, xi), m) in stds.iter_mut().zip(x).zip(&means) {
                *s += (xi - m).powi(2) / n;
            }
        }
        for s in stds.iter_mut() {
            *s = s.sqrt().max(1e-6);
        }
        self.feature_means = means;
        self.feature_stds = stds;

        let positives = examples.iter().filter(|(_, y)| *y).count();
        if positives == 0 || positives == examples.len() {
            // Single-class data: encode the prior in the bias only.
            let p = (positives as f64 + 0.5) / (examples.len() as f64 + 1.0);
            self.bias = (p / (1.0 - p)).ln();
            self.weights = vec![0.0; d];
            return false;
        }

        let standardized: Vec<(Vec<f64>, f64)> = examples
            .iter()
            .map(|(x, y)| (self.standardize(x), if *y { 1.0 } else { 0.0 }))
            .collect();

        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (x, y) in &standardized {
                let z = self.bias
                    + self
                        .weights
                        .iter()
                        .zip(x)
                        .map(|(w, xi)| w * xi)
                        .sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for (g, xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi / n;
                }
                grad_b += err / n;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= self.learning_rate * (g + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b;
        }
        true
    }

    /// Predicted probability that the example is a match.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let x = self.standardize(features);
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(&x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Vec<(Vec<f64>, bool)> {
        let mut out = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            out.push((vec![x, 1.0 - x], x > 0.5));
        }
        out
    }

    #[test]
    fn learns_a_separable_problem() {
        let mut lr = LogisticRegression::new(2);
        assert!(lr.fit(&linearly_separable()));
        assert!(lr.predict(&[0.9, 0.1]));
        assert!(!lr.predict(&[0.1, 0.9]));
        assert!(lr.predict_proba(&[0.95, 0.05]) > 0.8);
        assert!(lr.predict_proba(&[0.05, 0.95]) < 0.2);
    }

    #[test]
    fn probability_is_monotone_in_informative_feature() {
        let mut lr = LogisticRegression::new(2);
        lr.fit(&linearly_separable());
        let p1 = lr.predict_proba(&[0.2, 0.8]);
        let p2 = lr.predict_proba(&[0.6, 0.4]);
        let p3 = lr.predict_proba(&[0.9, 0.1]);
        assert!(p1 < p2 && p2 < p3);
    }

    #[test]
    fn degenerate_training_sets() {
        let mut lr = LogisticRegression::new(1);
        assert!(!lr.fit(&[]));
        // All-positive training data: predicts high probability everywhere.
        let mut lr = LogisticRegression::new(1);
        let all_pos: Vec<(Vec<f64>, bool)> = (0..10).map(|i| (vec![i as f64], true)).collect();
        assert!(!lr.fit(&all_pos));
        assert!(lr.predict_proba(&[3.0]) > 0.5);
        // All-negative.
        let mut lr = LogisticRegression::new(1);
        let all_neg: Vec<(Vec<f64>, bool)> = (0..10).map(|i| (vec![i as f64], false)).collect();
        assert!(!lr.fit(&all_neg));
        assert!(lr.predict_proba(&[3.0]) < 0.5);
    }

    #[test]
    fn handles_constant_features() {
        let mut lr = LogisticRegression::new(2);
        let data: Vec<(Vec<f64>, bool)> = (0..40)
            .map(|i| (vec![i as f64 / 40.0, 7.0], i >= 20))
            .collect();
        assert!(lr.fit(&data));
        assert!(lr.predict(&[0.95, 7.0]));
        assert!(!lr.predict(&[0.05, 7.0]));
    }
}
