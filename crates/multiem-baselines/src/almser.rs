//! ALMSER-GB stand-in: graph-boosted active learning for multi-source ER.
//!
//! ALMSER-GB (Primpeli & Bizer, ISWC 2021) builds a similarity graph over
//! candidate record pairs from all sources, actively queries the most
//! informative pairs for labels, and propagates match decisions over the
//! graph. This reimplementation keeps that structure:
//!
//! 1. candidate generation: mutual top-K embedding neighbours between every
//!    pair of sources;
//! 2. active learning: starting from the labelled seed available in the
//!    [`MatchContext`], repeatedly train a pair classifier, pick the most
//!    uncertain candidates and query their labels from the dataset's ground
//!    truth (the stand-in for the human annotator), up to a query budget;
//! 3. graph boosting: classify all candidates and take the transitive closure
//!    of accepted pairs (Algorithm 5) to produce tuples.
//!
//! Because candidate generation is quadratic in the number of source pairs and
//! the similarity graph is materialised, runtime and memory grow much faster
//! than MultiEM's — reproducing the scalability gap of Tables V/VI.

use crate::context::MatchContext;
use crate::extensions::pairs_to_tuples;
use crate::lr::LogisticRegression;
use crate::{MatchedPair, MultiTableMatcher};
use multiem_ann::{BruteForceIndex, Metric, VectorIndex};
use multiem_table::{EntityId, MatchTuple};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the ALMSER-GB stand-in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlmserConfig {
    /// Candidate neighbours per entity and source pair.
    pub block_k: usize,
    /// Number of active-learning rounds.
    pub rounds: usize,
    /// Labels queried from the oracle per round.
    pub queries_per_round: usize,
    /// Acceptance threshold on the final match probability.
    pub decision_threshold: f64,
}

impl Default for AlmserConfig {
    fn default() -> Self {
        Self {
            block_k: 2,
            rounds: 5,
            queries_per_round: 20,
            decision_threshold: 0.5,
        }
    }
}

/// The ALMSER-GB stand-in.
#[derive(Debug, Clone, Default)]
pub struct AlmserGb {
    config: AlmserConfig,
}

impl AlmserGb {
    /// Create the method with the given configuration.
    pub fn new(config: AlmserConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AlmserConfig {
        &self.config
    }

    fn features(ctx: &MatchContext<'_>, a: EntityId, b: EntityId) -> Vec<f64> {
        vec![f64::from(ctx.cosine(a, b)), f64::from(ctx.jaccard(a, b))]
    }

    fn candidates(&self, ctx: &MatchContext<'_>) -> Vec<(EntityId, EntityId)> {
        let s = ctx.dataset.num_sources();
        let dim = ctx.store.dim();
        let mut out: BTreeSet<(EntityId, EntityId)> = BTreeSet::new();
        for i in 0..s {
            let left = ctx.source_entities(i as u32);
            for j in (i + 1)..s {
                let right = ctx.source_entities(j as u32);
                if right.is_empty() || left.is_empty() {
                    continue;
                }
                let right_index = BruteForceIndex::from_vectors(
                    dim,
                    Metric::Cosine,
                    right.iter().map(|&id| ctx.embedding(id)),
                );
                for &l in &left {
                    for n in right_index.search(ctx.embedding(l), self.config.block_k) {
                        let r = right[n.index];
                        out.insert((l.min(r), l.max(r)));
                    }
                }
            }
        }
        out.into_iter().collect()
    }
}

impl MultiTableMatcher for AlmserGb {
    fn name(&self) -> String {
        "ALMSER-GB".to_string()
    }

    fn run(&self, ctx: &MatchContext<'_>) -> Vec<MatchTuple> {
        let candidates = self.candidates(ctx);
        if candidates.is_empty() {
            return Vec::new();
        }
        let truth = ctx
            .dataset
            .ground_truth()
            .map(|gt| gt.pairs())
            .unwrap_or_default();

        // Labelled pool starts from the context's labelled sample.
        let mut labeled: Vec<((EntityId, EntityId), bool)> = ctx
            .labeled
            .iter()
            .map(|p| ((p.a.min(p.b), p.a.max(p.b)), p.label))
            .collect();
        let mut labeled_keys: BTreeSet<(EntityId, EntityId)> =
            labeled.iter().map(|(k, _)| *k).collect();

        let mut model = LogisticRegression::new(2);
        for _ in 0..self.config.rounds {
            let examples: Vec<(Vec<f64>, bool)> = labeled
                .iter()
                .map(|(pair, y)| (Self::features(ctx, pair.0, pair.1), *y))
                .collect();
            model.fit(&examples);

            // Query the most uncertain unlabelled candidates (oracle = ground truth).
            let mut uncertain: Vec<((EntityId, EntityId), f64)> = candidates
                .iter()
                .filter(|p| !labeled_keys.contains(p))
                .map(|&p| {
                    let prob = model.predict_proba(&Self::features(ctx, p.0, p.1));
                    (p, (prob - 0.5).abs())
                })
                .collect();
            uncertain.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            for (pair, _) in uncertain.into_iter().take(self.config.queries_per_round) {
                let label = truth.contains(&pair);
                labeled.push((pair, label));
                labeled_keys.insert(pair);
            }
        }

        // Final training pass and classification of every candidate.
        let examples: Vec<(Vec<f64>, bool)> = labeled
            .iter()
            .map(|(pair, y)| (Self::features(ctx, pair.0, pair.1), *y))
            .collect();
        model.fit(&examples);

        let accepted: Vec<MatchedPair> = candidates
            .iter()
            .filter_map(|&(a, b)| {
                let p = model.predict_proba(&Self::features(ctx, a, b));
                if p >= self.config.decision_threshold {
                    Some(MatchedPair::new(a, b, p as f32))
                } else {
                    None
                }
            })
            .collect();
        pairs_to_tuples(&accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_eval::{evaluate, sample_labeled_pairs, SamplingConfig};

    #[test]
    fn active_learning_recovers_most_tuples_on_clean_music() {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let ds = MultiSourceGenerator::new(GeneratorConfig::small_test("almser", 3))
            .generate(factory.as_ref(), &corruptor);
        let encoder = HashedLexicalEncoder::default();
        let labeled = sample_labeled_pairs(
            &ds,
            &SamplingConfig {
                positive_fraction: 0.1,
                negatives_per_positive: 3,
                seed: 4,
            },
        );
        let ctx = MatchContext::build(&ds, &encoder, labeled);
        let method = AlmserGb::default();
        assert_eq!(method.name(), "ALMSER-GB");
        let tuples = method.run(&ctx);
        let report = evaluate(&tuples, ds.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.5, "ALMSER pair-F1 {:?}", report.pair);
    }

    #[test]
    fn empty_dataset_produces_no_tuples() {
        let schema = multiem_table::Schema::new(["title"]).shared();
        let mut ds = multiem_table::Dataset::new("empty", schema.clone());
        for name in ["a", "b"] {
            ds.add_table(multiem_table::Table::new(name, schema.clone()))
                .unwrap();
        }
        let encoder = HashedLexicalEncoder::default();
        let ctx = MatchContext::build(&ds, &encoder, Vec::new());
        assert!(AlmserGb::default().run(&ctx).is_empty());
    }

    #[test]
    fn config_accessor() {
        let method = AlmserGb::new(AlmserConfig {
            rounds: 2,
            ..AlmserConfig::default()
        });
        assert_eq!(method.config().rounds, 2);
    }
}
