//! Configuration of the MultiEM pipeline.

use multiem_ann::{HnswConfig, Metric};
use multiem_table::SerializeOptions;
use serde::{Deserialize, Serialize};

/// Which vector index backs the mutual top-K searches of the merging phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum IndexBackend {
    /// Always use the exact brute-force index.
    BruteForce,
    /// Always use the HNSW graph index.
    Hnsw,
    /// Use brute force below [`MultiEmConfig::hnsw_threshold`] items and HNSW
    /// above it (default — mirrors how the reference implementation behaves on
    /// small vs. large tables).
    #[default]
    Auto,
}

/// Hyper-parameters of MultiEM (Section IV-A, "Implementation details").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiEmConfig {
    // --- Enhanced Entity Representation -----------------------------------
    /// Whether to run the automated attribute selection (the `w/o EER`
    /// ablation disables this and embeds all attributes).
    pub attribute_selection: bool,
    /// Sampling ratio `r` used when computing attribute significance scores
    /// (0.2 for most datasets, 0.05 for the largest in the paper).
    pub sample_ratio: f64,
    /// Selection threshold `γ`: an attribute is kept when the mean cosine
    /// similarity between original and value-shuffled embeddings is **at
    /// most** `γ` (i.e. shuffling the attribute changes the embedding enough
    /// to matter). The paper grid-searches `γ ∈ {0.8, 0.9}`.
    pub gamma: f64,
    /// Serialization options (lowercasing, max sequence length 64).
    pub serialize: SerializeOptions,

    // --- Table-wise Hierarchical Merging -----------------------------------
    /// Mutual top-K bound `k` (the paper uses 1).
    pub k: usize,
    /// Distance threshold `m` on matched pairs (grid `{0.05, 0.2, 0.35, 0.5}`).
    pub m: f32,
    /// Metric used in the merging phase (cosine in the paper).
    pub merge_metric: Metric,
    /// Index backend selection.
    pub index_backend: IndexBackend,
    /// Table size above which [`IndexBackend::Auto`] switches to HNSW.
    pub hnsw_threshold: usize,
    /// HNSW construction/search parameters.
    pub hnsw: HnswConfig,
    /// Seed controlling the random pairing order of tables in hierarchical
    /// merging (Figure 6(b) varies this seed).
    pub merge_seed: u64,

    // --- Density-based Pruning ---------------------------------------------
    /// Whether to run the pruning phase (the `w/o DP` ablation disables it).
    pub pruning: bool,
    /// Neighbourhood radius `ε` (grid `{0.8, 1.0}` in the paper).
    pub epsilon: f32,
    /// `MinPts` (2 in the paper).
    pub min_pts: usize,
    /// Metric used in the pruning phase (Euclidean in the paper).
    pub prune_metric: Metric,

    // --- Execution ----------------------------------------------------------
    /// Run merging and pruning with rayon data parallelism
    /// (the `MultiEM (parallel)` variant of Tables V/VI).
    pub parallel: bool,
}

impl Default for MultiEmConfig {
    fn default() -> Self {
        Self {
            attribute_selection: true,
            sample_ratio: 0.2,
            gamma: 0.9,
            serialize: SerializeOptions::default(),
            k: 1,
            m: 0.35,
            merge_metric: Metric::Cosine,
            index_backend: IndexBackend::Auto,
            hnsw_threshold: 2_000,
            hnsw: HnswConfig::default(),
            merge_seed: 0,
            pruning: true,
            epsilon: 1.0,
            min_pts: 2,
            prune_metric: Metric::Euclidean,
            parallel: false,
        }
    }
}

impl MultiEmConfig {
    /// The parallel variant of the default configuration.
    pub fn parallel() -> Self {
        Self {
            parallel: true,
            ..Self::default()
        }
    }

    /// The `w/o EER` ablation: skip attribute selection.
    pub fn without_attribute_selection(mut self) -> Self {
        self.attribute_selection = false;
        self
    }

    /// The `w/o DP` ablation: skip density-based pruning.
    pub fn without_pruning(mut self) -> Self {
        self.pruning = false;
        self
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1".into());
        }
        if !(0.0 < self.sample_ratio && self.sample_ratio <= 1.0) {
            return Err("sample_ratio must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err("gamma must be in [0, 1]".into());
        }
        if self.m < 0.0 {
            return Err("m must be non-negative".into());
        }
        if self.epsilon <= 0.0 {
            return Err("epsilon must be positive".into());
        }
        if self.min_pts == 0 {
            return Err("min_pts must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = MultiEmConfig::default();
        assert_eq!(c.k, 1);
        assert_eq!(c.min_pts, 2);
        assert_eq!(c.merge_metric, Metric::Cosine);
        assert_eq!(c.prune_metric, Metric::Euclidean);
        assert!(c.attribute_selection);
        assert!(c.pruning);
        assert!(!c.parallel);
        assert!(c.validate().is_ok());
        assert_eq!(c.serialize.max_tokens, Some(64));
    }

    #[test]
    fn ablation_builders() {
        let c = MultiEmConfig::default().without_attribute_selection();
        assert!(!c.attribute_selection);
        assert!(c.pruning);
        let c = MultiEmConfig::default().without_pruning();
        assert!(!c.pruning);
        let c = MultiEmConfig::parallel();
        assert!(c.parallel);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            MultiEmConfig {
                k: 0,
                ..MultiEmConfig::default()
            },
            MultiEmConfig {
                sample_ratio: 0.0,
                ..MultiEmConfig::default()
            },
            MultiEmConfig {
                gamma: 1.5,
                ..MultiEmConfig::default()
            },
            MultiEmConfig {
                m: -0.1,
                ..MultiEmConfig::default()
            },
            MultiEmConfig {
                epsilon: 0.0,
                ..MultiEmConfig::default()
            },
            MultiEmConfig {
                min_pts: 0,
                ..MultiEmConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }
    }
}
