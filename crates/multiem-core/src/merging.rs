//! Table-wise Hierarchical Merging (Section III-C, Algorithms 2 and 3).
//!
//! The merging phase operates on *merged tables* whose items are either single
//! entities or tuples produced by earlier merges. One two-table merge step
//! (Algorithm 3):
//!
//! 1. builds an ANN index over each table's item embeddings,
//! 2. finds all **mutual top-K** item pairs with distance ≤ `m` (Eq. 1),
//! 3. fuses matched items through transitivity (union-find) into new items,
//!    carrying every unmatched item into the output table unchanged.
//!
//! Hierarchical merging (Algorithm 2) repeatedly pairs up the current tables
//! (in a seeded random order) and merges each pair — in parallel when
//! requested — until a single integrated table remains. Matched tuples are the
//! multi-member items of that final table.

use crate::config::{IndexBackend, MultiEmConfig};
use multiem_ann::{mutual_top_k, BruteForceIndex, HnswIndex, Metric, Neighbor, VectorIndex};
use multiem_cluster::UnionFind;
use multiem_embed::l2_normalize;
use multiem_table::{Dataset, EntityId, MatchTuple};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::representation::EmbeddingStore;

/// One item of a merged table: a set of entities believed to co-refer, plus a
/// representative embedding (the normalised centroid of its members).
#[derive(Debug, Clone)]
pub struct MergeItem {
    /// The entities merged into this item so far.
    pub members: Vec<EntityId>,
    /// Normalised centroid embedding used for subsequent merges.
    pub embedding: Vec<f32>,
}

impl MergeItem {
    /// Create a singleton item for one entity.
    pub fn singleton(id: EntityId, embedding: Vec<f32>) -> Self {
        Self {
            members: vec![id],
            embedding,
        }
    }

    /// Number of member entities.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the item has no members (never produced by the pipeline).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Convert the item into a [`MatchTuple`] (only meaningful when `len() >= 2`).
    pub fn to_tuple(&self) -> MatchTuple {
        MatchTuple::new(self.members.iter().copied())
    }
}

/// A table in the hierarchical-merging lattice.
#[derive(Debug, Clone, Default)]
pub struct MergedTable {
    /// The items of the table.
    pub items: Vec<MergeItem>,
}

impl MergedTable {
    /// Build the level-0 merged table for one source table: one singleton item
    /// per entity, skipping entities whose serialized text was empty (zero
    /// embeddings would otherwise produce spurious mutual matches).
    pub fn from_source(dataset: &Dataset, source: u32, store: &EmbeddingStore) -> Self {
        let table = &dataset.tables()[source as usize];
        let mut items = Vec::with_capacity(table.len());
        for (row, _) in table.iter() {
            let id = EntityId::new(source, row);
            let emb = store.embedding(id);
            if emb.iter().all(|&x| x == 0.0) {
                continue;
            }
            items.push(MergeItem::singleton(id, emb.to_vec()));
        }
        Self { items }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items with at least two members, as match tuples.
    pub fn tuples(&self) -> Vec<MatchTuple> {
        self.items
            .iter()
            .filter(|i| i.len() >= 2)
            .map(MergeItem::to_tuple)
            .collect()
    }

    /// Approximate bytes used by item embeddings and member lists.
    pub fn approx_bytes(&self) -> usize {
        self.items
            .iter()
            .map(|i| {
                i.embedding.capacity() * 4 + i.members.capacity() * std::mem::size_of::<EntityId>()
            })
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

/// Either index backend, selected per table size.
enum AnyIndex {
    Brute(BruteForceIndex),
    Hnsw(Box<HnswIndex>),
}

impl VectorIndex for AnyIndex {
    fn dim(&self) -> usize {
        match self {
            AnyIndex::Brute(i) => i.dim(),
            AnyIndex::Hnsw(i) => i.dim(),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyIndex::Brute(i) => i.len(),
            AnyIndex::Hnsw(i) => i.len(),
        }
    }

    fn metric(&self) -> Metric {
        match self {
            AnyIndex::Brute(i) => i.metric(),
            AnyIndex::Hnsw(i) => i.metric(),
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            AnyIndex::Brute(i) => i.search(query, k),
            AnyIndex::Hnsw(i) => i.search(query, k),
        }
    }

    fn vector(&self, index: usize) -> &[f32] {
        match self {
            AnyIndex::Brute(i) => i.vector(index),
            AnyIndex::Hnsw(i) => i.vector(index),
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            AnyIndex::Brute(i) => i.approx_bytes(),
            AnyIndex::Hnsw(i) => i.approx_bytes(),
        }
    }
}

fn build_index(items: &[MergeItem], config: &MultiEmConfig, dim: usize) -> AnyIndex {
    let use_hnsw = match config.index_backend {
        IndexBackend::BruteForce => false,
        IndexBackend::Hnsw => true,
        IndexBackend::Auto => items.len() >= config.hnsw_threshold,
    };
    if use_hnsw {
        AnyIndex::Hnsw(Box::new(HnswIndex::build(
            dim,
            config.merge_metric,
            config.hnsw.clone(),
            items.iter().map(|i| i.embedding.as_slice()),
        )))
    } else {
        AnyIndex::Brute(BruteForceIndex::from_vectors(
            dim,
            config.merge_metric,
            items.iter().map(|i| i.embedding.as_slice()),
        ))
    }
}

fn centroid(members: &[&MergeItem], dim: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; dim];
    let mut total = 0usize;
    for item in members {
        let w = item.members.len();
        total += w;
        for (a, x) in acc.iter_mut().zip(&item.embedding) {
            *a += *x * w as f32;
        }
    }
    if total > 0 {
        let inv = 1.0 / total as f32;
        for a in acc.iter_mut() {
            *a *= inv;
        }
    }
    l2_normalize(&mut acc);
    acc
}

/// Statistics of one two-table merge (used for diagnostics and memory accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeStats {
    /// Number of mutual matched pairs found (|P_m| in Algorithm 3).
    pub matched_pairs: usize,
    /// Bytes used by the two ANN indexes.
    pub index_bytes: usize,
}

/// Merge two tables (Algorithm 3). Returns the merged table and statistics.
pub fn two_table_merge_with_stats(
    left: &MergedTable,
    right: &MergedTable,
    config: &MultiEmConfig,
    dim: usize,
) -> (MergedTable, MergeStats) {
    if left.is_empty() {
        return (right.clone(), MergeStats::default());
    }
    if right.is_empty() {
        return (left.clone(), MergeStats::default());
    }

    let left_index = build_index(&left.items, config, dim);
    let right_index = build_index(&right.items, config, dim);
    let left_vecs: Vec<&[f32]> = left.items.iter().map(|i| i.embedding.as_slice()).collect();
    let right_vecs: Vec<&[f32]> = right.items.iter().map(|i| i.embedding.as_slice()).collect();

    let matches = mutual_top_k(
        &left_index,
        &right_index,
        &left_vecs,
        &right_vecs,
        config.k,
        config.m,
    );
    let stats = MergeStats {
        matched_pairs: matches.len(),
        index_bytes: left_index.approx_bytes() + right_index.approx_bytes(),
    };

    // Transitivity: union matched items (right items are offset by left.len()).
    let n_left = left.len();
    let mut uf = UnionFind::new(n_left + right.len());
    for m in &matches {
        uf.union(m.left, n_left + m.right);
    }

    let all_items: Vec<&MergeItem> = left.items.iter().chain(right.items.iter()).collect();
    let mut merged_items = Vec::with_capacity(all_items.len());
    for group in uf.groups() {
        if group.len() == 1 {
            merged_items.push(all_items[group[0]].clone());
        } else {
            let members_items: Vec<&MergeItem> = group.iter().map(|&i| all_items[i]).collect();
            let mut members: Vec<EntityId> = members_items
                .iter()
                .flat_map(|i| i.members.iter().copied())
                .collect();
            members.sort_unstable();
            members.dedup();
            let embedding = centroid(&members_items, dim);
            merged_items.push(MergeItem { members, embedding });
        }
    }
    (
        MergedTable {
            items: merged_items,
        },
        stats,
    )
}

/// Merge two tables (Algorithm 3).
pub fn two_table_merge(
    left: &MergedTable,
    right: &MergedTable,
    config: &MultiEmConfig,
    dim: usize,
) -> MergedTable {
    two_table_merge_with_stats(left, right, config, dim).0
}

/// Outcome of the hierarchical merging phase.
#[derive(Debug, Clone)]
pub struct HierarchicalMergeOutput {
    /// The final integrated table.
    pub integrated: MergedTable,
    /// Number of hierarchy levels executed (`⌈log2 S⌉` for S source tables).
    pub levels: usize,
    /// Peak index bytes observed across all two-table merges.
    pub peak_index_bytes: usize,
    /// Total mutual matched pairs across all merges.
    pub total_matched_pairs: usize,
}

/// Table-wise hierarchical merging (Algorithm 2).
///
/// Tables are paired in a seeded random order at every level; each pair is
/// merged with [`two_table_merge`], sequentially or in parallel according to
/// `config.parallel`, until one table remains.
pub fn hierarchical_merge(
    mut tables: Vec<MergedTable>,
    config: &MultiEmConfig,
    dim: usize,
) -> HierarchicalMergeOutput {
    let mut rng = ChaCha8Rng::seed_from_u64(config.merge_seed);
    let mut levels = 0usize;
    let mut peak_index_bytes = 0usize;
    let mut total_matched_pairs = 0usize;

    while tables.len() > 1 {
        levels += 1;
        // Random pairing order (Figure 6(b) shows the result is insensitive to it).
        tables.shuffle(&mut rng);

        let mut pairs: Vec<(MergedTable, MergedTable)> = Vec::with_capacity(tables.len() / 2);
        let mut carry: Option<MergedTable> = None;
        let mut iter = tables.into_iter();
        loop {
            match (iter.next(), iter.next()) {
                (Some(a), Some(b)) => pairs.push((a, b)),
                (Some(a), None) => {
                    carry = Some(a);
                    break;
                }
                _ => break,
            }
        }

        let merge_one =
            |(a, b): &(MergedTable, MergedTable)| two_table_merge_with_stats(a, b, config, dim);
        let results: Vec<(MergedTable, MergeStats)> = if config.parallel {
            pairs.par_iter().map(merge_one).collect()
        } else {
            pairs.iter().map(merge_one).collect()
        };

        let mut next_level: Vec<MergedTable> = Vec::with_capacity(results.len() + 1);
        for (table, stats) in results {
            peak_index_bytes = peak_index_bytes.max(stats.index_bytes);
            total_matched_pairs += stats.matched_pairs;
            next_level.push(table);
        }
        if let Some(c) = carry {
            next_level.push(c);
        }
        tables = next_level;
    }

    HierarchicalMergeOutput {
        integrated: tables.pop().unwrap_or_default(),
        levels,
        peak_index_bytes,
        total_matched_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::EmbeddingStore;
    use multiem_datagen::{
        CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator,
    };
    use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};

    fn item(id: (u32, u32), emb: Vec<f32>) -> MergeItem {
        let mut e = emb;
        l2_normalize(&mut e);
        MergeItem::singleton(EntityId::new(id.0, id.1), e)
    }

    fn config() -> MultiEmConfig {
        MultiEmConfig {
            m: 0.3,
            ..MultiEmConfig::default()
        }
    }

    #[test]
    fn two_table_merge_fuses_mutual_neighbors() {
        let left = MergedTable {
            items: vec![
                item((0, 0), vec![1.0, 0.0, 0.0]),
                item((0, 1), vec![0.0, 1.0, 0.0]),
            ],
        };
        let right = MergedTable {
            items: vec![
                item((1, 0), vec![0.99, 0.1, 0.0]),
                item((1, 1), vec![0.0, 0.0, 1.0]),
            ],
        };
        let merged = two_table_merge(&left, &right, &config(), 3);
        // (0,0) matches (1,0); the other two stay singletons.
        assert_eq!(merged.len(), 3);
        let tuples = merged.tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(
            tuples[0].members(),
            &[EntityId::new(0, 0), EntityId::new(1, 0)]
        );
    }

    #[test]
    fn distance_threshold_blocks_weak_matches() {
        let left = MergedTable {
            items: vec![item((0, 0), vec![1.0, 0.0])],
        };
        let right = MergedTable {
            items: vec![item((1, 0), vec![0.5, 0.87])],
        };
        let strict = MultiEmConfig {
            m: 0.05,
            ..MultiEmConfig::default()
        };
        let merged = two_table_merge(&left, &right, &strict, 2);
        assert!(merged.tuples().is_empty());
        let loose = MultiEmConfig {
            m: 0.9,
            ..MultiEmConfig::default()
        };
        let merged = two_table_merge(&left, &right, &loose, 2);
        assert_eq!(merged.tuples().len(), 1);
    }

    #[test]
    fn merging_empty_tables_is_identity() {
        let left = MergedTable {
            items: vec![item((0, 0), vec![1.0, 0.0])],
        };
        let empty = MergedTable::default();
        let merged = two_table_merge(&left, &empty, &config(), 2);
        assert_eq!(merged.len(), 1);
        let merged = two_table_merge(&empty, &left, &config(), 2);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn merged_item_centroid_is_normalised_mean() {
        let left = MergedTable {
            items: vec![item((0, 0), vec![1.0, 0.0])],
        };
        let right = MergedTable {
            items: vec![item((1, 0), vec![1.0, 0.02])],
        };
        let merged = two_table_merge(&left, &right, &config(), 2);
        let fused = merged.items.iter().find(|i| i.len() == 2).unwrap();
        let norm: f32 = fused.embedding.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        // Centroid points between the two inputs (dominant first axis).
        assert!(fused.embedding[0] > 0.9);
    }

    #[test]
    fn hierarchical_merge_handles_odd_table_counts() {
        // Three tables, each holding the same real-world entity -> one 3-tuple.
        let t = |s: u32| MergedTable {
            items: vec![item((s, 0), vec![1.0, 0.0, 0.0])],
        };
        let out = hierarchical_merge(vec![t(0), t(1), t(2)], &config(), 3);
        assert_eq!(out.integrated.len(), 1);
        assert_eq!(out.integrated.items[0].len(), 3);
        assert_eq!(out.levels, 2);
    }

    #[test]
    fn transitive_merging_builds_multi_source_tuples() {
        // Entity appears in 4 sources with slightly different embeddings.
        let mk = |s: u32, eps: f32| item((s, 0), vec![1.0, eps, 0.0]);
        let tables = vec![
            MergedTable {
                items: vec![mk(0, 0.00)],
            },
            MergedTable {
                items: vec![mk(1, 0.02)],
            },
            MergedTable {
                items: vec![mk(2, 0.04)],
            },
            MergedTable {
                items: vec![mk(3, 0.06)],
            },
        ];
        let out = hierarchical_merge(tables, &config(), 3);
        let tuples = out.integrated.tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 4);
        assert_eq!(out.levels, 2);
        assert!(out.total_matched_pairs >= 3);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let gen_cfg = GeneratorConfig::small_test("merge-par", 4);
        let ds = MultiSourceGenerator::new(gen_cfg).generate(factory.as_ref(), &corruptor);
        let encoder = HashedLexicalEncoder::default();
        let selected = vec![2, 4, 5];
        let cfg_seq = MultiEmConfig {
            m: 0.4,
            parallel: false,
            ..MultiEmConfig::default()
        };
        let cfg_par = MultiEmConfig {
            m: 0.4,
            parallel: true,
            ..MultiEmConfig::default()
        };
        let store = EmbeddingStore::build(&ds, &encoder, &selected, &cfg_seq);
        let tables: Vec<MergedTable> = (0..ds.num_sources() as u32)
            .map(|s| MergedTable::from_source(&ds, s, &store))
            .collect();

        let seq = hierarchical_merge(tables.clone(), &cfg_seq, encoder.dim());
        let par = hierarchical_merge(tables, &cfg_par, encoder.dim());
        let mut seq_tuples = seq.integrated.tuples();
        let mut par_tuples = par.integrated.tuples();
        seq_tuples.sort();
        par_tuples.sort();
        assert_eq!(seq_tuples, par_tuples);
    }

    #[test]
    fn merge_order_seed_changes_pairing_but_not_drastically_results() {
        let mk = |s: u32, eps: f32| item((s, 0), vec![1.0, eps]);
        let tables: Vec<MergedTable> = (0..4)
            .map(|s| MergedTable {
                items: vec![mk(s, s as f32 * 0.01)],
            })
            .collect();
        let a = hierarchical_merge(
            tables.clone(),
            &MultiEmConfig {
                merge_seed: 0,
                ..config()
            },
            2,
        );
        let b = hierarchical_merge(
            tables,
            &MultiEmConfig {
                merge_seed: 3,
                ..config()
            },
            2,
        );
        assert_eq!(a.integrated.tuples(), b.integrated.tuples());
    }

    #[test]
    fn from_source_skips_zero_embeddings() {
        use multiem_table::{Record, Schema, Table, Value};
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("zeros", schema.clone());
        let t1 = Table::with_records(
            "a",
            schema.clone(),
            vec![
                Record::new(vec![Value::Text("real item".into())]),
                Record::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let t2 = Table::with_records("b", schema.clone(), vec![Record::from_texts(["real item"])])
            .unwrap();
        ds.add_table(t1).unwrap();
        ds.add_table(t2).unwrap();
        let encoder = HashedLexicalEncoder::default();
        let cfg = MultiEmConfig::default();
        let store = EmbeddingStore::build(&ds, &encoder, &[0], &cfg);
        let table = MergedTable::from_source(&ds, 0, &store);
        assert_eq!(table.len(), 1, "null-text entity must be skipped");
        assert!(table.approx_bytes() > 0);
    }

    #[test]
    fn hnsw_backend_produces_same_tuples_as_brute_force_on_small_data() {
        let factory = Domain::Geo.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let ds = MultiSourceGenerator::new(GeneratorConfig::small_test("geo-backend", 4))
            .generate(factory.as_ref(), &corruptor);
        let encoder = HashedLexicalEncoder::default();
        let selected = vec![0];
        let brute_cfg = MultiEmConfig {
            index_backend: IndexBackend::BruteForce,
            m: 0.4,
            ..MultiEmConfig::default()
        };
        let hnsw_cfg = MultiEmConfig {
            index_backend: IndexBackend::Hnsw,
            m: 0.4,
            ..MultiEmConfig::default()
        };
        let store = EmbeddingStore::build(&ds, &encoder, &selected, &brute_cfg);
        let tables: Vec<MergedTable> = (0..ds.num_sources() as u32)
            .map(|s| MergedTable::from_source(&ds, s, &store))
            .collect();
        let brute = hierarchical_merge(tables.clone(), &brute_cfg, encoder.dim());
        let hnsw = hierarchical_merge(tables, &hnsw_cfg, encoder.dim());
        let mut bt = brute.integrated.tuples();
        let mut ht = hnsw.integrated.tuples();
        bt.sort();
        ht.sort();
        // HNSW is approximate but on this scale the overlap should be near-total.
        let bt_set: std::collections::BTreeSet<_> = bt.iter().collect();
        let overlap = ht.iter().filter(|t| bt_set.contains(t)).count();
        assert!(
            overlap as f64 >= 0.9 * bt.len() as f64,
            "overlap {overlap} of {}",
            bt.len()
        );
    }
}
