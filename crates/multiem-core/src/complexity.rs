//! Analytical cost models of the three multi-table matching strategies
//! (Lemmas 1–3 of the paper).
//!
//! The models count mutual top-K search operations as a function of the number
//! of tables `S`, the average table size `n` and the top-K bound `k`:
//!
//! * pairwise matching:   `T_p(S, n) = S² · 2k·n·log n`          (Lemma 1)
//! * chain matching:      `T_c(S, n) = Σ_{i=1}^{S-1} k·i·n·log n + k·n·log(i·n)` (Lemma 2)
//! * hierarchical merge:  `T_h(S, n) = Σ_{i=1}^{log S} (S/2^i) · 2k·(2^{i-1}n)·log(2^{i-1}n)` (Lemma 3)
//!
//! These are used by the `merging_scaling` bench to plot the predicted curves
//! next to measured runtimes.

/// Cost of pairwise matching (Lemma 1), in abstract "search operations".
pub fn pairwise_cost(s: usize, n: usize, k: usize) -> f64 {
    if s < 2 || n == 0 {
        return 0.0;
    }
    let s = s as f64;
    let n = n as f64;
    let k = k as f64;
    // (S choose 2) two-table matches, each 2·k·n·log2(n).
    (s * (s - 1.0) / 2.0) * 2.0 * k * n * n.log2().max(1.0)
}

/// Cost of chain matching (Lemma 2).
pub fn chain_cost(s: usize, n: usize, k: usize) -> f64 {
    if s < 2 || n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let kf = k as f64;
    let mut total = 0.0;
    for i in 1..s {
        let base = (i as f64) * nf; // size of the growing base table
        total += kf * base * nf.log2().max(1.0) + kf * nf * base.log2().max(1.0);
    }
    total
}

/// Cost of table-wise hierarchical merging (Lemma 3).
pub fn hierarchical_cost(s: usize, n: usize, k: usize) -> f64 {
    if s < 2 || n == 0 {
        return 0.0;
    }
    let kf = k as f64;
    let nf = n as f64;
    let levels = (s as f64).log2().ceil() as u32;
    let mut total = 0.0;
    let mut tables = s as f64;
    for level in 0..levels {
        let table_size = nf * 2f64.powi(level as i32);
        let merges = (tables / 2.0).floor();
        total += merges * 2.0 * kf * table_size * table_size.log2().max(1.0);
        tables = (tables / 2.0).ceil();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_is_cheapest_for_many_tables() {
        for &s in &[4usize, 8, 16, 32] {
            let n = 10_000;
            let h = hierarchical_cost(s, n, 1);
            let c = chain_cost(s, n, 1);
            let p = pairwise_cost(s, n, 1);
            assert!(h < c, "S={s}: hierarchical {h} !< chain {c}");
            assert!(c < p, "S={s}: chain {c} !< pairwise {p}");
        }
    }

    #[test]
    fn pairwise_grows_quadratically_in_s() {
        let n = 1_000;
        let base = pairwise_cost(4, n, 1);
        let quadrupled = pairwise_cost(8, n, 1);
        let ratio = quadrupled / base;
        assert!((ratio - 4.67).abs() < 1.0, "ratio {ratio}"); // (8*7)/(4*3) = 4.67
    }

    #[test]
    fn costs_scale_with_k_and_n() {
        assert!(hierarchical_cost(8, 1000, 2) > hierarchical_cost(8, 1000, 1));
        assert!(chain_cost(8, 2000, 1) > chain_cost(8, 1000, 1));
        assert!(pairwise_cost(8, 2000, 1) > pairwise_cost(8, 1000, 1));
    }

    #[test]
    fn degenerate_inputs_cost_nothing() {
        assert_eq!(pairwise_cost(1, 100, 1), 0.0);
        assert_eq!(chain_cost(2, 0, 1), 0.0);
        assert_eq!(hierarchical_cost(0, 100, 1), 0.0);
    }

    #[test]
    fn two_tables_all_strategies_similar_order() {
        // With S = 2 every strategy degenerates to one two-table match; the
        // models should agree within a small constant factor.
        let p = pairwise_cost(2, 10_000, 1);
        let c = chain_cost(2, 10_000, 1);
        let h = hierarchical_cost(2, 10_000, 1);
        for v in [p, c, h] {
            assert!(v > 0.0);
        }
        assert!(p / h < 2.5 && h / p < 2.5);
        assert!(c / h < 2.5 && h / c < 2.5);
    }
}
