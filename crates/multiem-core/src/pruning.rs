//! Density-based Pruning (Section III-D, Algorithm 4).
//!
//! Hierarchical merging only ever looks at the two tables currently being
//! merged, so a tuple can accumulate an entity that is close to *one* member
//! but far from the group as a whole (Figure 4). The pruning phase fixes this
//! per tuple: members are classified into core / reachable / outlier entities
//! with DBSCAN-style density definitions over the **original entity
//! embeddings** (Euclidean distance in the paper), outliers are removed, and
//! the tuple survives only if at least two members remain.
//!
//! Each tuple is pruned independently, so the phase parallelises trivially
//! (Section III-E).

use crate::config::MultiEmConfig;
use crate::merging::MergedTable;
use crate::representation::EmbeddingStore;
use multiem_cluster::{classify_points, DbscanConfig, PointClass};
use multiem_table::{EntityId, MatchTuple};
use rayon::prelude::*;

/// The result of pruning one merged item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneOutcome {
    /// Members kept (core + reachable entities).
    pub kept: Vec<EntityId>,
    /// Members removed as outliers.
    pub removed: Vec<EntityId>,
}

impl PruneOutcome {
    /// Whether the pruned item still forms a valid matched tuple (≥ 2 members).
    pub fn is_tuple(&self) -> bool {
        self.kept.len() >= 2
    }

    /// The surviving tuple, if any.
    pub fn tuple(&self) -> Option<MatchTuple> {
        if self.is_tuple() {
            Some(MatchTuple::new(self.kept.iter().copied()))
        } else {
            None
        }
    }
}

/// Prune a single data item `x = {e_1, ..., e_u}` (Algorithm 4 plus removal).
pub fn prune_item(
    members: &[EntityId],
    store: &EmbeddingStore,
    config: &MultiEmConfig,
) -> PruneOutcome {
    let points: Vec<&[f32]> = members.iter().map(|&id| store.embedding(id)).collect();
    let (kept, removed) = prune_points(&points, config);
    PruneOutcome {
        kept: kept.into_iter().map(|i| members[i]).collect(),
        removed: removed.into_iter().map(|i| members[i]).collect(),
    }
}

/// Algorithm 4 over raw embedding points, returning `(kept, removed)` index
/// sets. This is the storage-agnostic core of [`prune_item`]: callers that
/// do not keep a resident [`EmbeddingStore`] (the online store's
/// spill-to-disk backend) fetch member embeddings themselves and prune the
/// points directly.
pub fn prune_points(points: &[&[f32]], config: &MultiEmConfig) -> (Vec<usize>, Vec<usize>) {
    if points.len() < 2 {
        return ((0..points.len()).collect(), Vec::new());
    }
    let dbscan = DbscanConfig {
        eps: config.epsilon,
        min_pts: config.min_pts,
        metric: config.prune_metric,
    };
    let classes = classify_points(points, &dbscan);
    let mut kept = Vec::with_capacity(points.len());
    let mut removed = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        match class {
            PointClass::Core | PointClass::Reachable => kept.push(i),
            PointClass::Outlier => removed.push(i),
        }
    }
    (kept, removed)
}

/// Summary of pruning an entire merged table.
#[derive(Debug, Clone, Default)]
pub struct PruneSummary {
    /// Final matched tuples (after outlier removal).
    pub tuples: Vec<MatchTuple>,
    /// Total number of entities removed as outliers.
    pub outliers_removed: usize,
    /// Number of candidate tuples that collapsed below two members.
    pub tuples_dropped: usize,
}

/// Prune every multi-member item of the integrated table.
///
/// Runs in parallel over items when `config.parallel` is set.
pub fn prune_merged_table(
    table: &MergedTable,
    store: &EmbeddingStore,
    config: &MultiEmConfig,
) -> PruneSummary {
    let candidates: Vec<&crate::merging::MergeItem> =
        table.items.iter().filter(|i| i.len() >= 2).collect();

    let outcomes: Vec<PruneOutcome> = if config.parallel {
        candidates
            .par_iter()
            .map(|item| prune_item(&item.members, store, config))
            .collect()
    } else {
        candidates
            .iter()
            .map(|item| prune_item(&item.members, store, config))
            .collect()
    };

    let mut summary = PruneSummary::default();
    for outcome in outcomes {
        summary.outliers_removed += outcome.removed.len();
        match outcome.tuple() {
            Some(t) => summary.tuples.push(t),
            None => summary.tuples_dropped += 1,
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merging::{MergeItem, MergedTable};
    use crate::representation::EmbeddingStore;
    use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};
    use multiem_table::{Dataset, Record, Schema, Table};

    /// Build a dataset whose entity embeddings we can reason about: each
    /// record's text controls its position in embedding space.
    fn dataset_with_titles(titles_per_source: &[Vec<&str>]) -> (Dataset, EmbeddingStore) {
        let schema = Schema::new(["title"]).shared();
        let mut ds = Dataset::new("prune-test", schema.clone());
        for (s, titles) in titles_per_source.iter().enumerate() {
            let records: Vec<Record> = titles.iter().map(|t| Record::from_texts([*t])).collect();
            ds.add_table(Table::with_records(format!("s{s}"), schema.clone(), records).unwrap())
                .unwrap();
        }
        let encoder = HashedLexicalEncoder::default();
        let cfg = MultiEmConfig::default();
        let store = EmbeddingStore::build(&ds, &encoder, &[0], &cfg);
        (ds, store)
    }

    fn id(s: u32, r: u32) -> EntityId {
        EntityId::new(s, r)
    }

    #[test]
    fn outlier_member_is_removed() {
        // Three near-identical titles plus one completely different product.
        let (_ds, store) = dataset_with_titles(&[
            vec!["apple iphone 8 plus 64gb silver"],
            vec!["apple iphone 8 plus 64gb silver unlocked"],
            vec!["apple iphone 8 plus 5.5 64gb silver"],
            vec!["makita cordless drill 18v kit"],
        ]);
        let members = vec![id(0, 0), id(1, 0), id(2, 0), id(3, 0)];
        let config = MultiEmConfig {
            epsilon: 0.8,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        let outcome = prune_item(&members, &store, &config);
        assert_eq!(outcome.removed, vec![id(3, 0)]);
        assert_eq!(outcome.kept.len(), 3);
        assert!(outcome.is_tuple());
        assert_eq!(outcome.tuple().unwrap().len(), 3);
    }

    #[test]
    fn coherent_tuple_is_untouched() {
        let (_ds, store) = dataset_with_titles(&[
            vec!["golden heart river"],
            vec!["golden heart river live"],
            vec!["golden heart river remastered"],
        ]);
        let members = vec![id(0, 0), id(1, 0), id(2, 0)];
        let config = MultiEmConfig {
            epsilon: 1.0,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        let outcome = prune_item(&members, &store, &config);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.kept.len(), 3);
    }

    #[test]
    fn pair_of_dissimilar_entities_is_dropped_entirely() {
        let (_ds, store) = dataset_with_titles(&[
            vec!["apple iphone 8 plus"],
            vec!["bosch washing machine 8kg"],
        ]);
        let members = vec![id(0, 0), id(1, 0)];
        let config = MultiEmConfig {
            epsilon: 0.5,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        let outcome = prune_item(&members, &store, &config);
        assert!(!outcome.is_tuple());
        assert!(outcome.tuple().is_none());
        assert_eq!(outcome.kept.len() + outcome.removed.len(), 2);
    }

    #[test]
    fn singleton_items_pass_through() {
        let (_ds, store) = dataset_with_titles(&[vec!["lonely star anthem"]]);
        let members = vec![id(0, 0)];
        let outcome = prune_item(&members, &store, &MultiEmConfig::default());
        assert_eq!(outcome.kept, members);
        assert!(outcome.removed.is_empty());
        assert!(!outcome.is_tuple());
    }

    #[test]
    fn epsilon_controls_strictness() {
        let (_ds, store) = dataset_with_titles(&[
            vec!["crimson shadow ballad"],
            vec!["crimson shadow ballad deluxe edition bonus"],
        ]);
        let members = vec![id(0, 0), id(1, 0)];
        let strict = MultiEmConfig {
            epsilon: 0.1,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        let loose = MultiEmConfig {
            epsilon: 1.2,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        assert!(!prune_item(&members, &store, &strict).is_tuple());
        assert!(prune_item(&members, &store, &loose).is_tuple());
    }

    #[test]
    fn prune_merged_table_summary_counts() {
        let (_ds, store) = dataset_with_titles(&[
            vec!["apple iphone 8 plus 64gb", "sony bravia tv 55"],
            vec!["apple iphone 8 plus 64 gb", "logitech webcam hd"],
            vec!["apple iphone 8 64gb plus", "dyson vacuum v11"],
        ]);
        let encoder = HashedLexicalEncoder::default();
        let config = MultiEmConfig {
            epsilon: 0.8,
            min_pts: 2,
            ..MultiEmConfig::default()
        };
        let good = MergeItem {
            members: vec![id(0, 0), id(1, 0), id(2, 0)],
            embedding: vec![0.0; encoder.dim()],
        };
        // A bogus tuple of three unrelated products: everything is an outlier.
        let bad = MergeItem {
            members: vec![id(0, 1), id(1, 1), id(2, 1)],
            embedding: vec![0.0; encoder.dim()],
        };
        let singleton = MergeItem {
            members: vec![id(0, 1)],
            embedding: vec![0.0; encoder.dim()],
        };
        let table = MergedTable {
            items: vec![good, bad, singleton],
        };
        let summary = prune_merged_table(&table, &store, &config);
        assert_eq!(summary.tuples.len(), 1);
        assert_eq!(summary.tuples[0].len(), 3);
        assert_eq!(summary.tuples_dropped, 1);
        assert!(summary.outliers_removed >= 2);
    }

    #[test]
    fn parallel_and_sequential_pruning_agree() {
        let (_ds, store) = dataset_with_titles(&[
            vec!["silver river serenade", "broken mirror anthem"],
            vec!["silver river serenade live", "makita drill 18v"],
            vec!["silver river serenade acoustic", "samsung galaxy s21 ultra"],
        ]);
        let mk = |rows: &[(u32, u32)]| MergeItem {
            members: rows.iter().map(|&(s, r)| id(s, r)).collect(),
            embedding: vec![0.0; store.dim()],
        };
        let table = MergedTable {
            items: vec![mk(&[(0, 0), (1, 0), (2, 0)]), mk(&[(0, 1), (1, 1), (2, 1)])],
        };
        let seq_cfg = MultiEmConfig {
            parallel: false,
            ..MultiEmConfig::default()
        };
        let par_cfg = MultiEmConfig {
            parallel: true,
            ..MultiEmConfig::default()
        };
        let mut a = prune_merged_table(&table, &store, &seq_cfg).tuples;
        let mut b = prune_merged_table(&table, &store, &par_cfg).tuples;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
