//! MultiEM — unsupervised multi-table entity matching (ICDE 2024), in Rust.
//!
//! This crate implements the paper's primary contribution: a three-phase
//! pipeline that identifies groups ("tuples") of records from multiple source
//! tables that refer to the same real-world entity, with no labelled data.
//!
//! 1. **Enhanced Entity Representation** ([`representation`]) — every entity is
//!    serialized to a sentence and embedded; an automated attribute-selection
//!    step (Algorithm 1) measures, per attribute, how much shuffling its values
//!    perturbs the embeddings and keeps only the attributes whose perturbation
//!    is large (threshold `γ`), so opaque ids and other noise attributes do not
//!    pollute the representation.
//! 2. **Table-wise Hierarchical Merging** ([`merging`]) — tables are merged
//!    pairwise, level by level, until a single table remains (Algorithm 2).
//!    Each two-table merge finds mutual top-K nearest neighbours under a
//!    distance threshold `m` using an ANN index (Algorithm 3, Eq. 1) and fuses
//!    matched items through transitivity, giving `O(S·k·n · log S · log n)`
//!    total work (Lemma 3) instead of the quadratic pairwise extension.
//! 3. **Density-based Pruning** ([`pruning`]) — each merged tuple is cleaned by
//!    classifying its members into core / reachable / outlier entities
//!    (Definitions 3–5, Algorithm 4) and dropping the outliers.
//!
//! Both the merging and the pruning phase are embarrassingly parallel; the
//! [`pipeline::MultiEm`] runner exposes a sequential and a rayon-parallel mode
//! (Section III-E of the paper).
//!
//! ```
//! use multiem_core::{MultiEm, MultiEmConfig};
//! use multiem_datagen::{benchmark_dataset};
//! use multiem_embed::HashedLexicalEncoder;
//!
//! let data = benchmark_dataset("geo", 0.02).unwrap();
//! let encoder = HashedLexicalEncoder::default();
//! let multiem = MultiEm::new(MultiEmConfig::default(), encoder);
//! let output = multiem.run(&data.dataset).unwrap();
//! println!("found {} matched tuples", output.tuples.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod config;
pub mod error;
pub mod merging;
pub mod pipeline;
pub mod pruning;
pub mod representation;

pub use config::{IndexBackend, MultiEmConfig};
pub use error::MultiEmError;
pub use merging::{hierarchical_merge, two_table_merge, MergeItem, MergedTable};
pub use pipeline::{MultiEm, MultiEmOutput, PhaseBreakdown};
pub use pruning::{prune_item, prune_merged_table, prune_points, PruneOutcome};
pub use representation::{
    select_attributes, AttributeSelection, AttributeSignificance, EmbeddingStore,
};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, MultiEmError>;
