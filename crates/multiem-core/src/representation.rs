//! Enhanced Entity Representation (Section III-B, Algorithm 1).
//!
//! Two pieces live here:
//!
//! * [`select_attributes`] — the automated attribute-selection algorithm:
//!   shuffle one attribute's values across a sample of entities, re-embed, and
//!   measure how much the embeddings move. Attributes whose shuffling barely
//!   moves the embeddings (mean cosine similarity above `γ`) carry little
//!   signal for the encoder — opaque ids, track numbers, low-cardinality flags
//!   — and are discarded.
//! * [`EmbeddingStore`] — serializes every entity of the dataset using the
//!   selected attributes and encodes it, keeping one embedding matrix per
//!   source table with `EntityId`-based lookup.

use crate::config::MultiEmConfig;
use crate::error::MultiEmError;
use crate::Result;
use multiem_embed::{cosine_similarity, EmbeddingModel, Matrix};
use multiem_table::{serialize_record_projected, AttrId, Dataset, EntityId, Record};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Significance measurement of one attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeSignificance {
    /// Attribute index in the schema.
    pub attr: AttrId,
    /// Attribute name.
    pub name: String,
    /// Mean cosine similarity between original and shuffled embeddings
    /// (lower = the attribute matters more).
    pub mean_similarity: f64,
    /// Whether the attribute was selected.
    pub selected: bool,
}

/// The outcome of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeSelection {
    /// Per-attribute measurements, in schema order.
    pub scores: Vec<AttributeSignificance>,
    /// Indices of the selected attributes, in schema order.
    pub selected: Vec<AttrId>,
}

impl AttributeSelection {
    /// Names of the selected attributes.
    pub fn selected_names(&self) -> Vec<&str> {
        self.scores
            .iter()
            .filter(|s| s.selected)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// A selection that keeps every attribute (used by the `w/o EER` ablation).
    pub fn all_attributes(dataset: &Dataset) -> Self {
        let scores = dataset
            .schema()
            .names()
            .enumerate()
            .map(|(i, name)| AttributeSignificance {
                attr: i,
                name: name.to_string(),
                mean_similarity: 0.0,
                selected: true,
            })
            .collect::<Vec<_>>();
        let selected = (0..dataset.schema().len()).collect();
        Self { scores, selected }
    }
}

/// Run the automated attribute selection (Algorithm 1).
///
/// * `sample_ratio` is the paper's `r`: the fraction of (concatenated) entities
///   used to estimate significance scores.
/// * `gamma` is the paper's `γ`: an attribute is **selected** when the mean
///   cosine similarity between the original and attribute-shuffled embeddings
///   is `≤ γ` — i.e. shuffling the attribute visibly changes the embedding, as
///   in Example 1 of the paper (replacing `album` moved similarity to 0.79
///   while replacing `id` only moved it to 0.91).
///
/// If every attribute would be rejected, the single most significant attribute
/// is kept so the pipeline always has something to embed.
pub fn select_attributes(
    dataset: &Dataset,
    encoder: &dyn EmbeddingModel,
    config: &MultiEmConfig,
) -> Result<AttributeSelection> {
    let schema = dataset.schema();
    if schema.is_empty() {
        return Err(MultiEmError::InvalidConfig(
            "dataset schema has no attributes".into(),
        ));
    }
    let all: Vec<(EntityId, &Record)> = dataset.concat();
    if all.is_empty() {
        return Err(MultiEmError::EmptyDataset);
    }

    // Sample `r * |E|` entities (at least 2, at most all).
    let mut rng = ChaCha8Rng::seed_from_u64(config.merge_seed ^ 0x5EED_A771);
    let mut indices: Vec<usize> = (0..all.len()).collect();
    indices.shuffle(&mut rng);
    let sample_size = ((all.len() as f64 * config.sample_ratio).ceil() as usize)
        .clamp(2.min(all.len()), all.len());
    indices.truncate(sample_size);
    let sample: Vec<&Record> = indices.iter().map(|&i| all[i].1).collect();

    let all_attrs: Vec<AttrId> = (0..schema.len()).collect();
    // Original embeddings of the sample (all attributes).
    let original_texts: Vec<String> = sample
        .iter()
        .map(|r| serialize_record_projected(r, &all_attrs, &config.serialize))
        .collect();
    let original = encoder.encode_batch(&original_texts);

    let mut scores = Vec::with_capacity(schema.len());
    for attr in 0..schema.len() {
        // Shuffle this attribute's values across the sample.
        let mut values: Vec<&multiem_table::Value> = sample
            .iter()
            .map(|r| r.value(attr).expect("attr within schema"))
            .collect();
        values.shuffle(&mut rng);

        let shuffled_texts: Vec<String> = sample
            .iter()
            .zip(&values)
            .map(|(r, v)| {
                let mut clone = (*r).clone();
                clone.set_value(attr, (*v).clone());
                serialize_record_projected(&clone, &all_attrs, &config.serialize)
            })
            .collect();
        let shuffled = encoder.encode_batch(&shuffled_texts);

        let mut total = 0.0f64;
        for i in 0..original.len() {
            total += f64::from(cosine_similarity(original.row(i), shuffled.row(i)));
        }
        let mean_similarity = if original.is_empty() {
            1.0
        } else {
            total / original.len() as f64
        };
        scores.push(AttributeSignificance {
            attr,
            name: schema.name(attr).unwrap_or("").to_string(),
            mean_similarity,
            selected: mean_similarity <= config.gamma,
        });
    }

    // Guarantee at least one selected attribute.
    if scores.iter().all(|s| !s.selected) {
        if let Some(best) = scores.iter_mut().min_by(|a, b| {
            a.mean_similarity
                .partial_cmp(&b.mean_similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            best.selected = true;
        }
    }

    let selected = scores
        .iter()
        .filter(|s| s.selected)
        .map(|s| s.attr)
        .collect();
    Ok(AttributeSelection { scores, selected })
}

/// Embeddings of every entity in the dataset, organised per source table.
///
/// Besides the batch [`EmbeddingStore::build`] constructor, the store can be
/// grown incrementally ([`EmbeddingStore::add_source`] /
/// [`EmbeddingStore::push`]), which is how the streaming entity store of
/// `multiem-online` keeps `EntityId`-based lookups working for records that
/// arrive after bootstrap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingStore {
    dim: usize,
    per_source: Vec<Matrix>,
}

impl EmbeddingStore {
    /// Create an empty store for embeddings of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self {
            dim,
            per_source: Vec::new(),
        }
    }

    /// Append a new (initially empty) source table, returning its source id.
    pub fn add_source(&mut self) -> u32 {
        self.per_source.push(Matrix::new(self.dim));
        (self.per_source.len() - 1) as u32
    }

    /// Append one entity embedding to a source, returning the [`EntityId`]
    /// under which it is retrievable.
    ///
    /// # Panics
    /// Panics if the source does not exist or the embedding has the wrong
    /// dimensionality.
    pub fn push(&mut self, source: u32, embedding: &[f32]) -> EntityId {
        let matrix = &mut self.per_source[source as usize];
        matrix.push_row(embedding);
        EntityId::new(source, (matrix.len() - 1) as u32)
    }
    /// Serialize (using `selected` attributes) and encode every entity of the
    /// dataset. Encoding is parallel across source tables.
    pub fn build(
        dataset: &Dataset,
        encoder: &dyn EmbeddingModel,
        selected: &[AttrId],
        config: &MultiEmConfig,
    ) -> Self {
        let per_source: Vec<Matrix> = dataset
            .tables()
            .par_iter()
            .map(|table| {
                let texts: Vec<String> = table
                    .records()
                    .iter()
                    .map(|r| serialize_record_projected(r, selected, &config.serialize))
                    .collect();
                encoder.encode_batch(&texts)
            })
            .collect();
        Self {
            dim: encoder.dim(),
            per_source,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of source tables covered.
    pub fn num_sources(&self) -> usize {
        self.per_source.len()
    }

    /// Number of embeddings stored for one source.
    pub fn source_len(&self, source: u32) -> usize {
        self.per_source
            .get(source as usize)
            .map(Matrix::len)
            .unwrap_or(0)
    }

    /// Borrow the embedding of an entity.
    ///
    /// # Panics
    /// Panics if the entity id is out of range for the store.
    pub fn embedding(&self, id: EntityId) -> &[f32] {
        self.per_source[id.source as usize].row(id.row as usize)
    }

    /// The embedding matrix of one source table.
    pub fn source_matrix(&self, source: u32) -> &Matrix {
        &self.per_source[source as usize]
    }

    /// Total accounted bytes across all matrices.
    pub fn approx_bytes(&self) -> usize {
        self.per_source.iter().map(Matrix::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiem_datagen::{
        benchmark_dataset, CorruptionConfig, Corruptor, Domain, GeneratorConfig,
        MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;

    fn music_dataset() -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig {
            name: "music-eer".into(),
            num_sources: 4,
            num_tuples: 80,
            num_singletons: 20,
            min_tuple_size: 2,
            max_tuple_size: 4,
            seed: 5,
        };
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn selects_informative_music_attributes_and_drops_id() {
        let ds = music_dataset();
        let encoder = HashedLexicalEncoder::default();
        let config = MultiEmConfig {
            sample_ratio: 0.5,
            gamma: 0.9,
            ..MultiEmConfig::default()
        };
        let selection = select_attributes(&ds, &encoder, &config).unwrap();
        let names = selection.selected_names();
        // Table VII: title, artist, album are the expert-chosen attributes.
        assert!(names.contains(&"title"), "selected: {names:?}");
        assert!(names.contains(&"artist"), "selected: {names:?}");
        // The opaque per-source id and the track number must be rejected.
        assert!(!names.contains(&"id"), "selected: {names:?}");
        assert!(!names.contains(&"number"), "selected: {names:?}");
        // Scores are reported for every attribute.
        assert_eq!(selection.scores.len(), ds.schema().len());
    }

    #[test]
    fn significant_attributes_have_lower_similarity() {
        let ds = music_dataset();
        let encoder = HashedLexicalEncoder::default();
        let config = MultiEmConfig {
            sample_ratio: 0.5,
            ..MultiEmConfig::default()
        };
        let selection = select_attributes(&ds, &encoder, &config).unwrap();
        let sim_of = |name: &str| {
            selection
                .scores
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.mean_similarity)
                .unwrap()
        };
        assert!(sim_of("title") < sim_of("id"));
        assert!(sim_of("artist") < sim_of("number"));
    }

    #[test]
    fn at_least_one_attribute_is_always_selected() {
        let ds = music_dataset();
        let encoder = HashedLexicalEncoder::default();
        // gamma = 0 would normally reject everything.
        let config = MultiEmConfig {
            gamma: 0.0,
            sample_ratio: 0.3,
            ..MultiEmConfig::default()
        };
        let selection = select_attributes(&ds, &encoder, &config).unwrap();
        assert_eq!(selection.selected.len(), 1);
    }

    #[test]
    fn single_attribute_dataset_keeps_it() {
        let bd = benchmark_dataset("shopee", 0.01).unwrap();
        let encoder = HashedLexicalEncoder::default();
        let config = MultiEmConfig {
            sample_ratio: 0.5,
            ..MultiEmConfig::default()
        };
        let selection = select_attributes(&bd.dataset, &encoder, &config).unwrap();
        assert_eq!(selection.selected_names(), vec!["title"]);
    }

    #[test]
    fn all_attributes_helper_selects_everything() {
        let ds = music_dataset();
        let sel = AttributeSelection::all_attributes(&ds);
        assert_eq!(sel.selected.len(), ds.schema().len());
        assert!(sel.scores.iter().all(|s| s.selected));
    }

    #[test]
    fn embedding_store_lookup_matches_direct_encoding() {
        let ds = music_dataset();
        let encoder = HashedLexicalEncoder::default();
        let config = MultiEmConfig::default();
        let selected: Vec<AttrId> = vec![2, 4, 5]; // title, artist, album
        let store = EmbeddingStore::build(&ds, &encoder, &selected, &config);
        assert_eq!(store.num_sources(), ds.num_sources());
        assert_eq!(store.dim(), encoder.dim());

        let id = ds.entity_ids().nth(7).unwrap();
        let record = ds.record(id).unwrap();
        let text = serialize_record_projected(record, &selected, &config.serialize);
        let direct = encoder.encode(&text);
        assert_eq!(store.embedding(id), direct.as_slice());
        assert!(store.approx_bytes() > 0);
        assert_eq!(store.source_len(0), ds.table(0).unwrap().len());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let schema = multiem_table::Schema::new(["a"]).shared();
        let ds = Dataset::new("empty", schema);
        let encoder = HashedLexicalEncoder::default();
        let err = select_attributes(&ds, &encoder, &MultiEmConfig::default());
        assert!(err.is_err());
    }
}
