//! Error type for the MultiEM pipeline.

use std::fmt;

/// Errors produced by the MultiEM pipeline.
#[derive(Debug)]
pub enum MultiEmError {
    /// The input dataset has no source tables.
    EmptyDataset,
    /// The input dataset has a single table; multi-table EM needs at least two.
    SingleTable,
    /// Invalid configuration value.
    InvalidConfig(String),
    /// Error bubbled up from the table substrate.
    Table(multiem_table::TableError),
}

impl fmt::Display for MultiEmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiEmError::EmptyDataset => write!(f, "dataset contains no source tables"),
            MultiEmError::SingleTable => {
                write!(
                    f,
                    "multi-table entity matching requires at least two source tables"
                )
            }
            MultiEmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MultiEmError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for MultiEmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiEmError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<multiem_table::TableError> for MultiEmError {
    fn from(e: multiem_table::TableError) -> Self {
        MultiEmError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MultiEmError::EmptyDataset
            .to_string()
            .contains("no source tables"));
        assert!(MultiEmError::SingleTable
            .to_string()
            .contains("at least two"));
        assert!(MultiEmError::InvalidConfig("k must be > 0".into())
            .to_string()
            .contains("k must"));
    }

    #[test]
    fn table_error_conversion() {
        let e: MultiEmError = multiem_table::TableError::UnknownSource(3).into();
        assert!(matches!(e, MultiEmError::Table(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
