//! The end-to-end MultiEM runner.
//!
//! Ties the three phases together, records per-phase wall-clock times (the S /
//! R / M / P bars of Figure 5) and accounts the memory of the large structures
//! it materialises (Table VI).

use crate::config::MultiEmConfig;
use crate::error::MultiEmError;
use crate::merging::{hierarchical_merge, MergedTable};
use crate::pruning::prune_merged_table;
use crate::representation::{select_attributes, AttributeSelection, EmbeddingStore};
use crate::Result;
use multiem_embed::EmbeddingModel;
use multiem_table::{Dataset, MatchTuple};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Wall-clock durations of the pipeline phases (Figure 5 notation:
/// S = attribute selection, R = representation, M = merging, P = pruning).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Automated attribute selection (Algorithm 1).
    pub attribute_selection: Duration,
    /// Entity serialization + encoding.
    pub representation: Duration,
    /// Table-wise hierarchical merging.
    pub merging: Duration,
    /// Density-based pruning.
    pub pruning: Duration,
}

impl PhaseBreakdown {
    /// Total time across the four phases.
    pub fn total(&self) -> Duration {
        self.attribute_selection + self.representation + self.merging + self.pruning
    }

    /// Phases as `(label, duration)` pairs in execution order.
    pub fn as_pairs(&self) -> Vec<(&'static str, Duration)> {
        vec![
            ("S", self.attribute_selection),
            ("R", self.representation),
            ("M", self.merging),
            ("P", self.pruning),
        ]
    }
}

/// The result of one MultiEM run.
#[derive(Debug, Clone)]
pub struct MultiEmOutput {
    /// Predicted matched tuples.
    pub tuples: Vec<MatchTuple>,
    /// Outcome of the attribute-selection step.
    pub selection: AttributeSelection,
    /// Per-phase wall-clock durations.
    pub phases: PhaseBreakdown,
    /// Total wall-clock runtime.
    pub total_time: Duration,
    /// Byte-accounted memory per component (embeddings, ANN indexes, merged
    /// tables).
    pub memory_bytes: BTreeMap<String, usize>,
    /// Number of hierarchy levels executed by the merging phase.
    pub merge_levels: usize,
    /// Number of entities removed as outliers by the pruning phase.
    pub outliers_removed: usize,
    /// Number of candidate tuples dropped entirely by the pruning phase.
    pub tuples_dropped: usize,
}

impl MultiEmOutput {
    /// Total accounted memory in bytes.
    pub fn total_memory_bytes(&self) -> usize {
        self.memory_bytes.values().sum()
    }
}

/// The MultiEM pipeline, generic over the embedding backend.
#[derive(Debug, Clone)]
pub struct MultiEm<E: EmbeddingModel> {
    config: MultiEmConfig,
    encoder: E,
}

impl<E: EmbeddingModel> MultiEm<E> {
    /// Create a pipeline with the given configuration and encoder.
    pub fn new(config: MultiEmConfig, encoder: E) -> Self {
        Self { config, encoder }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiEmConfig {
        &self.config
    }

    /// The embedding backend.
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// Run the full pipeline on a dataset.
    pub fn run(&self, dataset: &Dataset) -> Result<MultiEmOutput> {
        self.config
            .validate()
            .map_err(MultiEmError::InvalidConfig)?;
        if dataset.num_sources() == 0 {
            return Err(MultiEmError::EmptyDataset);
        }
        if dataset.num_sources() == 1 {
            return Err(MultiEmError::SingleTable);
        }

        let start = Instant::now();
        let mut phases = PhaseBreakdown::default();
        let mut memory: BTreeMap<String, usize> = BTreeMap::new();

        // Phase S: automated attribute selection.
        let t = Instant::now();
        let selection = if self.config.attribute_selection {
            select_attributes(dataset, &self.encoder, &self.config)?
        } else {
            AttributeSelection::all_attributes(dataset)
        };
        phases.attribute_selection = t.elapsed();

        // Phase R: entity representation.
        let t = Instant::now();
        let store =
            EmbeddingStore::build(dataset, &self.encoder, &selection.selected, &self.config);
        phases.representation = t.elapsed();
        memory.insert("embeddings".to_string(), store.approx_bytes());

        // Phase M: table-wise hierarchical merging.
        let t = Instant::now();
        let tables: Vec<MergedTable> = (0..dataset.num_sources() as u32)
            .map(|s| MergedTable::from_source(dataset, s, &store))
            .collect();
        let merge_out = hierarchical_merge(tables, &self.config, self.encoder.dim());
        phases.merging = t.elapsed();
        memory.insert("ann-indexes".to_string(), merge_out.peak_index_bytes);
        memory.insert(
            "merged-table".to_string(),
            merge_out.integrated.approx_bytes(),
        );

        // Phase P: density-based pruning.
        let t = Instant::now();
        let (tuples, outliers_removed, tuples_dropped) = if self.config.pruning {
            let summary = prune_merged_table(&merge_out.integrated, &store, &self.config);
            (
                summary.tuples,
                summary.outliers_removed,
                summary.tuples_dropped,
            )
        } else {
            (merge_out.integrated.tuples(), 0, 0)
        };
        phases.pruning = t.elapsed();

        Ok(MultiEmOutput {
            tuples,
            selection,
            phases,
            total_time: start.elapsed(),
            memory_bytes: memory,
            merge_levels: merge_out.levels,
            outliers_removed,
            tuples_dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiEmConfig;
    use multiem_datagen::{
        benchmark_dataset, CorruptionConfig, Corruptor, Domain, GeneratorConfig,
        MultiSourceGenerator,
    };
    use multiem_embed::HashedLexicalEncoder;
    use multiem_eval::evaluate;

    fn music_dataset(seed: u64) -> Dataset {
        let factory = Domain::Music.factory();
        let corruptor = Corruptor::new(CorruptionConfig::light());
        let cfg = GeneratorConfig {
            name: "music-pipe".into(),
            num_sources: 5,
            num_tuples: 60,
            num_singletons: 30,
            min_tuple_size: 2,
            max_tuple_size: 4,
            seed,
        };
        MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
    }

    #[test]
    fn end_to_end_music_quality() {
        let ds = music_dataset(3);
        let config = MultiEmConfig {
            m: 0.35,
            ..MultiEmConfig::default()
        };
        let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
        let output = pipeline.run(&ds).unwrap();
        let report = evaluate(&output.tuples, ds.ground_truth().unwrap());
        assert!(
            report.pair.f1 > 0.6,
            "pair F1 too low: {:?} ({} tuples predicted)",
            report.pair,
            output.tuples.len()
        );
        assert!(
            report.tuple.f1 > 0.4,
            "tuple F1 too low: {:?}",
            report.tuple
        );
        // Sanity on the bookkeeping.
        assert!(output.total_time >= output.phases.merging);
        assert!(output.total_memory_bytes() > 0);
        assert_eq!(output.merge_levels, 3); // ceil(log2(5))
        assert!(!output.selection.selected.is_empty());
    }

    #[test]
    fn geo_benchmark_preset_end_to_end() {
        let bd = benchmark_dataset("geo", 0.05).unwrap();
        let config = MultiEmConfig {
            m: 0.35,
            ..MultiEmConfig::default()
        };
        let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
        let output = pipeline.run(&bd.dataset).unwrap();
        let report = evaluate(&output.tuples, bd.dataset.ground_truth().unwrap());
        assert!(report.pair.f1 > 0.5, "geo pair F1: {:?}", report.pair);
    }

    #[test]
    fn parallel_mode_matches_sequential_results() {
        let ds = music_dataset(9);
        let seq = MultiEm::new(
            MultiEmConfig {
                m: 0.35,
                ..MultiEmConfig::default()
            },
            HashedLexicalEncoder::default(),
        );
        let par = MultiEm::new(
            MultiEmConfig {
                m: 0.35,
                parallel: true,
                ..MultiEmConfig::default()
            },
            HashedLexicalEncoder::default(),
        );
        let mut a = seq.run(&ds).unwrap().tuples;
        let mut b = par.run(&ds).unwrap().tuples;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn ablations_change_behaviour_but_still_run() {
        let ds = music_dataset(5);
        let full = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default())
            .run(&ds)
            .unwrap();
        let no_eer = MultiEm::new(
            MultiEmConfig::default().without_attribute_selection(),
            HashedLexicalEncoder::default(),
        )
        .run(&ds)
        .unwrap();
        let no_dp = MultiEm::new(
            MultiEmConfig::default().without_pruning(),
            HashedLexicalEncoder::default(),
        )
        .run(&ds)
        .unwrap();
        // w/o EER embeds every attribute.
        assert_eq!(no_eer.selection.selected.len(), ds.schema().len());
        assert!(full.selection.selected.len() < ds.schema().len());
        // w/o DP never removes outliers.
        assert_eq!(no_dp.outliers_removed, 0);
        assert_eq!(no_dp.tuples_dropped, 0);
        // Pruning can only reduce (or keep) the number of predicted tuples of
        // the same merge output; with selection differences the counts may vary,
        // so just check everything produced tuples.
        assert!(!full.tuples.is_empty());
        assert!(!no_eer.tuples.is_empty());
        assert!(!no_dp.tuples.is_empty());
    }

    #[test]
    fn rejects_degenerate_datasets_and_configs() {
        let schema = multiem_table::Schema::new(["a"]).shared();
        let empty = Dataset::new("empty", schema.clone());
        let pipeline = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default());
        assert!(matches!(
            pipeline.run(&empty),
            Err(MultiEmError::EmptyDataset)
        ));

        let mut single = Dataset::new("single", schema.clone());
        single
            .add_table(
                multiem_table::Table::with_records(
                    "only",
                    schema.clone(),
                    vec![multiem_table::Record::from_texts(["x"])],
                )
                .unwrap(),
            )
            .unwrap();
        assert!(matches!(
            pipeline.run(&single),
            Err(MultiEmError::SingleTable)
        ));

        let bad_cfg = MultiEmConfig {
            k: 0,
            ..MultiEmConfig::default()
        };
        let bad = MultiEm::new(bad_cfg, HashedLexicalEncoder::default());
        let ds = music_dataset(1);
        assert!(matches!(bad.run(&ds), Err(MultiEmError::InvalidConfig(_))));
    }

    #[test]
    fn deterministic_given_config_and_seed() {
        let ds = music_dataset(11);
        let run = || {
            MultiEm::new(
                MultiEmConfig {
                    m: 0.35,
                    ..MultiEmConfig::default()
                },
                HashedLexicalEncoder::default(),
            )
            .run(&ds)
            .unwrap()
            .tuples
        };
        let mut a = run();
        let mut b = run();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn phase_breakdown_pairs_cover_all_phases() {
        let ds = music_dataset(2);
        let out = MultiEm::new(MultiEmConfig::default(), HashedLexicalEncoder::default())
            .run(&ds)
            .unwrap();
        let pairs = out.phases.as_pairs();
        assert_eq!(pairs.len(), 4);
        let labels: Vec<&str> = pairs.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["S", "R", "M", "P"]);
        assert!(out.phases.total() <= out.total_time + Duration::from_millis(50));
    }
}
