//! Criterion micro-benchmark: encoder throughput.
//!
//! Supports the representation-phase (R) timings of Figure 5: how fast the
//! hashed lexical encoder turns serialized entities into embeddings, as a
//! function of batch size and embedding dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_datagen::benchmark_dataset;
use multiem_embed::{EmbeddingModel, EncoderConfig, HashedLexicalEncoder};
use multiem_table::{serialize_record, SerializeOptions};

fn bench_encode_batch(c: &mut Criterion) {
    let data = benchmark_dataset("music-20", 0.02).expect("preset");
    let opts = SerializeOptions::default();
    let texts: Vec<String> = data
        .dataset
        .concat()
        .iter()
        .map(|(_, r)| serialize_record(r, &opts))
        .collect();

    let mut group = c.benchmark_group("embedding/encode_batch");
    for &batch in &[64usize, 256, 1024] {
        let slice: Vec<String> = texts.iter().take(batch).cloned().collect();
        group.throughput(Throughput::Elements(slice.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &slice, |b, slice| {
            let encoder = HashedLexicalEncoder::default();
            b.iter(|| encoder.encode_batch(slice));
        });
    }
    group.finish();
}

fn bench_dimensions(c: &mut Criterion) {
    let text = "apple iphone 8 plus 5.5 64gb 4g unlocked sim free silver";
    let mut group = c.benchmark_group("embedding/dimension");
    for &dim in &[96usize, 384, 768] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let encoder = HashedLexicalEncoder::new(EncoderConfig {
                dim,
                ..EncoderConfig::default()
            });
            b.iter(|| encoder.encode(text));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode_batch, bench_dimensions
}
criterion_main!(benches);
