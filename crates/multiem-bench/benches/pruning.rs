//! Criterion micro-benchmark: density-based pruning throughput as a function
//! of tuple size (the P / P(p) bars of Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_core::{prune_merged_table, EmbeddingStore, MergeItem, MergedTable, MultiEmConfig};
use multiem_datagen::{CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator};
use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};
use multiem_table::EntityId;

fn bench_pruning(c: &mut Criterion) {
    let sources = 8usize;
    let factory = Domain::Product.factory();
    let corruptor = Corruptor::new(CorruptionConfig::heavy());
    let cfg = GeneratorConfig {
        name: "prune-bench".into(),
        num_sources: sources,
        num_tuples: 400,
        num_singletons: 100,
        min_tuple_size: 2,
        max_tuple_size: 6,
        seed: 3,
    };
    let dataset = MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor);
    let encoder = HashedLexicalEncoder::default();
    let config = MultiEmConfig::default();
    let store = EmbeddingStore::build(&dataset, &encoder, &[0], &config);

    // Build candidate tuples directly from the ground truth (worst case: every
    // tuple needs a pruning pass).
    let items: Vec<MergeItem> = dataset
        .ground_truth()
        .expect("ground truth")
        .tuples()
        .iter()
        .map(|t| MergeItem {
            members: t.members().to_vec(),
            embedding: vec![0.0; encoder.dim()],
        })
        .collect();
    let table = MergedTable { items };
    let singleton_table = MergedTable {
        items: dataset
            .entity_ids()
            .take(400)
            .map(|id: EntityId| MergeItem {
                members: vec![id],
                embedding: vec![0.0; encoder.dim()],
            })
            .collect(),
    };

    let mut group = c.benchmark_group("pruning");
    group.throughput(Throughput::Elements(table.items.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("sequential", table.items.len()),
        &table,
        |b, t| {
            let cfg = MultiEmConfig {
                parallel: false,
                ..MultiEmConfig::default()
            };
            b.iter(|| prune_merged_table(t, &store, &cfg))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parallel", table.items.len()),
        &table,
        |b, t| {
            let cfg = MultiEmConfig {
                parallel: true,
                ..MultiEmConfig::default()
            };
            b.iter(|| prune_merged_table(t, &store, &cfg))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("singletons_noop", singleton_table.items.len()),
        &singleton_table,
        |b, t| {
            let cfg = MultiEmConfig::default();
            b.iter(|| prune_merged_table(t, &store, &cfg))
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pruning
}
criterion_main!(benches);
