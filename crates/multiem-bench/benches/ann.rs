//! Criterion micro-benchmark: HNSW vs brute-force nearest-neighbour search.
//!
//! Supports the merging-phase analysis: the ANN index is what keeps each
//! two-table merge sub-quadratic. The benchmark measures build and query cost
//! for both backends at increasing collection sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_ann::{BruteForceIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let dim = 64;
    let mut group = c.benchmark_group("ann/build");
    for &n in &[500usize, 2_000] {
        let vectors = random_vectors(n, dim, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("hnsw", n), &vectors, |b, v| {
            b.iter(|| {
                HnswIndex::build(
                    dim,
                    Metric::Cosine,
                    HnswConfig::default(),
                    v.iter().map(|x| x.as_slice()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &vectors, |b, v| {
            b.iter(|| {
                BruteForceIndex::from_vectors(dim, Metric::Cosine, v.iter().map(|x| x.as_slice()))
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let dim = 64;
    let n = 5_000;
    let vectors = random_vectors(n, dim, 11);
    let queries = random_vectors(100, dim, 13);
    let hnsw = HnswIndex::build(
        dim,
        Metric::Cosine,
        HnswConfig::default(),
        vectors.iter().map(|v| v.as_slice()),
    );
    let brute =
        BruteForceIndex::from_vectors(dim, Metric::Cosine, vectors.iter().map(|v| v.as_slice()));

    let mut group = c.benchmark_group("ann/query_top10");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(hnsw.search(q, 10));
            }
        })
    });
    group.bench_function("bruteforce", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(brute.search(q, 10));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_query
}
criterion_main!(benches);
