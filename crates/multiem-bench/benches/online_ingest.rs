//! Criterion micro-benchmark: online ingest throughput (records/sec) of the
//! streaming [`EntityStore`] as a function of the number of records already
//! in the store.
//!
//! This is the hot path of the online subsystem: each insert encodes one
//! record, queries the representative index for mutual top-K candidates and
//! maintains the cluster partition. Throughput should degrade sub-linearly
//! with store size thanks to the `O(log N)` HNSW insertion path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_core::MultiEmConfig;
use multiem_datagen::{CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator};
use multiem_embed::HashedLexicalEncoder;
use multiem_online::{EntityStore, OnlineConfig};
use multiem_table::{Dataset, Table};

fn generate(num_tuples: usize, seed: u64) -> Dataset {
    let factory = Domain::Music.factory();
    let corruptor = Corruptor::new(CorruptionConfig::light());
    let cfg = GeneratorConfig {
        name: format!("online-bench-{num_tuples}"),
        num_sources: 4,
        num_tuples,
        num_singletons: num_tuples / 2,
        min_tuple_size: 2,
        max_tuple_size: 4,
        seed,
    };
    MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
}

fn prefilled_store(ds: &Dataset) -> EntityStore<HashedLexicalEncoder> {
    let base = MultiEmConfig {
        m: 0.35,
        attribute_selection: false,
        ..MultiEmConfig::default()
    };
    let config = OnlineConfig::new(base).with_all_attributes();
    let mut store = EntityStore::new(config, HashedLexicalEncoder::default());
    for table in ds.tables() {
        store.ingest_batch(table).expect("ingest");
    }
    store
}

/// Single-record insert cost at increasing store sizes.
fn bench_insert_vs_store_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/insert");
    group.sample_size(20);
    for &num_tuples in &[50usize, 200, 800] {
        let ds = generate(num_tuples, 7);
        let store = prefilled_store(&ds);
        // Fresh records the store has not seen: another generator seed.
        let extra = generate(50, 99);
        let fresh: Vec<_> = extra.tables()[0].records().to_vec();
        group.throughput(Throughput::Elements(fresh.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("records", store.num_records()),
            &fresh,
            |b, fresh| {
                b.iter(|| {
                    let mut s = store.clone();
                    for r in fresh {
                        s.insert(r.clone()).expect("insert");
                    }
                    s.num_records()
                })
            },
        );
    }
    group.finish();
}

/// Whole-batch ingestion throughput.
fn bench_batch_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/ingest_batch");
    group.sample_size(10);
    for &num_tuples in &[100usize, 400] {
        let ds = generate(num_tuples, 3);
        let (head, tail): (&[Table], &[Table]) = ds.tables().split_at(ds.tables().len() - 1);
        let base = MultiEmConfig {
            m: 0.35,
            attribute_selection: false,
            ..MultiEmConfig::default()
        };
        let config = OnlineConfig::new(base).with_all_attributes();
        let mut warm = EntityStore::new(config, HashedLexicalEncoder::default());
        for table in head {
            warm.ingest_batch(table).expect("ingest");
        }
        let last = &tail[0];
        group.throughput(Throughput::Elements(last.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("into_records", warm.num_records()),
            last,
            |b, table| {
                b.iter(|| {
                    let mut s = warm.clone();
                    s.ingest_batch(table).expect("ingest")
                })
            },
        );
    }
    group.finish();
}

/// Read-only matching throughput against a populated store.
fn bench_match_record(c: &mut Criterion) {
    let ds = generate(400, 5);
    let store = prefilled_store(&ds);
    let probes: Vec<_> = ds.tables()[0].records().iter().take(100).cloned().collect();
    let mut group = c.benchmark_group("online/match_record");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(store.num_records()), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                hits += store.match_record(p).len();
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_vs_store_size,
    bench_batch_ingest,
    bench_match_record
);
criterion_main!(benches);
