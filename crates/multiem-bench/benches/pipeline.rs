//! Criterion benchmark: the end-to-end MultiEM pipeline, sequential vs
//! parallel (the MultiEM / MultiEM (parallel) rows of Table V in micro form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_core::{MultiEm, MultiEmConfig};
use multiem_datagen::benchmark_dataset;
use multiem_embed::HashedLexicalEncoder;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/end_to_end");
    group.sample_size(10);
    for (name, scale) in [("geo", 0.05), ("music-20", 0.01), ("shopee", 0.01)] {
        let data = benchmark_dataset(name, scale).expect("preset");
        group.throughput(Throughput::Elements(data.stats.entities as u64));
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "sequential" };
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &data.dataset,
                |b, dataset| {
                    let config = MultiEmConfig {
                        m: 0.35,
                        parallel,
                        ..MultiEmConfig::default()
                    };
                    b.iter(|| {
                        MultiEm::new(config.clone(), HashedLexicalEncoder::default())
                            .run(dataset)
                            .expect("pipeline runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
