//! Criterion micro-benchmark: concurrent ingest throughput of the
//! [`ShardedEntityStore`] as a function of shard count.
//!
//! Four writer threads push disjoint record streams; with one shard they all
//! serialise on a single write lock, with more shards they mostly proceed in
//! parallel (contention drops to the WAL-free in-memory insert path). This
//! is the scaling story of `multiem-serve`'s write side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multiem_core::MultiEmConfig;
use multiem_embed::HashedLexicalEncoder;
use multiem_online::OnlineConfig;
use multiem_serve::ShardedEntityStore;
use multiem_table::{Record, Schema};

const WRITERS: usize = 4;
const PER_WRITER: usize = 64;

fn config() -> OnlineConfig {
    OnlineConfig::new(MultiEmConfig {
        m: 0.35,
        attribute_selection: false,
        ..MultiEmConfig::default()
    })
    .with_all_attributes()
}

/// Pre-rendered per-writer record streams with distinct leading tokens so
/// the routing spreads them across shards.
fn workloads() -> Vec<Vec<Record>> {
    (0..WRITERS)
        .map(|writer| {
            (0..PER_WRITER)
                .map(|i| Record::from_texts([format!("writer{writer} item {i} deluxe edition")]))
                .collect()
        })
        .collect()
}

fn bench_concurrent_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/sharded_ingest");
    group.sample_size(10);
    let streams = workloads();
    for &shards in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((WRITERS * PER_WRITER) as u64));
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &streams,
            |b, streams| {
                b.iter(|| {
                    let store = ShardedEntityStore::new(
                        config(),
                        Schema::new(["title"]).shared(),
                        shards,
                        HashedLexicalEncoder::default(),
                    )
                    .expect("store");
                    std::thread::scope(|scope| {
                        for stream in streams {
                            let store = &store;
                            scope.spawn(move || {
                                for record in stream {
                                    store.insert(record.clone()).expect("insert");
                                }
                            });
                        }
                    });
                    store.stats().records
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent_ingest);
criterion_main!(benches);
