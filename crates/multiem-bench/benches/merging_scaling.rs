//! Criterion benchmark: hierarchical merging vs pairwise and chain matching as
//! the number of source tables grows (the measured counterpart of Lemmas 1–3
//! and the efficiency claims behind Table V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiem_baselines::{
    ChainExtension, EmbeddingThresholdMatcher, MatchContext, MultiTableMatcher, PairwiseExtension,
};
use multiem_core::{complexity, hierarchical_merge, MergedTable, MultiEmConfig};
use multiem_core::{AttributeSelection, EmbeddingStore};
use multiem_datagen::{CorruptionConfig, Corruptor, Domain, GeneratorConfig, MultiSourceGenerator};
use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};
use multiem_table::Dataset;

fn dataset_with_sources(sources: usize) -> Dataset {
    let factory = Domain::Music.factory();
    let corruptor = Corruptor::new(CorruptionConfig::light());
    let cfg = GeneratorConfig {
        name: format!("scaling-{sources}"),
        num_sources: sources,
        num_tuples: 150,
        num_singletons: 60,
        min_tuple_size: 2,
        max_tuple_size: sources.min(4),
        seed: 99,
    };
    MultiSourceGenerator::new(cfg).generate(factory.as_ref(), &corruptor)
}

fn bench_strategies(c: &mut Criterion) {
    let encoder = HashedLexicalEncoder::default();
    let mut group = c.benchmark_group("merging/strategy_vs_sources");
    group.sample_size(10);

    for &sources in &[4usize, 8] {
        let dataset = dataset_with_sources(sources);
        let config = MultiEmConfig {
            m: 0.35,
            ..MultiEmConfig::default()
        };
        let selection = AttributeSelection::all_attributes(&dataset);
        let store = EmbeddingStore::build(&dataset, &encoder, &selection.selected, &config);
        let tables: Vec<MergedTable> = (0..dataset.num_sources() as u32)
            .map(|s| MergedTable::from_source(&dataset, s, &store))
            .collect();
        let ctx = MatchContext::build(&dataset, &encoder, Vec::new());

        group.bench_with_input(
            BenchmarkId::new("hierarchical", sources),
            &tables,
            |b, t| b.iter(|| hierarchical_merge(t.clone(), &config, encoder.dim())),
        );
        group.bench_with_input(BenchmarkId::new("pairwise", sources), &ctx, |b, ctx| {
            b.iter(|| PairwiseExtension::new(EmbeddingThresholdMatcher::default()).run(ctx))
        });
        group.bench_with_input(BenchmarkId::new("chain", sources), &ctx, |b, ctx| {
            b.iter(|| ChainExtension::new(EmbeddingThresholdMatcher::default()).run(ctx))
        });

        // Print the analytical prediction next to the measurements so the bench
        // output can be read as "Lemma 1–3 expect this ordering".
        let n = dataset.total_entities() / sources;
        println!(
            "[cost model] S={sources} n≈{n}: hierarchical {:.2e}  chain {:.2e}  pairwise {:.2e}",
            complexity::hierarchical_cost(sources, n, 1),
            complexity::chain_cost(sources, n, 1),
            complexity::pairwise_cost(sources, n, 1),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}
criterion_main!(benches);
