//! Shared machinery for the experiment binaries that regenerate every table
//! and figure of the MultiEM evaluation (Section IV).
//!
//! Each binary (one per table/figure) uses this crate to:
//!
//! * generate the six benchmark-dataset analogues at a configurable scale
//!   ([`HarnessConfig`], environment variables `MULTIEM_SCALE` and
//!   `MULTIEM_DATASETS`);
//! * run MultiEM with the paper's per-dataset grid search over `m`, `γ` and
//!   `ε` ([`run_multiem_grid`]);
//! * run every baseline with the same guards the paper applies (quadratic /
//!   cubic methods are skipped on datasets that are too large for them, which
//!   is reported like the `-` / `\` entries of Tables IV–VI);
//! * collect quality, runtime and accounted-memory numbers in a uniform
//!   [`MethodResult`] record.

#![forbid(unsafe_code)]

use multiem_baselines::{
    AlmserGb, AutoFjMatcher, ChainExtension, MatchContext, MscdAp, MscdHac, MultiTableMatcher,
    PairwiseExtension, SupervisedMatcher,
};
use multiem_core::{MultiEm, MultiEmConfig, MultiEmOutput};
use multiem_datagen::{benchmark_dataset, benchmark_specs, BenchmarkDataset};
use multiem_embed::HashedLexicalEncoder;
use multiem_eval::{evaluate, sample_labeled_pairs, EvaluationReport, SamplingConfig};
use multiem_table::Dataset;
use std::time::{Duration, Instant};

/// Configuration of the experiment harness, read from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Scale factor applied to every dataset preset (`MULTIEM_SCALE`,
    /// default 0.05). `1.0` reproduces the paper's cardinalities.
    pub scale: f64,
    /// Optional comma-separated dataset filter (`MULTIEM_DATASETS`).
    pub datasets: Option<Vec<String>>,
    /// Entity-count ceiling for the quadratic clustering baselines
    /// (MSCD-AP, ALMSER-GB); larger datasets are skipped.
    pub quadratic_limit: usize,
    /// Entity-count ceiling for MSCD-HAC, whose naive agglomerative loop is
    /// cubic (the paper likewise only obtains MSCD-HAC numbers on Geo).
    pub hac_limit: usize,
    /// Entity-count ceiling for the pairwise / chain two-table baselines.
    pub pairwise_limit: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            datasets: None,
            quadratic_limit: 4_000,
            hac_limit: 800,
            pairwise_limit: 30_000,
        }
    }
}

impl HarnessConfig {
    /// Read the configuration from `MULTIEM_SCALE` and `MULTIEM_DATASETS`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(scale) = std::env::var("MULTIEM_SCALE") {
            if let Ok(s) = scale.parse::<f64>() {
                cfg.scale = s.clamp(0.0005, 1.0);
            }
        }
        if let Ok(names) = std::env::var("MULTIEM_DATASETS") {
            let list: Vec<String> = names
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if !list.is_empty() {
                cfg.datasets = Some(list);
            }
        }
        cfg
    }

    /// Print the effective configuration — most importantly the scale — so
    /// every number a binary records is unambiguous about the dataset size
    /// it was obtained at. Called by each experiment binary at startup.
    pub fn announce(&self) {
        let datasets = match &self.datasets {
            Some(list) => format!(", MULTIEM_DATASETS={}", list.join(",")),
            None => ", all datasets".to_string(),
        };
        println!(
            "[multiem-bench] effective MULTIEM_SCALE={}{datasets}",
            self.scale
        );
    }

    /// Per-dataset scale: the huge presets (music-2000, person) get an extra
    /// reduction so default harness runs stay laptop-sized.
    pub fn scale_for(&self, name: &str) -> f64 {
        match name {
            "music-2000" => self.scale * 0.02,
            "music-200" => self.scale * 0.2,
            "person" => self.scale * 0.02,
            _ => self.scale,
        }
    }

    /// Generate every (selected) benchmark dataset at the configured scale.
    pub fn datasets(&self) -> Vec<BenchmarkDataset> {
        benchmark_specs()
            .into_iter()
            .filter(|spec| {
                self.datasets
                    .as_ref()
                    .map(|list| list.iter().any(|n| n == &spec.name))
                    .unwrap_or(true)
            })
            .map(|spec| {
                benchmark_dataset(&spec.name, self.scale_for(&spec.name)).expect("preset exists")
            })
            .collect()
    }
}

/// The hyper-parameter grid of Section IV-A.
pub fn paper_grid() -> Vec<MultiEmConfig> {
    let mut out = Vec::new();
    for &m in &[0.2f32, 0.35, 0.5] {
        for &gamma in &[0.8f64, 0.9] {
            for &epsilon in &[0.8f32, 1.0] {
                out.push(MultiEmConfig {
                    m,
                    gamma,
                    epsilon,
                    ..MultiEmConfig::default()
                });
            }
        }
    }
    out
}

/// Outcome of one method on one dataset.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name as reported in the paper's tables.
    pub method: String,
    /// Quality metrics (`None` when the method was skipped).
    pub report: Option<EvaluationReport>,
    /// Wall-clock runtime of the method (excluding dataset generation).
    pub runtime: Duration,
    /// Accounted memory in bytes.
    pub memory_bytes: usize,
    /// Reason the method was skipped, if it was.
    pub skipped: Option<String>,
}

impl MethodResult {
    fn skipped(method: &str, reason: &str) -> Self {
        Self {
            method: method.to_string(),
            report: None,
            runtime: Duration::ZERO,
            memory_bytes: 0,
            skipped: Some(reason.to_string()),
        }
    }
}

/// MultiEM variants reported in Tables IV–VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiEmVariant {
    /// The full pipeline.
    Full,
    /// The rayon-parallel pipeline (same output, different runtime/memory).
    Parallel,
    /// Ablation without enhanced entity representation.
    WithoutEer,
    /// Ablation without density-based pruning.
    WithoutDp,
}

impl MultiEmVariant {
    /// Display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            MultiEmVariant::Full => "MultiEM",
            MultiEmVariant::Parallel => "MultiEM (parallel)",
            MultiEmVariant::WithoutEer => "MultiEM w/o EER",
            MultiEmVariant::WithoutDp => "MultiEM w/o DP",
        }
    }

    fn apply(&self, mut config: MultiEmConfig) -> MultiEmConfig {
        match self {
            MultiEmVariant::Full => config,
            MultiEmVariant::Parallel => {
                config.parallel = true;
                config
            }
            MultiEmVariant::WithoutEer => config.without_attribute_selection(),
            MultiEmVariant::WithoutDp => config.without_pruning(),
        }
    }
}

/// Run MultiEM with the paper's grid search, returning the best run (by tuple
/// F1) together with its configuration and evaluation.
pub fn run_multiem_grid(
    dataset: &Dataset,
    variant: MultiEmVariant,
) -> (MultiEmOutput, EvaluationReport, MultiEmConfig) {
    let gt = dataset
        .ground_truth()
        .expect("benchmark datasets carry ground truth");
    let mut best: Option<(MultiEmOutput, EvaluationReport, MultiEmConfig)> = None;
    for base in paper_grid() {
        // Sample ratio follows the paper: 0.05 for the largest dataset, 0.2
        // otherwise.
        let sample_ratio = if dataset.total_entities() > 1_000_000 {
            0.05
        } else {
            0.2
        };
        let config = variant.apply(MultiEmConfig {
            sample_ratio,
            ..base
        });
        let pipeline = MultiEm::new(config.clone(), HashedLexicalEncoder::default());
        let output = pipeline
            .run(dataset)
            .expect("pipeline runs on benchmark data");
        let report = evaluate(&output.tuples, gt);
        let better = best
            .as_ref()
            .map(|(_, b, _)| report.tuple.f1 > b.tuple.f1)
            .unwrap_or(true);
        if better {
            best = Some((output, report, config));
        }
    }
    best.expect("grid is non-empty")
}

/// Run a single MultiEM configuration and measure it.
pub fn run_multiem_once(dataset: &Dataset, config: MultiEmConfig) -> MethodResult {
    let gt = dataset.ground_truth().expect("ground truth");
    let start = Instant::now();
    let pipeline = MultiEm::new(config, HashedLexicalEncoder::default());
    let output = pipeline.run(dataset).expect("pipeline runs");
    let runtime = start.elapsed();
    MethodResult {
        method: "MultiEM".to_string(),
        report: Some(evaluate(&output.tuples, gt)),
        runtime,
        memory_bytes: output.total_memory_bytes(),
        skipped: None,
    }
}

/// The baseline methods of Table IV, with the entity-count guards that mirror
/// the `-` (out of memory) and `\` (timeout) entries of the paper's tables.
pub fn run_baselines(data: &BenchmarkDataset, harness: &HarnessConfig) -> Vec<MethodResult> {
    let dataset = &data.dataset;
    let gt = dataset.ground_truth().expect("ground truth");
    let n = dataset.total_entities();
    let encoder = HashedLexicalEncoder::default();

    // Context shared by all baselines; its construction time is excluded from
    // per-method runtimes (it corresponds to data loading / encoding that the
    // paper also excludes for the supervised baselines' preprocessing).
    let labeled = sample_labeled_pairs(dataset, &SamplingConfig::default());
    let ctx = MatchContext::build(dataset, &encoder, labeled);
    let ctx_bytes = ctx.approx_bytes();

    let mut results = Vec::new();

    // Supervised two-table matchers under both extensions.
    for (label, factory) in [
        (
            "PromptEM",
            SupervisedMatcher::promptem_like as fn() -> SupervisedMatcher,
        ),
        (
            "Ditto",
            SupervisedMatcher::ditto_like as fn() -> SupervisedMatcher,
        ),
    ] {
        for (suffix, chain) in [("(pw)", false), ("(c)", true)] {
            let name = format!("{label} {suffix}");
            if n > harness.pairwise_limit {
                results.push(MethodResult::skipped(
                    &name,
                    "skipped: exceeds pairwise limit",
                ));
                continue;
            }
            let mut matcher = factory();
            let start = Instant::now();
            matcher.train(&ctx);
            let tuples = if chain {
                ChainExtension::new(matcher).run(&ctx)
            } else {
                PairwiseExtension::new(matcher).run(&ctx)
            };
            results.push(MethodResult {
                method: name,
                report: Some(evaluate(&tuples, gt)),
                runtime: start.elapsed(),
                memory_bytes: ctx_bytes,
                skipped: None,
            });
        }
    }

    // AutoFJ under both extensions.
    for (suffix, chain) in [("(pw)", false), ("(c)", true)] {
        let name = format!("AutoFJ {suffix}");
        if n > harness.pairwise_limit {
            results.push(MethodResult::skipped(
                &name,
                "skipped: exceeds pairwise limit",
            ));
            continue;
        }
        let start = Instant::now();
        let tuples = if chain {
            ChainExtension::new(AutoFjMatcher::default()).run(&ctx)
        } else {
            PairwiseExtension::new(AutoFjMatcher::default()).run(&ctx)
        };
        results.push(MethodResult {
            method: name,
            report: Some(evaluate(&tuples, gt)),
            runtime: start.elapsed(),
            memory_bytes: ctx_bytes,
            skipped: None,
        });
    }

    // ALMSER-GB (graph + active learning; candidate graph is quadratic-ish).
    if n > harness.pairwise_limit {
        results.push(MethodResult::skipped(
            "ALMSER-GB",
            "skipped: exceeds pairwise limit",
        ));
    } else {
        let start = Instant::now();
        let tuples = AlmserGb::default().run(&ctx);
        results.push(MethodResult {
            method: "ALMSER-GB".to_string(),
            report: Some(evaluate(&tuples, gt)),
            runtime: start.elapsed(),
            memory_bytes: ctx_bytes + n * n / 8,
            skipped: None,
        });
    }

    // MSCD-HAC and MSCD-AP (quadratic memory, cubic-ish time).
    for (name, method) in [
        (
            "MSCD-HAC",
            Box::new(MscdHac::default()) as Box<dyn MultiTableMatcher>,
        ),
        (
            "MSCD-AP",
            Box::new(MscdAp::default()) as Box<dyn MultiTableMatcher>,
        ),
    ] {
        let limit = if name == "MSCD-HAC" {
            harness.hac_limit
        } else {
            harness.quadratic_limit
        };
        if n > limit {
            results.push(MethodResult::skipped(
                name,
                "skipped: exceeds clustering size limit",
            ));
            continue;
        }
        let start = Instant::now();
        let tuples = method.run(&ctx);
        results.push(MethodResult {
            method: name.to_string(),
            report: Some(evaluate(&tuples, gt)),
            runtime: start.elapsed(),
            // Dense pairwise distance / message matrices.
            memory_bytes: ctx_bytes + n * n * 4,
            skipped: None,
        });
    }

    results
}

/// Run the four MultiEM variants of Tables IV–VI (grid-searched, like the paper).
pub fn run_multiem_variants(dataset: &Dataset) -> Vec<MethodResult> {
    let mut out = Vec::new();
    for variant in [
        MultiEmVariant::Full,
        MultiEmVariant::Parallel,
        MultiEmVariant::WithoutEer,
        MultiEmVariant::WithoutDp,
    ] {
        let start = Instant::now();
        let (output, report, _config) = run_multiem_grid(dataset, variant);
        // Report the runtime of the *selected* configuration, not the whole
        // grid: re-run it once in isolation.
        let _ = start;
        let single_start = Instant::now();
        let rerun = MultiEm::new(_config.clone(), HashedLexicalEncoder::default())
            .run(dataset)
            .expect("rerun");
        let runtime = single_start.elapsed();
        out.push(MethodResult {
            method: variant.name().to_string(),
            report: Some(report),
            runtime,
            memory_bytes: rerun.total_memory_bytes().max(output.total_memory_bytes()),
            skipped: None,
        });
    }
    out
}

/// Percentage formatting helper (`90.9` style).
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Render a skipped-method marker the way the paper does (`\` for timeouts /
/// `-` for memory limits; we use a single marker plus a note).
pub fn skip_marker() -> String {
    "\\".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_scales_presets() {
        let cfg = HarnessConfig::default();
        assert!(cfg.scale_for("music-2000") < cfg.scale_for("music-20"));
        assert_eq!(cfg.scale_for("geo"), cfg.scale);
    }

    #[test]
    fn paper_grid_has_twelve_points() {
        assert_eq!(paper_grid().len(), 12);
    }

    #[test]
    fn grid_search_runs_on_tiny_geo() {
        let data = benchmark_dataset("geo", 0.02).unwrap();
        let (output, report, config) = run_multiem_grid(&data.dataset, MultiEmVariant::Full);
        assert!(!output.tuples.is_empty());
        assert!(report.tuple.f1 > 0.2);
        assert!(config.m > 0.0);
    }

    #[test]
    fn baselines_respect_limits() {
        let data = benchmark_dataset("geo", 0.02).unwrap();
        let harness = HarnessConfig {
            quadratic_limit: 1,
            hac_limit: 1,
            ..HarnessConfig::default()
        };
        let results = run_baselines(&data, &harness);
        let hac = results.iter().find(|r| r.method == "MSCD-HAC").unwrap();
        assert!(hac.skipped.is_some());
        let autofj = results.iter().find(|r| r.method == "AutoFJ (pw)").unwrap();
        assert!(autofj.report.is_some());
    }
}
