//! Regenerates **Table VII** — attributes selected by the automated attribute
//! selection (Enhanced Entity Representation) per dataset.
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin table7_attributes
//! ```

#![forbid(unsafe_code)]

use multiem_bench::HarnessConfig;
use multiem_core::{select_attributes, MultiEmConfig};
use multiem_embed::HashedLexicalEncoder;
use multiem_eval::TextTable;

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let encoder = HashedLexicalEncoder::default();
    let mut table = TextTable::new(
        "Table VII — automated attribute selection",
        &[
            "Dataset",
            "All attributes",
            "Selected attributes",
            "Similarity scores",
        ],
    );
    for data in harness.datasets() {
        let dataset = &data.dataset;
        let sample_ratio = if dataset.total_entities() > 1_000_000 {
            0.05
        } else {
            0.2
        };
        let config = MultiEmConfig {
            sample_ratio,
            gamma: 0.9,
            ..MultiEmConfig::default()
        };
        let selection = select_attributes(dataset, &encoder, &config).expect("selection runs");
        let all: Vec<String> = dataset.schema().names().map(str::to_string).collect();
        let selected: Vec<String> = selection
            .selected_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let scores: Vec<String> = selection
            .scores
            .iter()
            .map(|s| format!("{}={:.2}", s.name, s.mean_similarity))
            .collect();
        table.add_row([
            data.stats.name.clone(),
            all.join(", "),
            selected.join(", "),
            scores.join(" "),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: geo -> name; music -> title, artist, album;");
    println!("  person -> givenname, surname, suburb, postcode; shopee -> title.");
}
