//! Regenerates **Table III** — statistics of the benchmark datasets.
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin table3_datasets
//! ```
//!
//! At `MULTIEM_SCALE=1.0` the generated cardinalities approximate the paper's
//! (Geo 3 054 entities / 820 tuples, Music-20 19 375 / 5 000, ...); smaller
//! scales shrink entity counts proportionally while preserving the number of
//! sources, the schema and the tuple-size distribution.

#![forbid(unsafe_code)]

use multiem_bench::HarnessConfig;
use multiem_eval::TextTable;

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let mut table = TextTable::new(
        format!("Table III — dataset statistics (scale {})", harness.scale),
        &[
            "Name", "Domain", "Srcs", "Attrs", "Entities", "Tuples", "Pairs",
        ],
    );
    for data in harness.datasets() {
        let s = &data.stats;
        table.add_row([
            s.name.clone(),
            s.domain.clone(),
            s.sources.to_string(),
            s.attributes.to_string(),
            s.entities.to_string(),
            s.tuples.to_string(),
            s.pairs.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper (scale 1.0): geo 4/3/3054/820/4391, music-20 5/8*/19375/5000/16250,");
    println!("  music-200 5/8*/193750/50000/162500, music-2000 5/8*/1937500/500000/1625000,");
    println!("  person 5/4/5000000/500000/3331384, shopee 20/1/32563/10962/54488");
    println!("  (*Table III reports 5 attributes for Music; this reproduction uses the");
    println!("   8-attribute schema listed in Table VII so attribute selection has work to do.)");
}
