//! Deletion + compaction benchmark of the disk-backed online
//! [`EntityStore`]: ingest a dataset, delete just over half the records,
//! compact, and measure how many on-disk segment bytes come back — recorded
//! to `BENCH_compact.json` (CI tracks it like `BENCH_store.json`).
//!
//! ```bash
//! MULTIEM_SCALE=0.2 cargo run --release -p multiem-bench --bin store_compaction -- \
//!     --out BENCH_compact.json --gate
//! ```
//!
//! `--gate` enforces the deletion-layer acceptance bar: compaction must
//! reclaim at least 50% of the sealed segment bytes after the deletions,
//! and the delete+compact machinery must not slow ingest beyond 2x the
//! memory backend (the same ingest-cost bound `store_memory` holds the
//! disk backend to). Matching equality between a disk and a memory store
//! that saw the identical insert+delete sequence is always asserted.

#![forbid(unsafe_code)]

use multiem_core::MultiEmConfig;
use multiem_datagen::benchmark_dataset;
use multiem_embed::HashedLexicalEncoder;
use multiem_online::{EntityStore, OnlineConfig};
use multiem_table::EntityId;
use serde::Value;
use std::path::Path;
use std::time::Instant;

fn main() {
    let mut out_path: Option<String> = None;
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().unwrap_or_else(|| fail("--out needs a path"))),
            "--gate" => gate = true,
            "--help" | "-h" => {
                println!(
                    "store_compaction: deletion + segment compaction benchmark\n\n\
                     options:\n\
                     \x20 --out PATH   write BENCH_compact.json-style results to PATH\n\
                     \x20 --gate       fail unless compaction reclaims >= 50% of segment\n\
                     \x20              bytes and ingest stays within 2x of the mem backend\n\n\
                     env: MULTIEM_SCALE (default 0.2)"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let scale = std::env::var("MULTIEM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.2)
        .clamp(0.0005, 1.0);
    let dataset_name = "music-20";
    println!("store_compaction: dataset `{dataset_name}` at MULTIEM_SCALE={scale}");
    let data = benchmark_dataset(dataset_name, scale).expect("known preset");
    let encoder = HashedLexicalEncoder::default();

    let disk_dir =
        std::env::temp_dir().join(format!("multiem-compact-bench-{}", std::process::id()));
    let base = MultiEmConfig {
        m: 0.35,
        ..MultiEmConfig::default()
    };
    let mem_config = OnlineConfig::new(base.clone()).with_all_attributes();
    let disk_config = OnlineConfig::new(base)
        .with_all_attributes()
        .with_disk_storage(disk_dir.display().to_string());

    // Ingest the same dataset into both backends (timed: the ingest-cost
    // gate bounds what the tombstone bookkeeping costs the hot path).
    let mut on_disk = EntityStore::new(disk_config, encoder.clone());
    let mut in_mem = EntityStore::new(mem_config, encoder);
    let disk_ingest = time(|| {
        for table in data.dataset.tables() {
            on_disk.ingest_batch(table).expect("disk ingest");
        }
        on_disk.refresh();
    });
    let mem_ingest = time(|| {
        for table in data.dataset.tables() {
            in_mem.ingest_batch(table).expect("mem ingest");
        }
        in_mem.refresh();
    });
    let records = on_disk.num_records();
    on_disk.flush_storage().expect("flush");
    let disk_bytes_before = dir_bytes(&disk_dir);
    println!(
        "  ingested {records} records: disk {disk_ingest:.2}s, mem {mem_ingest:.2}s; \
         sealed segments hold {} bytes",
        disk_bytes_before
    );

    // Delete just over half of every source (even rows plus every 16th odd
    // row, ~56%), identically on both backends. A hair over half keeps the
    // >= 50% byte-reclaim gate insensitive to per-record size jitter.
    let mut victims: Vec<EntityId> = Vec::new();
    for (source, table) in data.dataset.tables().iter().enumerate() {
        for row in 0..table.len() as u32 {
            if row % 2 == 0 || row % 16 == 1 {
                victims.push(EntityId::new(source as u32, row));
            }
        }
    }
    let delete_seconds = time(|| {
        for id in &victims {
            assert!(on_disk.delete_record(*id).expect("disk delete"));
        }
    });
    for id in &victims {
        assert!(in_mem.delete_record(*id).expect("mem delete"));
    }
    let deleted_fraction = victims.len() as f64 / records as f64;
    println!(
        "  deleted {} of {records} records ({:.0}%) in {delete_seconds:.2}s \
         ({:.0} deletes/s)",
        victims.len(),
        deleted_fraction * 100.0,
        victims.len() as f64 / delete_seconds.max(1e-9)
    );

    // Matching output must be identical across backends after deletion.
    let mut disk_tuples = on_disk.tuples();
    let mut mem_tuples = in_mem.tuples();
    disk_tuples.sort();
    mem_tuples.sort();
    assert_eq!(
        disk_tuples, mem_tuples,
        "deletion must not desynchronise the storage backends"
    );

    // Compact + sweep, then measure what the directory actually holds.
    let compact_seconds = time(|| {
        let report = on_disk.compact_storage().expect("compact");
        assert!(report.segments_compacted > 0, "compaction must trigger");
    });
    on_disk.gc_storage().expect("gc");
    let disk_bytes_after = dir_bytes(&disk_dir);
    let reclaimed_fraction = 1.0 - disk_bytes_after as f64 / disk_bytes_before.max(1) as f64;
    let storage = on_disk.storage_stats();
    println!(
        "  compaction: {disk_bytes_before} -> {disk_bytes_after} bytes on disk \
         ({:.1}% reclaimed) in {compact_seconds:.2}s; {} segments remain",
        reclaimed_fraction * 100.0,
        storage.segments
    );

    let slowdown = disk_ingest / mem_ingest.max(1e-9);
    let report = Value::Map(vec![
        ("dataset".into(), Value::Str(dataset_name.into())),
        ("scale".into(), Value::Float(scale)),
        ("records".into(), Value::UInt(records as u64)),
        ("deleted".into(), Value::UInt(victims.len() as u64)),
        ("deleted_fraction".into(), Value::Float(deleted_fraction)),
        ("disk_ingest_seconds".into(), Value::Float(disk_ingest)),
        ("mem_ingest_seconds".into(), Value::Float(mem_ingest)),
        ("ingest_slowdown".into(), Value::Float(slowdown)),
        ("delete_seconds".into(), Value::Float(delete_seconds)),
        ("compact_seconds".into(), Value::Float(compact_seconds)),
        ("disk_bytes_before".into(), Value::UInt(disk_bytes_before)),
        ("disk_bytes_after".into(), Value::UInt(disk_bytes_after)),
        (
            "reclaimed_fraction".into(),
            Value::Float(reclaimed_fraction),
        ),
        ("compactions".into(), Value::UInt(storage.compactions)),
        (
            "reclaimed_bytes".into(),
            Value::UInt(storage.reclaimed_bytes),
        ),
    ]);
    let rendered = serde_json::to_string(&report).expect("report renders");
    if let Some(path) = out_path {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("  wrote {path}");
    }
    println!("{rendered}");
    std::fs::remove_dir_all(&disk_dir).ok();

    if gate {
        if reclaimed_fraction < 0.5 {
            fail(&format!(
                "gate: compaction reclaimed only {:.1}% of segment bytes (need >= 50%)",
                reclaimed_fraction * 100.0
            ));
        }
        if slowdown > 2.0 {
            fail(&format!(
                "gate: disk ingest {slowdown:.2}x slower than mem (allowed <= 2x)"
            ));
        }
        println!(
            "  gates passed: {:.1}% reclaimed, ingest slowdown {slowdown:.2}x",
            reclaimed_fraction * 100.0
        );
    }
}

fn time(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Total bytes of the segment files under `dir` (recursive: the sharded
/// layout nests per-shard directories).
fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
