//! Regenerates **Figure 6** — sensitivity of MultiEM to its hyper-parameters:
//! (a) γ, (b) merge-order seed, (c)(d) m (F1 and normalised time),
//! (e)(f) ε (F1 and normalised time).
//!
//! ```bash
//! cargo run --release -p multiem-bench --bin fig6_sensitivity            # all panels
//! cargo run --release -p multiem-bench --bin fig6_sensitivity -- gamma   # one panel
//! ```

#![forbid(unsafe_code)]

use multiem_bench::HarnessConfig;
use multiem_core::{MultiEm, MultiEmConfig};
use multiem_datagen::BenchmarkDataset;
use multiem_embed::HashedLexicalEncoder;
use multiem_eval::{evaluate, TextTable};
use std::time::{Duration, Instant};

fn run(dataset: &multiem_table::Dataset, config: MultiEmConfig) -> (f64, Duration) {
    let start = Instant::now();
    let output = MultiEm::new(config, HashedLexicalEncoder::default())
        .run(dataset)
        .expect("pipeline runs");
    let elapsed = start.elapsed();
    let report = evaluate(
        &output.tuples,
        dataset.ground_truth().expect("ground truth"),
    );
    (report.tuple.f1 * 100.0, elapsed)
}

fn normalised(times: &[Duration]) -> Vec<String> {
    let base = times
        .first()
        .map(|d| d.as_secs_f64())
        .unwrap_or(1.0)
        .max(1e-9);
    times
        .iter()
        .map(|d| format!("{:.2}", d.as_secs_f64() / base))
        .collect()
}

fn panel_gamma(datasets: &[BenchmarkDataset]) {
    let gammas = [0.80f64, 0.85, 0.90, 0.95];
    let mut table = TextTable::new(
        "Figure 6(a) — F1 (%) vs gamma",
        &["Dataset", "0.80", "0.85", "0.90", "0.95"],
    );
    for data in datasets {
        let mut row = vec![data.stats.name.clone()];
        for &gamma in &gammas {
            let (f1, _) = run(
                &data.dataset,
                MultiEmConfig {
                    gamma,
                    ..MultiEmConfig::default()
                },
            );
            row.push(format!("{f1:.1}"));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}

fn panel_seed(datasets: &[BenchmarkDataset]) {
    let seeds = [0u64, 1, 2, 3];
    let mut table = TextTable::new(
        "Figure 6(b) — F1 (%) vs merge-order seed",
        &["Dataset", "0", "1", "2", "3"],
    );
    for data in datasets {
        let mut row = vec![data.stats.name.clone()];
        for &seed in &seeds {
            let (f1, _) = run(
                &data.dataset,
                MultiEmConfig {
                    merge_seed: seed,
                    ..MultiEmConfig::default()
                },
            );
            row.push(format!("{f1:.1}"));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
}

fn panel_m(datasets: &[BenchmarkDataset]) {
    let ms = [0.05f32, 0.2, 0.35, 0.5];
    let mut quality = TextTable::new(
        "Figure 6(c) — F1 (%) vs m",
        &["Dataset", "0.05", "0.20", "0.35", "0.50"],
    );
    let mut time = TextTable::new(
        "Figure 6(d) — normalised time vs m",
        &["Dataset", "0.05", "0.20", "0.35", "0.50"],
    );
    for data in datasets {
        let mut f1_row = vec![data.stats.name.clone()];
        let mut times = Vec::new();
        for &m in &ms {
            let (f1, t) = run(
                &data.dataset,
                MultiEmConfig {
                    m,
                    ..MultiEmConfig::default()
                },
            );
            f1_row.push(format!("{f1:.1}"));
            times.push(t);
        }
        quality.add_row(f1_row);
        let mut t_row = vec![data.stats.name.clone()];
        t_row.extend(normalised(&times));
        time.add_row(t_row);
    }
    println!("{}", quality.render());
    println!("{}", time.render());
}

fn panel_epsilon(datasets: &[BenchmarkDataset]) {
    let eps = [0.7f32, 0.8, 0.9, 1.0];
    let mut quality = TextTable::new(
        "Figure 6(e) — F1 (%) vs epsilon",
        &["Dataset", "0.7", "0.8", "0.9", "1.0"],
    );
    let mut time = TextTable::new(
        "Figure 6(f) — normalised time vs epsilon",
        &["Dataset", "0.7", "0.8", "0.9", "1.0"],
    );
    for data in datasets {
        let mut f1_row = vec![data.stats.name.clone()];
        let mut times = Vec::new();
        for &epsilon in &eps {
            let (f1, t) = run(
                &data.dataset,
                MultiEmConfig {
                    epsilon,
                    ..MultiEmConfig::default()
                },
            );
            f1_row.push(format!("{f1:.1}"));
            times.push(t);
        }
        quality.add_row(f1_row);
        let mut t_row = vec![data.stats.name.clone()];
        t_row.extend(normalised(&times));
        time.add_row(t_row);
    }
    println!("{}", quality.render());
    println!("{}", time.render());
}

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let datasets = harness.datasets();
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    if all || which.iter().any(|w| w == "gamma") {
        panel_gamma(&datasets);
    }
    if all || which.iter().any(|w| w == "seed") {
        panel_seed(&datasets);
    }
    if all || which.iter().any(|w| w == "m") {
        panel_m(&datasets);
    }
    if all || which.iter().any(|w| w == "epsilon") {
        panel_epsilon(&datasets);
    }
    println!("paper reference (shape): F1 is sensitive to m (each dataset has a sweet spot and");
    println!("  running time decreases slightly as m grows), mildly sensitive to gamma, and");
    println!("  stable across merge-order seeds (avg variation 1.4 F1) and across epsilon.");
}
