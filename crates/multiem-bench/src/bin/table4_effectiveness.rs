//! Regenerates **Table IV** — matching performance (P / R / F1 / pair-F1) of
//! MultiEM, its ablations and every baseline on every dataset.
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin table4_effectiveness
//! MULTIEM_DATASETS=geo,shopee cargo run --release -p multiem-bench --bin table4_effectiveness
//! ```
//!
//! Methods that would exceed the harness size guards are skipped and marked
//! `\`, mirroring the `-` / `\` entries of the paper.

#![forbid(unsafe_code)]

use multiem_bench::{pct, run_baselines, run_multiem_variants, skip_marker, HarnessConfig};
use multiem_eval::TextTable;

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    for data in harness.datasets() {
        let mut table = TextTable::new(
            format!(
                "Table IV — matching performance on {} ({} entities, {} true tuples)",
                data.stats.name, data.stats.entities, data.stats.tuples
            ),
            &["Method", "P", "R", "F1", "pair-F1"],
        );
        let mut results = run_baselines(&data, &harness);
        results.extend(run_multiem_variants(&data.dataset));
        for r in &results {
            match (&r.report, &r.skipped) {
                (Some(report), _) => {
                    let (p, rec, f1) = report.tuple.as_percentages();
                    let (_, _, pair_f1) = report.pair.as_percentages();
                    table.add_row([
                        r.method.clone(),
                        format!("{p:.1}"),
                        format!("{rec:.1}"),
                        format!("{f1:.1}"),
                        format!("{pair_f1:.1}"),
                    ]);
                }
                (None, Some(reason)) => {
                    table.add_row([
                        r.method.clone(),
                        skip_marker(),
                        skip_marker(),
                        skip_marker(),
                        format!("({reason})"),
                    ]);
                }
                _ => {}
            }
        }
        println!("{}", table.render());
        let _ = pct(0.0);
    }
    println!("paper reference (F1 / pair-F1): MultiEM geo 90.9/97.3, music-20 88.6/95.3,");
    println!("  music-200 82.2/92.3, music-2000 68.7/85.2, person 36.5/73.6, shopee 26.2/43.5;");
    println!(
        "  best baseline per dataset: MSCD-HAC 54.6/90.9 (geo), ALMSER-GB 63.5/87.0 (music-20),"
    );
    println!("  Ditto (c) 55.8/72.6 (music-200), AutoFJ (c) 31.6/31.1-45.0 (shopee).");
}
