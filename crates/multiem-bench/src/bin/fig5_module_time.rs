//! Regenerates **Figure 5** — running time of each MultiEM module
//! (S = attribute selection, R = representation, M = merging, P = pruning),
//! sequentially and with the parallel extension (M(p), P(p)).
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin fig5_module_time
//! ```

#![forbid(unsafe_code)]

use multiem_bench::{run_multiem_grid, HarnessConfig, MultiEmVariant};
use multiem_core::MultiEm;
use multiem_embed::HashedLexicalEncoder;
use multiem_eval::{format_duration, TextTable};

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let mut table = TextTable::new(
        format!(
            "Figure 5 — per-module running time (scale {})",
            harness.scale
        ),
        &[
            "Dataset", "S", "R", "M", "M(p)", "P", "P(p)", "total", "total(p)",
        ],
    );
    for data in harness.datasets() {
        let dataset = &data.dataset;
        // Pick the best configuration once (as the paper's reported runs do),
        // then measure its phases sequentially and in parallel.
        let (_, _, config) = run_multiem_grid(dataset, MultiEmVariant::Full);
        let seq = MultiEm::new(config.clone(), HashedLexicalEncoder::default())
            .run(dataset)
            .expect("sequential run");
        let par_cfg = multiem_core::MultiEmConfig {
            parallel: true,
            ..config
        };
        let par = MultiEm::new(par_cfg, HashedLexicalEncoder::default())
            .run(dataset)
            .expect("parallel run");

        table.add_row([
            data.stats.name.clone(),
            format_duration(seq.phases.attribute_selection),
            format_duration(seq.phases.representation),
            format_duration(seq.phases.merging),
            format_duration(par.phases.merging),
            format_duration(seq.phases.pruning),
            format_duration(par.phases.pruning),
            format_duration(seq.total_time),
            format_duration(par.total_time),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference (shape): merging dominates (~37% of the pipeline on average),");
    println!("  and the parallel extension cuts merging and pruning times substantially on the");
    println!("  larger datasets while adding overhead on the tiny geo dataset.");
}
