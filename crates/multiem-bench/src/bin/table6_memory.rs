//! Regenerates **Table VI** — memory-usage comparison of every method.
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin table6_memory
//! ```
//!
//! Memory is byte-accounted (embeddings, ANN indexes, similarity matrices,
//! candidate graphs) rather than measured as RSS — see DESIGN.md. The shape to
//! compare with the paper: MultiEM's footprint is modest and roughly flat
//! across dataset sizes, while the clustering baselines' dense matrices blow
//! up quadratically and the supervised baselines carry the largest constant
//! overhead.

#![forbid(unsafe_code)]

use multiem_bench::{run_baselines, run_multiem_variants, skip_marker, HarnessConfig};
use multiem_eval::{format_bytes, TextTable};

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let datasets = harness.datasets();

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    let mut headers: Vec<String> = vec!["Method".to_string()];

    for data in &datasets {
        headers.push(data.stats.name.clone());
        let mut results = run_baselines(data, &harness);
        results.extend(run_multiem_variants(&data.dataset));
        for r in results {
            let cell = if r.skipped.is_some() {
                skip_marker()
            } else {
                format_bytes(r.memory_bytes)
            };
            match rows.iter_mut().find(|(m, _)| *m == r.method) {
                Some((_, cells)) => cells.push(cell),
                None => rows.push((r.method.clone(), vec![cell])),
            }
        }
        let expected = headers.len() - 1;
        for (_, cells) in rows.iter_mut() {
            while cells.len() < expected {
                cells.push(skip_marker());
            }
        }
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        format!(
            "Table VI — accounted memory usage (scale {})",
            harness.scale
        ),
        &header_refs,
    );
    for (method, cells) in rows {
        let mut row = vec![method];
        row.extend(cells);
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("paper reference: MultiEM 16.3–18.2G across all datasets (flat); PromptEM/Ditto");
    println!(
        "  30–68G; AutoFJ runs out of memory on the large datasets; MSCD-HAC 2.1G on geo only."
    );
}
