//! Record-storage benchmark: memory-vs-disk backends of the online
//! [`EntityStore`] at equal scale — resident record memory, process RSS and
//! ingest throughput — recorded to `BENCH_store.json` (CI tracks it like
//! `BENCH_serve.json`).
//!
//! ```bash
//! MULTIEM_SCALE=0.2 cargo run --release -p multiem-bench --bin store_memory -- \
//!     --out BENCH_store.json --gate
//! ```
//!
//! `--gate` enforces the storage-layer acceptance bar: the disk backend's
//! resident record memory must be at least 2x below the memory backend's,
//! with ingest throughput within 2x. Matching output equality between the
//! backends is always asserted.

#![forbid(unsafe_code)]

use multiem_core::MultiEmConfig;
use multiem_datagen::benchmark_dataset;
use multiem_embed::{EmbeddingModel, HashedLexicalEncoder};
use multiem_online::{EntityStore, OnlineConfig};
use serde::Value;
use std::time::Instant;

struct BackendRun {
    label: &'static str,
    seconds: f64,
    records: usize,
    tuples: Vec<multiem_table::MatchTuple>,
    resident_bytes: usize,
    spilled_bytes: u64,
    segments: usize,
    approx_bytes: usize,
    rss_after_kb: Option<u64>,
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().unwrap_or_else(|| fail("--out needs a path"))),
            "--gate" => gate = true,
            "--help" | "-h" => {
                println!(
                    "store_memory: mem-vs-disk record storage benchmark\n\n\
                     options:\n\
                     \x20 --out PATH   write BENCH_store.json-style results to PATH\n\
                     \x20 --gate       fail unless disk resident memory is 2x lower\n\
                     \x20              and ingest throughput within 2x of mem\n\n\
                     env: MULTIEM_SCALE (default 0.2)"
                );
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let scale = std::env::var("MULTIEM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.2)
        .clamp(0.0005, 1.0);
    let dataset_name = "music-20";
    println!("store_memory: dataset `{dataset_name}` at MULTIEM_SCALE={scale}");
    let data = benchmark_dataset(dataset_name, scale).expect("known preset");
    let encoder = HashedLexicalEncoder::default();
    println!(
        "  {} records across {} sources, dim {}",
        data.dataset.total_entities(),
        data.dataset.num_sources(),
        encoder.dim()
    );

    let disk_dir = std::env::temp_dir().join(format!("multiem-store-bench-{}", std::process::id()));
    let base = MultiEmConfig {
        m: 0.35,
        ..MultiEmConfig::default()
    };
    let mem_config = OnlineConfig::new(base.clone()).with_all_attributes();
    let disk_config = OnlineConfig::new(base)
        .with_all_attributes()
        .with_disk_storage(disk_dir.display().to_string());

    // Disk first: its resident footprint is measured before the memory
    // backend inflates the process RSS high-water mark.
    let disk = run_backend("disk", disk_config, &data.dataset, encoder.clone());
    let mem = run_backend("mem", mem_config, &data.dataset, encoder);
    std::fs::remove_dir_all(&disk_dir).ok();

    assert_eq!(
        {
            let mut t = disk.tuples.clone();
            t.sort();
            t
        },
        {
            let mut t = mem.tuples.clone();
            t.sort();
            t
        },
        "storage backends must produce identical matching output"
    );
    println!(
        "  matching output identical across backends ({} tuples)",
        mem.tuples.len()
    );

    let resident_ratio = mem.resident_bytes as f64 / disk.resident_bytes.max(1) as f64;
    let slowdown = disk.seconds / mem.seconds.max(1e-9);
    println!(
        "  resident record memory: mem {} vs disk {} ({resident_ratio:.1}x lower on disk)",
        format_bytes(mem.resident_bytes),
        format_bytes(disk.resident_bytes)
    );
    println!(
        "  ingest: mem {:.2}s ({:.0} rec/s) vs disk {:.2}s ({:.0} rec/s); slowdown {slowdown:.2}x",
        mem.seconds,
        mem.records as f64 / mem.seconds.max(1e-9),
        disk.seconds,
        disk.records as f64 / disk.seconds.max(1e-9),
    );

    let report = Value::Map(vec![
        ("dataset".into(), Value::Str(dataset_name.into())),
        ("scale".into(), Value::Float(scale)),
        ("records".into(), Value::UInt(mem.records as u64)),
        ("tuples".into(), Value::UInt(mem.tuples.len() as u64)),
        ("mem".into(), backend_value(&mem)),
        ("disk".into(), backend_value(&disk)),
        ("resident_ratio".into(), Value::Float(resident_ratio)),
        ("ingest_slowdown".into(), Value::Float(slowdown)),
    ]);
    let rendered = serde_json::to_string(&report).expect("report renders");
    if let Some(path) = out_path {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        println!("  wrote {path}");
    }
    println!("{rendered}");

    if gate {
        if resident_ratio < 2.0 {
            fail(&format!(
                "gate: disk resident memory only {resident_ratio:.2}x lower (need >= 2x)"
            ));
        }
        if slowdown > 2.0 {
            fail(&format!(
                "gate: disk ingest {slowdown:.2}x slower than mem (allowed <= 2x)"
            ));
        }
        println!("  gates passed: resident {resident_ratio:.1}x lower, slowdown {slowdown:.2}x");
    }
}

fn run_backend(
    label: &'static str,
    config: OnlineConfig,
    dataset: &multiem_table::Dataset,
    encoder: HashedLexicalEncoder,
) -> BackendRun {
    let mut store = EntityStore::new(config, encoder);
    let start = Instant::now();
    for table in dataset.tables() {
        store.ingest_batch(table).expect("ingest");
    }
    store.refresh();
    let seconds = start.elapsed().as_secs_f64();
    let stats = store.storage_stats();
    let run = BackendRun {
        label,
        seconds,
        records: store.num_records(),
        tuples: store.tuples(),
        resident_bytes: stats.resident_bytes,
        spilled_bytes: stats.spilled_bytes,
        segments: stats.segments,
        approx_bytes: store.approx_bytes(),
        rss_after_kb: read_rss_kb(),
    };
    println!(
        "  [{label}] ingested {} records in {seconds:.2}s; resident {}, spilled {} \
         ({} segments), store total {}",
        run.records,
        format_bytes(run.resident_bytes),
        format_bytes(run.spilled_bytes as usize),
        run.segments,
        format_bytes(run.approx_bytes),
    );
    run
}

fn backend_value(run: &BackendRun) -> Value {
    let throughput = run.records as f64 / run.seconds.max(1e-9);
    Value::Map(vec![
        ("backend".into(), Value::Str(run.label.into())),
        ("ingest_seconds".into(), Value::Float(run.seconds)),
        ("records_per_second".into(), Value::Float(throughput)),
        (
            "resident_record_bytes".into(),
            Value::UInt(run.resident_bytes as u64),
        ),
        ("spilled_bytes".into(), Value::UInt(run.spilled_bytes)),
        ("segments".into(), Value::UInt(run.segments as u64)),
        (
            "store_approx_bytes".into(),
            Value::UInt(run.approx_bytes as u64),
        ),
        (
            "process_rss_kb".into(),
            run.rss_after_kb.map_or(Value::Null, Value::UInt),
        ),
    ])
}

/// Best-effort VmRSS of this process (Linux `/proc`; `None` elsewhere).
/// Informational only — the gates run on byte-accounted resident memory,
/// which is attributable per backend within one process.
fn read_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn format_bytes(bytes: usize) -> String {
    multiem_eval::format_bytes(bytes)
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
