//! Regenerates **Table V** — running-time comparison of every method.
//!
//! ```bash
//! MULTIEM_SCALE=0.05 cargo run --release -p multiem-bench --bin table5_runtime
//! ```
//!
//! Wall-clock runtimes are measured on this machine and are therefore not the
//! paper's absolute numbers; the comparison to look at is the *relative*
//! ordering (MultiEM and MultiEM (parallel) orders of magnitude below the
//! pairwise / chain extensions and the clustering baselines, which are skipped
//! entirely once the dataset exceeds their size guard — the analogue of the
//! paper's 7-day timeouts).

#![forbid(unsafe_code)]

use multiem_bench::{run_baselines, run_multiem_variants, skip_marker, HarnessConfig};
use multiem_eval::{format_duration, TextTable};

fn main() {
    let harness = HarnessConfig::from_env();
    harness.announce();
    let datasets = harness.datasets();

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    let mut headers: Vec<String> = vec!["Method".to_string()];

    for data in &datasets {
        headers.push(data.stats.name.clone());
        let mut results = run_baselines(data, &harness);
        results.extend(run_multiem_variants(&data.dataset));
        for r in results {
            let cell = if r.skipped.is_some() {
                skip_marker()
            } else {
                format_duration(r.runtime)
            };
            match rows.iter_mut().find(|(m, _)| *m == r.method) {
                Some((_, cells)) => cells.push(cell),
                None => rows.push((r.method.clone(), vec![cell])),
            }
        }
        // Pad methods missing from this dataset.
        let expected = headers.len() - 1;
        for (_, cells) in rows.iter_mut() {
            while cells.len() < expected {
                cells.push(skip_marker());
            }
        }
    }

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        format!("Table V — running time (scale {})", harness.scale),
        &header_refs,
    );
    for (method, cells) in rows {
        let mut row = vec![method];
        row.extend(cells);
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("paper reference: MultiEM 6.1s (geo) … 1.8h (person); baselines minutes-to-hours or");
    println!("  unable to finish within 7 days on the large datasets (`\\`).");
}
