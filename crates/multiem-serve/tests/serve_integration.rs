//! End-to-end tests of the serving layer: loopback HTTP, kill-and-restart
//! WAL durability (memory and disk record storage), delta checkpoints,
//! ingest backpressure, multi-threaded ingestion, and the event-driven
//! multiplexer (slow clients, idle keep-alive fleets larger than the worker
//! pool, malformed requests, graceful shutdown, segment GC).

use multiem_embed::HashedLexicalEncoder;
use multiem_serve::http::{read_response, HttpClient};
use multiem_serve::{MatchServer, ServeConfig, ServerHandle, ShardedEntityStore, StorageBackend};
use multiem_table::{Record, Schema};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "multiem-serve-it-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(config: ServeConfig) -> (ServerHandle, String) {
    let server = MatchServer::bind(config, HashedLexicalEncoder::default(), "127.0.0.1:0")
        .expect("server binds");
    let addr = server.local_addr().unwrap().to_string();
    (server.spawn().expect("server spawns"), addr)
}

fn post_records(client: &mut HttpClient, titles: &[&str]) -> String {
    let records: Vec<String> = titles.iter().map(|t| format!("[\"{t}\"]")).collect();
    let body = format!("{{\"records\":[{}]}}", records.join(","));
    let (status, response) = client.request("POST", "/records", Some(&body)).unwrap();
    assert_eq!(status, 200, "ingest failed: {response}");
    response
}

fn get_stats(client: &mut HttpClient) -> String {
    let (status, body) = client.request("GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    body
}

fn match_title(client: &mut HttpClient, title: &str) -> String {
    let body = format!("{{\"record\":[\"{title}\"]}}");
    let (status, response) = client.request("POST", "/match", Some(&body)).unwrap();
    assert_eq!(status, 200, "match failed: {response}");
    response
}

/// The store-state part of a stats body: everything before the per-process
/// `"requests"` counter, which legitimately differs across server lifetimes.
fn store_part(stats: &str) -> &str {
    let end = stats
        .find(",\"requests\"")
        .expect("stats has requests field");
    &stats[..end]
}

/// Pull `"records":N` style counters out of a stats body without a full JSON
/// parser dependency in the test.
fn counter(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = stats.find(&needle).unwrap_or_else(|| {
        panic!("stats body lacks {name}: {stats}");
    }) + needle.len();
    stats[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric counter")
}

#[test]
fn loopback_http_roundtrip() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    // Liveness.
    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));
    assert!(body.contains("\"durable\":false"));

    // Ingest three records; two are near-duplicates.
    let response = post_records(
        &mut client,
        &[
            "golden heart river",
            "makita drill 18v",
            "golden heart river live",
        ],
    );
    assert!(response.contains("\"ingested\":3"));
    assert!(
        response.contains("\"matched\":true"),
        "the near-duplicate should merge: {response}"
    );

    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 3);
    assert_eq!(counter(&stats, "tuples"), 1);

    // Read-only match finds the river cluster.
    let matches = match_title(&mut client, "golden heart river remaster");
    assert!(matches.contains("\"distance\""), "no matches: {matches}");
    let stats_after = get_stats(&mut client);
    assert_eq!(counter(&stats_after, "records"), 3, "match must not ingest");

    // Unknown route and malformed bodies.
    let (status, _) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, body) = client
        .request("POST", "/records", Some("{not json"))
        .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("error"));
    let (status, _) = client
        .request(
            "POST",
            "/records",
            Some("{\"records\":[[\"a\",\"extra\"]]}"),
        )
        .unwrap();
    assert_eq!(status, 400, "arity mismatch must be rejected");
    // Snapshot without a data dir is a client error, not a crash.
    let (status, _) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 400);

    handle.shutdown();
}

#[test]
fn wal_replay_restores_identical_state_after_kill() {
    let dir = temp_dir("kill-restart");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        shards: 3,
        ..ServeConfig::default()
    };

    let titles = [
        "apple iphone 8 plus 64gb silver",
        "sony bravia tv 55",
        "apple iphone 8 plus 64 gb silver",
        "dyson v11 vacuum cleaner",
        "sony bravia television 55 inch",
        "garmin gps watch",
    ];

    // First life: ingest over HTTP, record the observable state, then drop
    // the server WITHOUT checkpointing (the handle shutdown is the kill; no
    // /snapshot is ever issued).
    let (stats_before, matches_before) = {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        post_records(&mut client, &titles);
        let stats = get_stats(&mut client);
        let matches = match_title(&mut client, "apple iphone 8 plus silver");
        handle.shutdown();
        (stats, matches)
    };
    assert_eq!(counter(&stats_before, "records"), titles.len() as u64);
    assert!(counter(&stats_before, "wal_bytes") > 0);

    // Second life: WAL replay must reproduce identical stats and matches.
    {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        assert_eq!(
            store_part(&get_stats(&mut client)),
            store_part(&stats_before)
        );
        assert_eq!(
            match_title(&mut client, "apple iphone 8 plus silver"),
            matches_before
        );

        // Checkpoint, write more, and restart again: snapshot + residual WAL
        // compose.
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"checkpointed\":true"));
        let stats = get_stats(&mut client);
        assert_eq!(counter(&stats, "wal_bytes"), 0, "checkpoint truncates WAL");
        post_records(&mut client, &["bosch washing machine pro"]);
        handle.shutdown();
    }

    // Third life: checkpoint restore + replay of the single post-checkpoint op.
    {
        let (handle, addr) = spawn_server(config);
        let mut client = HttpClient::connect(&addr).unwrap();
        let stats = get_stats(&mut client);
        assert_eq!(counter(&stats, "records"), titles.len() as u64 + 1);
        assert_eq!(
            counter(&stats, "tuples"),
            counter(&stats_before, "tuples"),
            "the lone extra record must not change tuples"
        );
        assert_eq!(
            match_title(&mut client, "apple iphone 8 plus silver"),
            matches_before
        );
        handle.shutdown();
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_checkpoint_is_invisible_until_manifest_commit() {
    let dir = temp_dir("torn-checkpoint");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        shards: 2,
        ..ServeConfig::default()
    };

    // Build a checkpointed state (epoch 1) plus one post-checkpoint WAL op.
    let (stats_before, matches_before) = {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        post_records(
            &mut client,
            &[
                "apple iphone 8 plus",
                "sony bravia tv",
                "apple iphone 8 plus 64gb",
            ],
        );
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"epoch\":1"));
        post_records(&mut client, &["garmin gps watch"]);
        let stats = get_stats(&mut client);
        let matches = match_title(&mut client, "apple iphone 8");
        handle.shutdown();
        (stats, matches)
    };
    assert_eq!(counter(&stats_before, "records"), 4);

    // The checkpoint must have garbage-collected every epoch-0 file.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("-000000."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "epoch-0 files survived: {leftovers:?}"
    );

    // Simulate a second checkpoint that crashed AFTER writing its epoch-2
    // snapshots and WALs but BEFORE the manifest commit: stale epoch-2
    // files exist (missing the post-checkpoint record), manifest still says
    // epoch 1.
    for shard in 0..2 {
        std::fs::copy(
            dir.join(format!("shard-{shard:03}-000001.snap")),
            dir.join(format!("shard-{shard:03}-000002.snap")),
        )
        .unwrap();
        std::fs::write(dir.join(format!("wal-{shard:03}-000002.log")), b"").unwrap();
    }

    // Restart: the torn epoch 2 must be ignored; state == pre-kill state.
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();
    let stats = get_stats(&mut client);
    assert_eq!(store_part(&stats), store_part(&stats_before));
    assert_eq!(match_title(&mut client, "apple iphone 8"), matches_before);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A serve config whose shards spill records to segment files under the
/// data dir, with tiny segments so even small tests exercise sealing.
fn disk_config(dir: &std::path::Path, shards: usize) -> ServeConfig {
    let mut config = ServeConfig {
        data_dir: Some(dir.to_path_buf()),
        shards,
        storage: StorageBackend::Disk,
        ..ServeConfig::default()
    };
    config.online.storage =
        multiem_online::StorageConfig::Disk(multiem_online::DiskStorageConfig {
            segment_records: 4,
            cache_records: 8,
            ..multiem_online::DiskStorageConfig::new(String::new())
        });
    config
}

#[test]
fn disk_backend_kill_and_restart_mid_delta_checkpoint() {
    let dir = temp_dir("disk-kill-restart");
    let config = disk_config(&dir, 3);

    let titles = [
        "apple iphone 8 plus 64gb silver",
        "sony bravia tv 55",
        "apple iphone 8 plus 64 gb silver",
        "dyson v11 vacuum cleaner",
        "sony bravia television 55 inch",
        "garmin gps watch",
        "makita drill 18v",
        "makita drill 18 v cordless",
    ];

    // First life: ingest, delta-checkpoint, ingest more, then die without a
    // second checkpoint — the classic "killed mid-delta-epoch" state: a
    // committed delta checkpoint plus a non-empty WAL on top of it.
    let (stats_before, matches_before) = {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        assert!(client
            .request("GET", "/healthz", None)
            .unwrap()
            .1
            .contains("\"storage\":\"disk\""));
        post_records(&mut client, &titles[..5]);
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"checkpointed\":true"));
        post_records(&mut client, &titles[5..]);
        let stats = get_stats(&mut client);
        let matches = match_title(&mut client, "apple iphone 8 plus silver");
        handle.shutdown();
        (stats, matches)
    };
    assert_eq!(counter(&stats_before, "records"), titles.len() as u64);
    assert!(
        counter(&stats_before, "wal_bytes") > 0,
        "post-checkpoint ops logged"
    );
    assert!(
        counter(&stats_before, "spilled_records") > 0,
        "records spilled to segments"
    );

    // Second life: checkpoint restore (segment index + cluster state) plus
    // WAL replay must reproduce byte-identical store stats and matches.
    {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        assert_eq!(
            store_part(&get_stats(&mut client)),
            store_part(&stats_before),
            "disk-backed restart must restore byte-identical store state"
        );
        assert_eq!(
            match_title(&mut client, "apple iphone 8 plus silver"),
            matches_before
        );
        // Another checkpoint + restart composes.
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        handle.shutdown();
    }
    {
        let (handle, addr) = spawn_server(config);
        let mut client = HttpClient::connect(&addr).unwrap();
        // The second checkpoint truncated the WAL, so compare the cluster
        // state (everything before `wal_bytes`) and the match results.
        let stats = get_stats(&mut client);
        assert_eq!(counter(&stats, "records"), titles.len() as u64);
        assert_eq!(counter(&stats, "tuples"), counter(&stats_before, "tuples"));
        assert_eq!(
            counter(&stats, "clusters"),
            counter(&stats_before, "clusters")
        );
        assert_eq!(counter(&stats, "wal_bytes"), 0, "checkpoint truncated WAL");
        assert_eq!(
            match_title(&mut client, "apple iphone 8 plus silver"),
            matches_before
        );
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_backend_interrupted_delta_checkpoint_is_invisible() {
    let dir = temp_dir("disk-torn-checkpoint");
    let config = disk_config(&dir, 2);

    // Committed epoch 1 plus one post-checkpoint WAL op.
    let (stats_before, matches_before) = {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        post_records(
            &mut client,
            &[
                "apple iphone 8 plus",
                "sony bravia tv",
                "apple iphone 8 plus 64gb",
                "dyson v11 vacuum",
                "makita drill 18v",
            ],
        );
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"epoch\":1"));
        post_records(&mut client, &["garmin gps watch"]);
        let stats = get_stats(&mut client);
        let matches = match_title(&mut client, "apple iphone 8");
        handle.shutdown();
        (stats, matches)
    };

    // Simulate a second delta checkpoint that crashed after writing its
    // epoch-2 shard snapshots and empty WALs but BEFORE the manifest
    // commit. The stale epoch-2 files miss the post-checkpoint record; the
    // manifest still names epoch 1.
    for shard in 0..2 {
        std::fs::copy(
            dir.join(format!("shard-{shard:03}-000001.snap")),
            dir.join(format!("shard-{shard:03}-000002.snap")),
        )
        .unwrap();
        std::fs::write(dir.join(format!("wal-{shard:03}-000002.log")), b"").unwrap();
    }

    // Restart: the torn epoch 2 is ignored; state == pre-kill state.
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(
        store_part(&get_stats(&mut client)),
        store_part(&stats_before)
    );
    assert_eq!(match_title(&mut client, "apple iphone 8"), matches_before);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delta_checkpoint_skips_clean_shards() {
    let dir = temp_dir("delta-skip");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        shards: 4,
        ..ServeConfig::default()
    };
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();
    post_records(&mut client, &["golden heart river", "makita drill"]);

    // First checkpoint: only the shards that received records snapshot.
    let (status, body) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let written = counter(&body, "snapshots_written");
    assert!(
        (1..=2).contains(&written),
        "only touched shards snapshot: {body}"
    );

    // No writes since: the next checkpoint is a pure epoch roll.
    let (status, body) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "snapshots_written"), 0, "{body}");
    assert!(body.contains("\"epoch\":2"));

    // One more record re-dirties exactly one shard.
    post_records(&mut client, &["golden heart river live"]);
    let (status, body) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "snapshots_written"), 1, "{body}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_ingest_queue_answers_429_with_retry_after() {
    // queue_depth 0: every write is refused (the drain/maintenance mode),
    // which makes the backpressure path deterministic to observe.
    let (handle, addr) = spawn_server(ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, headers, body) = client
        .request_with_headers(
            "POST",
            "/records",
            Some("{\"records\":[[\"golden heart river\"],[\"makita drill\"]]}"),
        )
        .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    let retry_after: u64 = headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .map(|(_, value)| value.parse().expect("numeric Retry-After"))
        .expect("429 must carry Retry-After");
    // Nothing has ever drained on this server, so the adaptive backoff
    // reports the maximum — not the old hardcoded 1 that sent clients
    // straight back into the full queue.
    assert_eq!(retry_after, 30, "no drain history => maximum backoff");

    // Nothing was ingested; the rejection is counted in /stats.
    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 0);
    assert_eq!(counter(&stats, "rejected"), 2);
    assert_eq!(counter(&stats, "queue_depth"), 0);

    // Reads still work while writes shed load.
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn batch_larger_than_queue_depth_gets_terminal_400() {
    // A batch that routes more records to one shard than the queue could
    // ever hold must not 429 (the client would retry it verbatim forever):
    // it gets a terminal 400 telling the client to split.
    let (handle, addr) = spawn_server(ServeConfig {
        queue_depth: 2,
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(&addr).unwrap();
    // Same leading token => same shard for all three.
    let (status, body) = client
        .request(
            "POST",
            "/records",
            Some("{\"records\":[[\"golden one\"],[\"golden two\"],[\"golden three\"]]}"),
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("split the batch"), "{body}");
    // A fitting batch on the same connection still lands.
    let (status, _) = client
        .request(
            "POST",
            "/records",
            Some("{\"records\":[[\"golden one\"],[\"golden two\"]]}"),
        )
        .unwrap();
    assert_eq!(status, 200);
    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 2);
    handle.shutdown();
}

#[test]
fn default_queue_depth_accepts_normal_traffic() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();
    post_records(&mut client, &["golden heart river", "makita drill 18v"]);
    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 2);
    assert_eq!(counter(&stats, "rejected"), 0);
    handle.shutdown();
}

// --------------------------------------------------------------------------
// Record deletion + segment compaction
// --------------------------------------------------------------------------

/// Ingest titles one request at a time, returning each record's
/// `(shard, source, row)` id triple from the response.
fn ingest_with_ids(client: &mut HttpClient, titles: &[&str]) -> Vec<(u64, u64, u64)> {
    let mut ids = Vec::with_capacity(titles.len());
    for title in titles {
        let response = post_records(client, &[title]);
        let value: serde::Value = serde_json::from_str(&response).expect("ingest response JSON");
        let field = |map: &serde::Value, name: &str| -> u64 {
            map.as_map()
                .and_then(|entries| {
                    entries
                        .iter()
                        .find(|(key, _)| key == name)
                        .and_then(|(_, v)| v.as_u64())
                })
                .unwrap_or_else(|| panic!("response lacks {name}: {response}"))
        };
        let results = value
            .as_map()
            .and_then(|entries| {
                entries
                    .iter()
                    .find(|(key, _)| key == "results")
                    .and_then(|(_, v)| v.as_seq())
            })
            .expect("ingest response has results");
        assert_eq!(results.len(), 1);
        ids.push((
            field(&results[0], "shard"),
            field(&results[0], "source"),
            field(&results[0], "row"),
        ));
    }
    ids
}

fn delete_record(client: &mut HttpClient, id: (u64, u64, u64)) -> u16 {
    let (shard, source, row) = id;
    let (status, _) = client
        .request("DELETE", &format!("/records/{shard}-{source}-{row}"), None)
        .unwrap();
    status
}

#[test]
fn delete_endpoints_remove_records_and_count() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();
    let titles = [
        "golden heart river",
        "golden heart river live",
        "makita drill 18v",
        "zanussi fridge compact",
    ];
    let ids = ingest_with_ids(&mut client, &titles);
    assert_eq!(counter(&get_stats(&mut client), "records"), 4);

    // Single delete: the near-duplicate leaves its cluster.
    assert_eq!(delete_record(&mut client, ids[1]), 200);
    // Idempotent: a second delete of the same id is a 404.
    assert_eq!(delete_record(&mut client, ids[1]), 404);
    // Unknown ids and malformed ids answer 404 / 400, not 500.
    assert_eq!(delete_record(&mut client, (0, 0, 999)), 404);
    let (status, _) = client
        .request("DELETE", "/records/not-an-id", None)
        .unwrap();
    assert_eq!(status, 400);

    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 3);
    assert_eq!(counter(&stats, "deleted"), 1);
    assert_eq!(counter(&stats, "tuples"), 0, "the river pair is gone");

    // The deleted record can no longer be matched; its twin still can.
    let matches = match_title(&mut client, "golden heart river remaster");
    let needle = format!(
        "\"shard\":{},\"source\":{},\"row\":{}",
        ids[1].0, ids[1].1, ids[1].2
    );
    assert!(
        !matches.contains(&needle),
        "deleted id resurfaced: {matches}"
    );

    // Batch deletion: one live, one already gone.
    let body = format!(
        "{{\"ids\":[[{},{},{}],[{},{},{}]]}}",
        ids[2].0, ids[2].1, ids[2].2, ids[1].0, ids[1].1, ids[1].2
    );
    let (status, response) = client
        .request("POST", "/records/delete", Some(&body))
        .unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"deleted\":1"), "{response}");
    assert!(response.contains("\"missing\":1"), "{response}");
    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "records"), 2);
    assert_eq!(counter(&stats, "deleted"), 2);

    // Malformed batch bodies are client errors.
    let (status, _) = client
        .request("POST", "/records/delete", Some("{\"ids\":[[1,2]]}"))
        .unwrap();
    assert_eq!(status, 400);
    handle.shutdown();
}

#[test]
fn delete_half_compaction_and_kill_restart() {
    // The end-to-end erasure story: delete half the records, force
    // compaction through a checkpoint, "kill" (drop without a final
    // checkpoint so the post-checkpoint deletes live only in the WAL),
    // restart, and require (a) deleted ids stay gone, (b) survivors match
    // exactly as on a never-killed control server, (c) segment bytes shrink.
    let titles: Vec<String> = (0..24)
        .map(|i| format!("item{i} unique product number {i}"))
        .collect();
    let title_refs: Vec<&str> = titles.iter().map(String::as_str).collect();

    // Run the same op sequence against a server; returns (stats, per-title
    // match responses, spilled bytes before/after the compacting
    // checkpoint). `restart_mid_way` kills and restarts the server between
    // the compacting checkpoint and the WAL-only deletes.
    let run = |dir: &std::path::Path, restart_mid_way: bool| {
        let config = disk_config(dir, 2);
        let mut handle;
        let mut addr;
        (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        let ids = ingest_with_ids(&mut client, &title_refs);

        // Seal every tail so the spilled footprint is comparable.
        let (status, _) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200);
        let spilled_before = counter(&get_stats(&mut client), "spilled_bytes");
        assert!(spilled_before > 0, "records must be spilled to segments");

        // Delete every other row of each shard: every sealed segment drops
        // to ~half live, under the 0.6 compaction threshold.
        let mut deleted: Vec<usize> = Vec::new();
        let mut rows_seen: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (i, id) in ids.iter().enumerate() {
            let nth = rows_seen.entry(id.0).or_insert(0);
            if (*nth).is_multiple_of(2) {
                assert_eq!(delete_record(&mut client, *id), 200, "delete {id:?}");
                deleted.push(i);
            }
            *nth += 1;
        }

        // The compacting checkpoint: dirty shards flush + compact, the
        // manifest commits the rewritten segment index, GC sweeps the
        // superseded files.
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(counter(&body, "compactions") > 0, "{body}");
        assert!(counter(&body, "reclaimed_bytes") > 0, "{body}");
        let spilled_after = counter(&get_stats(&mut client), "spilled_bytes");
        assert!(
            spilled_after * 10 <= spilled_before * 7,
            "compaction must reclaim a solid share of segment bytes \
             ({spilled_before} -> {spilled_after})"
        );

        if restart_mid_way {
            handle.shutdown();
            (handle, addr) = spawn_server(config.clone());
            client = HttpClient::connect(&addr).unwrap();
        }

        // Two more deletes covered only by the WAL (no checkpoint after).
        let survivors: Vec<usize> = (0..ids.len()).filter(|i| !deleted.contains(i)).collect();
        for &i in &survivors[..2] {
            assert_eq!(delete_record(&mut client, ids[i]), 200);
            deleted.push(i);
        }

        if restart_mid_way {
            // Kill again: these last deletes must replay from the WAL.
            handle.shutdown();
            (handle, addr) = spawn_server(config);
            client = HttpClient::connect(&addr).unwrap();
        }

        // Deleted ids are gone for good (a re-delete is a 404)...
        for &i in &deleted {
            assert_eq!(delete_record(&mut client, ids[i]), 404, "id {i} came back");
        }
        // ...and every survivor still matches.
        let matches: Vec<String> = (0..ids.len())
            .filter(|i| !deleted.contains(i))
            .map(|i| match_title(&mut client, title_refs[i]))
            .collect();
        let stats = get_stats(&mut client);
        handle.shutdown();
        (store_part(&stats).to_string(), matches, deleted.len())
    };

    let dir_killed = temp_dir("del-compact-killed");
    let dir_control = temp_dir("del-compact-control");
    let (stats_killed, matches_killed, deleted_killed) = run(&dir_killed, true);
    let (stats_control, matches_control, deleted_control) = run(&dir_control, false);
    assert_eq!(deleted_killed, deleted_control);
    assert_eq!(
        stats_killed, stats_control,
        "restarted store state must be byte-identical to the never-killed run"
    );
    assert_eq!(
        matches_killed, matches_control,
        "survivors must match identically after kill-restart"
    );
    std::fs::remove_dir_all(&dir_killed).ok();
    std::fs::remove_dir_all(&dir_control).ok();
}

#[test]
fn deleted_counters_survive_kill_restart() {
    // `deleted`, `compactions`, `reclaimed_bytes` and `segments_deleted`
    // are persisted: after a checkpoint + restart the /stats counters must
    // not go backwards (they used to reset to zero on restore).
    let dir = temp_dir("counter-persist");
    let config = disk_config(&dir, 2);
    let (before, after) = {
        let (handle, addr) = spawn_server(config.clone());
        let mut client = HttpClient::connect(&addr).unwrap();
        let titles: Vec<String> = (0..16)
            .map(|i| format!("obj{i} padded title {i}"))
            .collect();
        let title_refs: Vec<&str> = titles.iter().map(String::as_str).collect();
        let ids = ingest_with_ids(&mut client, &title_refs);
        // Seal everything, then hollow out every segment (alternating rows
        // per shard) so the next checkpoint must compact.
        let (status, _) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200);
        let mut rows_seen: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for id in &ids {
            let nth = rows_seen.entry(id.0).or_insert(0);
            if (*nth).is_multiple_of(2) {
                assert_eq!(delete_record(&mut client, *id), 200);
            }
            *nth += 1;
        }
        let (status, body) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(counter(&body, "compactions") > 0, "{body}");

        // That checkpoint's post-commit GC bumped `segments_deleted` after
        // its own snapshot was written. Dirty every shard with one more
        // insert, then checkpoint again so the swept counts persist too.
        let mut dirtied = std::collections::BTreeSet::new();
        for i in 0..32 {
            let filler = format!("filler{i} spare entry");
            let id = ingest_with_ids(&mut client, &[&filler]);
            dirtied.insert(id[0].0);
            if dirtied.len() == 2 {
                break;
            }
        }
        assert_eq!(dirtied.len(), 2, "fillers must dirty both shards");
        let (status, _) = client.request("POST", "/snapshot", None).unwrap();
        assert_eq!(status, 200);

        let stats = get_stats(&mut client);
        handle.shutdown();

        let (handle, addr) = spawn_server(config);
        let mut client = HttpClient::connect(&addr).unwrap();
        let restored = get_stats(&mut client);
        handle.shutdown();
        (stats, restored)
    };
    for name in [
        "deleted",
        "compactions",
        "reclaimed_bytes",
        "segments_deleted",
    ] {
        assert_eq!(
            counter(&before, name),
            counter(&after, name),
            "{name} went backwards across restart:\n{before}\n{after}"
        );
    }
    assert!(counter(&after, "compactions") > 0);
    assert!(counter(&after, "segments_deleted") > 0);
    std::fs::remove_dir_all(&dir).ok();
}

// --------------------------------------------------------------------------
// Event-driven multiplexer: slow clients, idle fleets, malformed requests,
// graceful shutdown, segment GC
// --------------------------------------------------------------------------

/// Send `pieces` over a raw socket with a pause between each, then read the
/// response — the server's incremental parser must reassemble the request
/// no matter where the fragmentation falls.
fn trickle(addr: &str, pieces: &[&[u8]], pause: Duration) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for piece in pieces {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(pause);
    }
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader).unwrap();
    (status, body)
}

#[test]
fn header_split_across_reads_parses_fine() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let (status, body) = trickle(
        &addr,
        &[
            b"GET /hea",
            b"lthz HT",
            b"TP/1.1\r\nHo",
            b"st: trickle\r\n",
            b"\r\n",
        ],
        Duration::from_millis(20),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""));
    handle.shutdown();
}

#[test]
fn body_trickled_byte_by_byte_parses_fine() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let body_bytes = b"{\"records\":[[\"golden heart river\"]]}";
    let head = format!(
        "POST /records HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body_bytes.len()
    );
    let mut pieces: Vec<&[u8]> = vec![head.as_bytes()];
    pieces.extend(body_bytes.chunks(1));
    let (status, response) = trickle(&addr, &pieces, Duration::from_millis(2));
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"ingested\":1"), "{response}");

    // The trickled record actually landed.
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(counter(&get_stats(&mut client), "records"), 1);
    handle.shutdown();
}

#[test]
fn slow_client_does_not_block_other_connections() {
    // One worker: under the old thread-per-connection front end, a client
    // holding the worker mid-request starved everyone else. The reactor
    // parses incrementally on an I/O thread, so the slow sender costs no
    // worker until its request completes.
    let (handle, addr) = spawn_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    let slow_body = b"{\"records\":[[\"slow sender\"]]}";
    let (first, rest) = slow_body.split_at(5);
    let mut slow = TcpStream::connect(&addr).unwrap();
    slow.write_all(
        format!(
            "POST /records HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            slow_body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    slow.write_all(first).unwrap();
    slow.flush().unwrap();

    // While the slow request dangles, fast clients cycle freely.
    let mut fast = HttpClient::connect(&addr).unwrap();
    for _ in 0..5 {
        let (status, _) = fast.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }
    post_records(&mut fast, &["makita drill 18v"]);

    // Finish the slow request; it still parses and executes.
    slow.write_all(rest).unwrap();
    slow.flush().unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (status, body) = {
        let mut reader = BufReader::new(slow);
        let (status, _, body) = read_response(&mut reader).unwrap();
        (status, body)
    };
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&get_stats(&mut fast), "records"), 2);
    handle.shutdown();
}

#[test]
fn idle_keepalive_connections_far_beyond_workers_all_serve() {
    // 2 workers, 32 keep-alive connections: the old front end pinned one
    // worker per connection, so connections 3..32 would starve forever.
    // With the multiplexer, idle connections cost buffers only.
    const CONNECTIONS: usize = 32;
    let (handle, addr) = spawn_server(ServeConfig {
        workers: 2,
        io_threads: 2,
        ..ServeConfig::default()
    });

    let mut clients: Vec<HttpClient> = (0..CONNECTIONS)
        .map(|_| HttpClient::connect(&addr).unwrap())
        .collect();
    // Two full rounds over every connection, interleaved with long idle
    // stretches for all the others — each request must land.
    for round in 0..2 {
        for (i, client) in clients.iter_mut().enumerate() {
            let title = format!("conn {i} round {round}");
            let body = format!("{{\"records\":[[\"{title}\"]]}}");
            let (status, response) = client.request("POST", "/records", Some(&body)).unwrap();
            assert_eq!(status, 200, "conn {i} round {round}: {response}");
        }
    }
    let stats = get_stats(&mut clients[0]);
    assert_eq!(counter(&stats, "records"), (CONNECTIONS * 2) as u64);
    handle.shutdown();
}

#[test]
fn malformed_request_gets_400_and_the_connection_closes() {
    let (handle, addr) = spawn_server(ServeConfig::default());

    // Garbage that can never become a request: the incremental parser must
    // answer 400 and hang up.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");
    // The server closed the connection after the 400.
    use std::io::Read;
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection must close after a parse error");

    // A bad HTTP version is rejected the same way.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(b"GET / SMTP/3.7\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 400);

    // The server is unharmed.
    let mut client = HttpClient::connect(&addr).unwrap();
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn admin_shutdown_drains_and_flushes_the_wal() {
    let dir = temp_dir("graceful");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        shards: 2,
        // `never` means durability at exit depends entirely on the
        // graceful path's final WAL flush.
        fsync: multiem_serve::FsyncPolicy::Never,
        ..ServeConfig::default()
    };

    let (handle, addr) = spawn_server(config.clone());
    let mut client = HttpClient::connect(&addr).unwrap();
    post_records(&mut client, &["golden heart river", "makita drill 18v"]);

    // The shutdown request itself is served (drain includes it), then the
    // server thread exits on its own.
    let (status, body) = client.request("POST", "/admin/shutdown", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"shutting_down\":true"), "{body}");
    handle.shutdown(); // joins the already-exiting thread

    // New connections are refused once the server is down.
    assert!(
        HttpClient::connect(&addr).is_err()
            || HttpClient::connect(&addr)
                .and_then(|mut c| c.request("GET", "/healthz", None))
                .is_err(),
        "server must stop serving after shutdown"
    );

    // Acknowledged writes survived the graceful exit.
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(counter(&get_stats(&mut client), "records"), 2);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_garbage_collects_orphaned_segments() {
    let dir = temp_dir("segment-gc");
    let config = disk_config(&dir, 2);

    let (handle, addr) = spawn_server(config.clone());
    let mut client = HttpClient::connect(&addr).unwrap();
    post_records(
        &mut client,
        &[
            "apple iphone 8 plus",
            "apple iphone 8 plus 64gb",
            "sony bravia tv",
            "sony bravia television",
            "makita drill 18v",
            "dyson v11 vacuum",
            "garmin gps watch",
            "bosch washing machine",
        ],
    );
    // Seal the tails so the segment dirs exist and hold real files.
    let (status, body) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200, "{body}");

    // Plant orphans a crashed checkpoint could have left behind: a sealed
    // segment beyond the committed index and an interrupted seal's tmp.
    let shard0 = dir.join("segments").join("shard-000");
    assert!(shard0.is_dir(), "disk shards have segment dirs");
    std::fs::write(shard0.join("seg-000099.seg"), b"orphaned payload").unwrap();
    std::fs::write(shard0.join("seg-000050.tmp"), b"torn seal").unwrap();
    // A foreign file must never be touched.
    std::fs::write(shard0.join("KEEP.txt"), b"not ours").unwrap();

    // Dirty a shard so the next checkpoint does real work, then checkpoint:
    // post-commit GC must sweep exactly the two orphans.
    post_records(&mut client, &["apple iphone 8 plus 64 gb silver"]);
    let (status, body) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "segments_deleted"), 2, "{body}");
    assert!(!shard0.join("seg-000099.seg").exists());
    assert!(!shard0.join("seg-000050.tmp").exists());
    assert!(shard0.join("KEEP.txt").exists(), "foreign files survive GC");

    // The counter surfaces in /stats storage counters.
    let stats = get_stats(&mut client);
    assert_eq!(counter(&stats, "segments_deleted"), 2, "{stats}");

    // A restart over the GC'd directory restores cleanly.
    handle.shutdown();
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(counter(&get_stats(&mut client), "records"), 9);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writers_and_readers_lose_nothing() {
    // Direct (in-process) concurrency over the sharded store: writers on
    // distinct records + readers matching throughout, then every insert must
    // be accounted for and match results must be stable.
    let store = ShardedEntityStore::new(
        ServeConfig::default().online,
        Schema::new(["title"]).shared(),
        8,
        HashedLexicalEncoder::default(),
    )
    .unwrap();

    const WRITERS: usize = 4;
    const PER_WRITER: usize = 50;
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let store = &store;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    store
                        .insert(Record::from_texts([format!("writer {writer} item {i}")]))
                        .unwrap();
                }
            });
        }
        // Two readers hammer match_record while writers run; results only
        // need to be well-formed (sorted, bounded), not stable mid-write.
        for _ in 0..2 {
            let store = &store;
            scope.spawn(move || {
                for i in 0..100 {
                    let hits =
                        store.match_record(&Record::from_texts([format!("writer 1 item {i}")]));
                    for pair in hits.windows(2) {
                        assert!(pair[0].1 <= pair[1].1, "merge order broken");
                    }
                }
            });
        }
    });

    let stats = store.stats();
    assert_eq!(stats.records, WRITERS * PER_WRITER, "no lost inserts");
    assert_eq!(stats.shards.len(), 8);

    // Stable read results once writes quiesce.
    let probe = Record::from_texts(["writer 2 item 17"]);
    let first = store.match_record(&probe);
    assert!(!first.is_empty(), "probe should find its own record");
    for _ in 0..10 {
        assert_eq!(store.match_record(&probe), first);
    }
}

// --------------------------------------------------------------------------
// Observability: /metrics exposition, request counters, sampled traces,
// access log, healthz build info, scrape-under-load
// --------------------------------------------------------------------------

fn get_metrics(client: &mut HttpClient) -> String {
    let (status, headers, body) = client
        .request_with_headers("GET", "/metrics", None)
        .unwrap();
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(name, value)| name == "content-type" && value.starts_with("text/plain")),
        "metrics must use the text exposition content type: {headers:?}"
    );
    body
}

/// The value of the first sample line starting with `prefix` (counters and
/// gauges render as plain numbers at end of line).
fn sample(body: &str, prefix: &str) -> f64 {
    body.lines()
        .find(|line| line.starts_with(prefix))
        .unwrap_or_else(|| panic!("no sample starts with {prefix}:\n{body}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric sample value")
}

#[test]
fn metrics_endpoint_counts_requests_and_exports_histograms() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    for i in 0..3 {
        post_records(&mut client, &[&format!("metrics item {i}")]);
    }
    match_title(&mut client, "metrics item 0");
    match_title(&mut client, "metrics item 1");
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    let body = get_metrics(&mut client);
    assert_eq!(
        sample(
            &body,
            "multiem_requests_total{endpoint=\"records\",status=\"2xx\"}"
        ),
        3.0
    );
    assert_eq!(
        sample(
            &body,
            "multiem_requests_total{endpoint=\"match\",status=\"2xx\"}"
        ),
        2.0
    );
    assert_eq!(
        sample(
            &body,
            "multiem_requests_total{endpoint=\"healthz\",status=\"2xx\"}"
        ),
        1.0
    );
    assert_eq!(
        sample(
            &body,
            "multiem_requests_total{endpoint=\"other\",status=\"4xx\"}"
        ),
        1.0
    );
    // Worker-path latencies land in per-endpoint histograms.
    assert_eq!(
        sample(
            &body,
            "multiem_request_duration_seconds_count{endpoint=\"match\"}"
        ),
        2.0
    );
    assert!(
        sample(
            &body,
            "multiem_request_duration_seconds_sum{endpoint=\"records\"}"
        ) > 0.0
    );
    // Per-stage histograms saw the search pipeline.
    assert!(
        sample(
            &body,
            "multiem_stage_duration_seconds_count{stage=\"ann_search\"}"
        ) >= 2.0
    );
    // Ingest/domain counters and build info are exported too.
    assert_eq!(sample(&body, "multiem_ingested_records_total"), 3.0);
    assert_eq!(
        sample(
            &body,
            &format!(
                "multiem_build_info{{version=\"{}\"}}",
                env!("CARGO_PKG_VERSION")
            )
        ),
        1.0
    );
    assert!(sample(&body, "multiem_uptime_seconds") >= 0.0);
    assert!(sample(&body, "multiem_connections_accepted_total") >= 1.0);

    // The scrape itself is counted like any other request.
    let second = get_metrics(&mut client);
    assert!(
        sample(
            &second,
            "multiem_requests_total{endpoint=\"metrics\",status=\"2xx\"}"
        ) >= 1.0
    );
    handle.shutdown();
}

#[test]
fn no_telemetry_keeps_counters_but_drops_histograms() {
    let mut config = ServeConfig::default();
    config.obs.telemetry = false;
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    post_records(&mut client, &["kill switch item a"]);
    post_records(&mut client, &["kill switch item b"]);
    let body = get_metrics(&mut client);
    // Counters are always on...
    assert_eq!(
        sample(
            &body,
            "multiem_requests_total{endpoint=\"records\",status=\"2xx\"}"
        ),
        2.0
    );
    // ...but nothing with measurable cost recorded.
    assert_eq!(
        sample(
            &body,
            "multiem_request_duration_seconds_count{endpoint=\"records\"}"
        ),
        0.0
    );
    handle.shutdown();
}

#[test]
fn sampled_match_trace_sums_exactly_to_access_log_latency() {
    let dir = temp_dir("obs-trace");
    let log_path = dir.join("server.log");
    let access_path = dir.join("access.log");
    let mut config = ServeConfig::default();
    config.obs.trace_sample_rate = 1.0;
    config.obs.log_file = Some(log_path.clone());
    config.obs.access_log = Some(access_path.clone());
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    post_records(
        &mut client,
        &["golden heart river", "makita drill 18v", "dyson v11 vacuum"],
    );
    match_title(&mut client, "golden heart river live");
    handle.shutdown();

    let field = |value: &serde::Value, name: &str| -> Option<serde::Value> {
        value
            .as_map()?
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, v)| v.clone())
    };
    let lines_of = |path: &std::path::Path| -> Vec<serde::Value> {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
            .lines()
            .map(|line| serde_json::from_str(line).expect("log line is JSON"))
            .collect()
    };

    // Every request was sampled; find the /match trace.
    let traces: Vec<serde::Value> = lines_of(&log_path)
        .into_iter()
        .filter(|v| {
            field(v, "event").and_then(|e| e.as_str().map(String::from))
                == Some("trace".to_string())
                && field(v, "path").and_then(|p| p.as_str().map(String::from))
                    == Some("/match".to_string())
        })
        .collect();
    assert_eq!(traces.len(), 1, "exactly one /match request was made");
    let trace = &traces[0];
    let total_ns = field(trace, "total_ns").and_then(|v| v.as_u64()).unwrap();
    let spans = field(trace, "spans").expect("trace has spans");
    let spans = spans.as_map().expect("spans is a map");
    // The pipeline stages are visible by name...
    let span_names: Vec<&str> = spans.iter().map(|(k, _)| k.as_str()).collect();
    for required in ["parse_ns", "ann_search_ns", "respond_ns"] {
        assert!(
            span_names.contains(&required),
            "trace lacks {required}: {span_names:?}"
        );
    }
    // ...the search fanned out over every shard...
    assert_eq!(field(trace, "fan_out").and_then(|v| v.as_u64()), Some(4));
    // ...and the stage durations sum EXACTLY to the request latency (the
    // acceptance bar is within 10%; respond is defined as the residual).
    let span_sum: u64 = spans.iter().filter_map(|(_, v)| v.as_u64()).sum();
    assert_eq!(span_sum, total_ns, "spans must sum to total_ns: {trace:?}");

    // The access log carries the same request with the same latency.
    let request_id = field(trace, "request_id").and_then(|v| v.as_u64()).unwrap();
    let access_lines = lines_of(&access_path);
    let access = access_lines
        .iter()
        .find(|v| field(v, "request_id").and_then(|id| id.as_u64()) == Some(request_id))
        .expect("access log has the /match request");
    assert_eq!(
        field(access, "latency_ns").and_then(|v| v.as_u64()),
        Some(total_ns),
        "access latency must equal the traced total"
    );
    assert_eq!(field(access, "status").and_then(|v| v.as_u64()), Some(200));
    // One access line per worker request: the ingest batch and the match.
    assert_eq!(access_lines.len(), 2, "one access line per worker request");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_and_metrics_expose_uptime_version_and_checkpoint_epoch() {
    let dir = temp_dir("obs-healthz");
    let config = ServeConfig {
        data_dir: Some(dir.clone()),
        shards: 2,
        ..ServeConfig::default()
    };
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"uptime_seconds\":"), "{body}");
    assert!(
        body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "{body}"
    );
    assert!(body.contains("\"checkpoint_epoch\":0"), "{body}");

    post_records(&mut client, &["golden heart river"]);
    let (status, _) = client.request("POST", "/snapshot", None).unwrap();
    assert_eq!(status, 200);

    let (_, body) = client.request("GET", "/healthz", None).unwrap();
    assert!(body.contains("\"checkpoint_epoch\":1"), "{body}");
    let metrics = get_metrics(&mut client);
    assert_eq!(sample(&metrics, "multiem_checkpoint_epoch"), 1.0);
    assert_eq!(sample(&metrics, "multiem_checkpoints_total"), 1.0);
    assert!(sample(&metrics, "multiem_wal_appended_bytes_total") > 0.0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_scrape_stays_responsive_under_write_load() {
    // The scrape path must never wait on shard or WAL locks: while writers
    // hold them continuously, repeated scrapes (served on the I/O fast
    // path) all answer promptly.
    let (handle, addr) = spawn_server(ServeConfig {
        shards: 2,
        workers: 2,
        ..ServeConfig::default()
    });

    std::thread::scope(|scope| {
        let writer_addr = addr.clone();
        scope.spawn(move || {
            let mut client = HttpClient::connect(&writer_addr).unwrap();
            for i in 0..60 {
                let body = format!("{{\"records\":[[\"load item {i}\"]]}}");
                let (status, _) = client.request("POST", "/records", Some(&body)).unwrap();
                assert_eq!(status, 200);
            }
        });
        let mut client = HttpClient::connect(&addr).unwrap();
        for _ in 0..20 {
            let body = get_metrics(&mut client);
            assert!(body.contains("multiem_requests_total"));
        }
    });

    let body = {
        let mut client = HttpClient::connect(&addr).unwrap();
        get_metrics(&mut client)
    };
    assert_eq!(sample(&body, "multiem_ingested_records_total"), 60.0);
    handle.shutdown();
}

#[test]
fn concurrent_http_clients_see_zero_errors() {
    let (handle, addr) = spawn_server(ServeConfig {
        shards: 4,
        workers: 6,
        ..ServeConfig::default()
    });

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = HttpClient::connect(&addr).unwrap();
                for i in 0..PER_CLIENT {
                    let title = format!("client {client_id} product {i}");
                    let body = format!("{{\"records\":[[\"{title}\"]]}}");
                    let (status, response) =
                        client.request("POST", "/records", Some(&body)).unwrap();
                    assert_eq!(status, 200, "write failed: {response}");
                    if i % 5 == 0 {
                        let body = format!("{{\"record\":[\"{title}\"]}}");
                        let (status, _) = client.request("POST", "/match", Some(&body)).unwrap();
                        assert_eq!(status, 200);
                    }
                }
            });
        }
    });

    let mut client = HttpClient::connect(&addr).unwrap();
    let stats = get_stats(&mut client);
    assert_eq!(
        counter(&stats, "records"),
        (CLIENTS * PER_CLIENT) as u64,
        "every concurrent write must land: {stats}"
    );
    handle.shutdown();
}

/// The value of key `name` inside a parsed JSON map (debug surfaces).
fn json_field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
    value
        .as_map()?
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
}

fn get_json(client: &mut HttpClient, path: &str) -> serde::Value {
    let (status, body) = client.request("GET", path, None).unwrap();
    assert_eq!(status, 200, "GET {path}: {body}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("GET {path}: bad JSON {e}: {body}"))
}

#[test]
fn windowed_p99_agrees_with_the_client_observed_p99() {
    use multiem_serve::obs::histogram::{bucket_bound, bucket_width};

    let mut config = ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    };
    // A long window so every sample of this test stays inside it.
    config.obs.window_secs = 300;
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    // Batched ingests cost the server tens of milliseconds each; at that
    // scale one log-linear bucket is ~6% wide, so the fixed dispatch and
    // loopback overhead the client measures on top of the server-side
    // latency (sub-millisecond) cannot push its view past one bucket.
    const REQUESTS: usize = 40;
    const PER_BATCH: usize = 15;
    let mut client_ns: Vec<u64> = (0..REQUESTS)
        .map(|batch| {
            let titles: Vec<String> = (0..PER_BATCH)
                .map(|i| format!("corpus item {} batch {batch}", batch * PER_BATCH + i))
                .collect();
            let refs: Vec<&str> = titles.iter().map(String::as_str).collect();
            let started = std::time::Instant::now();
            post_records(&mut client, &refs);
            started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        })
        .collect();
    client_ns.sort_unstable();
    // Same nearest-rank rule the server's histogram quantile applies.
    let rank = ((REQUESTS - 1) as f64 * 0.99).round() as usize;
    let client_p99 = client_ns[rank];

    let window = get_json(&mut client, "/debug/window");
    assert!(matches!(
        json_field(&window, "enabled"),
        Some(serde::Value::Bool(true))
    ));
    let endpoints = json_field(&window, "endpoints")
        .and_then(serde::Value::as_seq)
        .expect("window has endpoints");
    let records_entry = endpoints
        .iter()
        .find(|e| json_field(e, "endpoint").and_then(serde::Value::as_str) == Some("records"))
        .expect("records endpoint visible in the window");
    assert_eq!(
        json_field(records_entry, "count").and_then(serde::Value::as_u64),
        Some(REQUESTS as u64),
        "the window saw exactly the ingests this test issued"
    );
    let server_p99 = json_field(records_entry, "p99_ns")
        .and_then(serde::Value::as_u64)
        .expect("window reports p99_ns");

    // The reported quantile is a bucket's inclusive upper bound; the
    // acceptance bar is agreement within that bucket's width.
    let index = (0..4096)
        .find(|&i| bucket_bound(i) == server_p99)
        .expect("reported p99 is a bucket bound");
    let tolerance = bucket_width(index);
    assert!(
        client_p99.abs_diff(server_p99) <= tolerance,
        "client p99 {client_p99}ns vs windowed p99 {server_p99}ns differs by more than one \
         bucket width ({tolerance}ns)"
    );
    handle.shutdown();
}

#[test]
fn debug_top_names_the_hottest_ingest_source() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();

    // 60 records lead with "zeta"; four decoy sources get 5 each. The
    // source key is the leading title token (the shard-routing token).
    let hot: Vec<String> = (0..60).map(|i| format!("zeta item {i}")).collect();
    let refs: Vec<&str> = hot.iter().map(String::as_str).collect();
    post_records(&mut client, &refs);
    for decoy in ["alpha", "beta", "gamma", "delta"] {
        let titles: Vec<String> = (0..5).map(|i| format!("{decoy} item {i}")).collect();
        let refs: Vec<&str> = titles.iter().map(String::as_str).collect();
        post_records(&mut client, &refs);
    }

    let top = get_json(&mut client, "/debug/top");
    assert!(matches!(
        json_field(&top, "enabled"),
        Some(serde::Value::Bool(true))
    ));
    let hitters = json_field(&top, "sources")
        .and_then(|s| json_field(s, "current"))
        .and_then(serde::Value::as_seq)
        .expect("sources.current present");
    let first = hitters.first().expect("at least one hot source");
    assert_eq!(
        json_field(first, "key").and_then(serde::Value::as_str),
        Some("zeta"),
        "the sketch must name the true hottest source: {hitters:?}"
    );
    // Five distinct sources fit the sketch exactly: no eviction error.
    assert_eq!(
        json_field(first, "count").and_then(serde::Value::as_u64),
        Some(60)
    );
    assert_eq!(
        json_field(first, "error").and_then(serde::Value::as_u64),
        Some(0)
    );
    // Shard traffic is tracked under synthetic shard-N keys.
    let shard_hitters = json_field(&top, "shards")
        .and_then(|s| json_field(s, "current"))
        .and_then(serde::Value::as_seq)
        .expect("shards.current present");
    assert!(
        shard_hitters.iter().all(|h| {
            json_field(h, "key")
                .and_then(serde::Value::as_str)
                .is_some_and(|k| k.starts_with("shard-"))
        }),
        "{shard_hitters:?}"
    );
    handle.shutdown();
}

#[test]
fn readyz_and_debug_surfaces_answer_on_the_fast_path() {
    let mut config = ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    // Thresholds enabled but far from tripping: /readyz must stay 200.
    config.obs.ready_max_backlog = 1_000_000;
    config.obs.ready_max_fsync_ms = 60_000;
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    post_records(&mut client, &["ready item a", "ready item b"]);
    match_title(&mut client, "ready item a");

    let (status, body) = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    assert!(body.contains("\"max_backlog\":1000000"), "{body}");
    assert!(body.contains("\"reasons\":[]"), "{body}");

    // /debug/slow retains the slowest requests with full span breakdowns.
    let slow = get_json(&mut client, "/debug/slow");
    assert!(matches!(
        json_field(&slow, "enabled"),
        Some(serde::Value::Bool(true))
    ));
    let exemplars = json_field(&slow, "exemplars")
        .and_then(serde::Value::as_seq)
        .expect("exemplars present");
    assert!(!exemplars.is_empty(), "worker requests leave exemplars");
    let slowest = &exemplars[0];
    assert!(
        json_field(slowest, "total_ns")
            .and_then(serde::Value::as_u64)
            .is_some_and(|ns| ns > 0),
        "{slowest:?}"
    );
    let spans = json_field(slowest, "spans")
        .and_then(serde::Value::as_map)
        .expect("exemplar carries spans");
    assert!(!spans.is_empty(), "{slowest:?}");

    // /debug/storage answers one entry per shard without touching locks.
    let storage = get_json(&mut client, "/debug/storage");
    for key in ["cache_hits", "cache_misses", "cache_hit_rate", "wal_bytes"] {
        assert!(json_field(&storage, key).is_some(), "storage lacks {key}");
    }
    let shards = json_field(&storage, "shards")
        .and_then(serde::Value::as_seq)
        .expect("storage has shards");
    assert_eq!(shards.len(), 2, "one entry per shard");
    handle.shutdown();
}

#[test]
fn debug_surfaces_disable_cleanly_without_telemetry() {
    let mut config = ServeConfig::default();
    config.obs.telemetry = false;
    let (handle, addr) = spawn_server(config);
    let mut client = HttpClient::connect(&addr).unwrap();

    post_records(&mut client, &["kill switch debug item"]);
    for path in ["/debug/window", "/debug/top", "/debug/slow"] {
        let body = get_json(&mut client, path);
        assert!(
            matches!(
                json_field(&body, "enabled"),
                Some(serde::Value::Bool(false))
            ),
            "{path} must report the analytics layer as off"
        );
    }
    // Liveness and readiness stay up: with no analytics the fsync check is
    // simply skipped, and nothing is backlogged.
    let (status, body) = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    // Storage introspection does not depend on the analytics layer at all.
    let storage = get_json(&mut client, "/debug/storage");
    assert!(json_field(&storage, "shards").is_some());
    handle.shutdown();
}

// --------------------------------------------------------------------------
// HTTP/1.1 pipelining: multiple in-flight requests per connection
// --------------------------------------------------------------------------

#[test]
fn pipelined_requests_trickled_across_buffers_answer_in_order() {
    let (handle, addr) = spawn_server(ServeConfig::default());

    // Three pipelined requests written back-to-back, then re-chunked at
    // boundaries that straddle the seams between them: the incremental
    // parser must recover each request no matter where a read ends, and the
    // responses must come back in request order.
    let ingest = b"{\"records\":[[\"pipelined golden heart\"]]}";
    let mut wire = Vec::new();
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: p\r\n\r\n");
    wire.extend_from_slice(
        format!(
            "POST /records HTTP/1.1\r\nHost: p\r\nContent-Length: {}\r\n\r\n",
            ingest.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(ingest);
    wire.extend_from_slice(b"GET /stats HTTP/1.1\r\nHost: p\r\n\r\n");

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // 7-byte chunks land mid-request-line, mid-header, and mid-body.
    for piece in wire.chunks(7) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "first must be healthz");
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ingested\":1"), "second must be the ingest");
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"records\":1"),
        "third must be stats: {body}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_slow_and_fast_requests_return_in_request_order() {
    // Batching on: a /match parks in the coalescing queue for up to a full
    // window while /healthz answers on the fast path in microseconds. If the
    // reactor wrote responses as they completed, the healthz bytes would
    // overtake the match bytes and corrupt the pipeline; per-connection
    // ordering must hold them back.
    let (handle, addr) = spawn_server(ServeConfig {
        workers: 4,
        batch_window_us: 20_000,
        batch_max: 4,
        ..ServeConfig::default()
    });
    let mut setup = HttpClient::connect(&addr).unwrap();
    post_records(&mut setup, &["golden heart river", "makita drill 18v"]);

    let mut wire = Vec::new();
    let slow = b"{\"record\":[\"golden heart river live\"]}";
    wire.extend_from_slice(
        format!(
            "POST /match HTTP/1.1\r\nHost: p\r\nContent-Length: {}\r\n\r\n",
            slow.len()
        )
        .as_bytes(),
    );
    wire.extend_from_slice(slow);
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: p\r\n\r\n");
    wire.extend_from_slice(b"GET /stats HTTP/1.1\r\nHost: p\r\n\r\n");

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"matches\""),
        "slow match must answer first despite the batch window: {body}"
    );
    assert!(
        body.contains("\"distance\""),
        "the river must match: {body}"
    );
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "then healthz: {body}");
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":2"), "then stats: {body}");
    handle.shutdown();
}

#[test]
fn malformed_request_mid_pipeline_flushes_earlier_responses_then_closes() {
    let (handle, addr) = spawn_server(ServeConfig::default());
    let mut client = HttpClient::connect(&addr).unwrap();
    post_records(&mut client, &["golden heart river"]);

    // Two good requests, then garbage, then another good request that must
    // never be served: the earlier responses flush, the garbage earns a 400,
    // and the connection closes without touching what follows.
    let mut wire = Vec::new();
    wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: p\r\n\r\n");
    wire.extend_from_slice(b"GET /stats HTTP/1.1\r\nHost: p\r\n\r\n");
    wire.extend_from_slice(b"NOT-HTTP GARBAGE\r\n\r\n");
    wire.extend_from_slice(b"POST /records HTTP/1.1\r\nHost: p\r\nContent-Length: 36\r\n\r\n{\"records\":[[\"must never be stored\"]]}");

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(&wire).unwrap();
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":1"), "{body}");
    let (status, _, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 400, "garbage must earn a 400: {body}");
    // After the 400 the connection closes; the trailing ingest is dropped.
    use std::io::Read;
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection must close after the mid-pipeline parse error"
    );
    assert_eq!(
        counter(&get_stats(&mut client), "records"),
        1,
        "the request after the garbage must never execute"
    );
    handle.shutdown();
}
