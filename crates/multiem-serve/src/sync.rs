//! Lock discipline for the serving layer: class-ordered lock wrappers with a
//! `debug_assertions`-gated runtime lock-order sanitizer, plus a
//! poison-tolerant helper for leaf locks.
//!
//! The serving layer's deadlock-freedom argument is a total order on its two
//! blocking lock classes: **shard store locks before WAL locks** (`shard →
//! wal`), everywhere. The static `lock-order` rule in `multiem-lint` checks
//! that order lexically; this module enforces it *dynamically* in debug
//! builds. [`OrderedRwLock`] and [`OrderedMutex`] wrap the std primitives
//! with a declared [`LockClass`]; every acquisition pushes its class onto a
//! thread-local stack and panics if the thread already holds a
//! higher-ranked class. Each integration test that drives the real server
//! therefore doubles as a lock-inversion probe. Release builds compile the
//! tracking away entirely (the token is a zero-sized type and the check is
//! `cfg`'d out).
//!
//! Equal classes are allowed to stack: the checkpoint legitimately holds
//! every shard guard at once (acquired in ascending shard order, which the
//! class rank cannot see but the static rule's ascending-loop idiom covers).
//!
//! Poisoning policy: the data-bearing shard/WAL locks *propagate* poison —
//! a panic mid-mutation leaves state that must not be served, so the
//! wrappers here panic on poison (annotated, deliberate). Leaf locks that
//! only guard self-consistent telemetry values (published stats, analytics
//! windows) use [`lock_unpoisoned`] and keep serving the last value instead.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Take a mutex whose contents stay consistent even if a holder panicked
/// (single-word or copy-updated telemetry values): poisoning carries no
/// information for such locks, so recover the guard instead of propagating.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lock classes in acquisition order: a thread may acquire a class only
/// while holding classes of equal or lower rank. The declared serving-layer
/// order `shard → wal` makes [`LockClass::Shard`] rank below
/// [`LockClass::Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// A shard's `EntityStore` RwLock.
    Shard = 0,
    /// A per-shard WAL mutex.
    Wal = 1,
}

impl LockClass {
    fn name(self) -> &'static str {
        match self {
            LockClass::Shard => "shard",
            LockClass::Wal => "wal",
        }
    }
}

#[cfg(debug_assertions)]
mod sanitizer {
    use super::LockClass;
    use std::cell::RefCell;

    thread_local! {
        /// Classes this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
    }

    /// Record an acquisition *before* blocking on the lock, so an inversion
    /// panics loudly instead of deadlocking silently.
    pub(super) fn acquire(class: LockClass) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&worst) = held.iter().max() {
                assert!(
                    worst <= class,
                    "lock-order inversion: acquiring a {} lock while holding a {} lock; \
                     declared order is shard → wal (held stack: {:?})",
                    class.name(),
                    worst.name(),
                    held
                );
            }
            held.push(class);
        });
    }

    pub(super) fn release(class: LockClass) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }
}

/// RAII token recording one tracked acquisition on the current thread's
/// stack. Zero-sized and inert in release builds.
#[derive(Debug)]
pub struct Held {
    #[cfg(debug_assertions)]
    class: LockClass,
}

impl Held {
    fn new(class: LockClass) -> Self {
        #[cfg(debug_assertions)]
        {
            sanitizer::acquire(class);
            Held { class }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = class;
            Held {}
        }
    }
}

impl Drop for Held {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        sanitizer::release(self.class);
    }
}

/// An `RwLock` with a declared [`LockClass`], order-checked in debug builds.
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    class: LockClass,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` in an RwLock belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Shared acquisition, order-checked.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let held = Held::new(self.class);
        // lint:allow(no-panic-hot-path): deliberate poison propagation — a panic mid-mutation under this data lock leaves state that must not be served
        let guard = self.inner.read().expect("ordered lock poisoned");
        OrderedReadGuard { guard, _held: held }
    }

    /// Exclusive acquisition, order-checked.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let held = Held::new(self.class);
        // lint:allow(no-panic-hot-path): deliberate poison propagation — a panic mid-mutation under this data lock leaves state that must not be served
        let guard = self.inner.write().expect("ordered lock poisoned");
        OrderedWriteGuard { guard, _held: held }
    }

    /// Non-blocking shared acquisition. Untracked: a `try_` acquisition can
    /// never participate in a deadlock cycle, and the fast path relies on it
    /// staying lock-free in the blocking sense.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }
}

// In every guard struct below, `guard` is declared before `_held` so the std
// guard drops (releasing the lock) before the tracking token pops the class
// stack.

/// Shared guard from [`OrderedRwLock::read`].
#[derive(Debug)]
pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard from [`OrderedRwLock::write`].
#[derive(Debug)]
pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A `Mutex` with a declared [`LockClass`], order-checked in debug builds.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` in a mutex belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Blocking acquisition, order-checked.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let held = Held::new(self.class);
        // lint:allow(no-panic-hot-path): deliberate poison propagation — a panic mid-mutation under this data lock leaves state that must not be served
        let guard = self.inner.lock().expect("ordered lock poisoned");
        OrderedMutexGuard { guard, _held: held }
    }
}

/// Guard from [`OrderedMutex::lock`].
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_order_is_accepted() {
        let shard = OrderedRwLock::new(LockClass::Shard, 1u32);
        let wal = OrderedMutex::new(LockClass::Wal, 2u32);
        let s = shard.write();
        let w = wal.lock();
        assert_eq!(*s + *w, 3);
    }

    #[test]
    fn equal_classes_stack_for_multi_shard_sections() {
        let a = OrderedRwLock::new(LockClass::Shard, 1u32);
        let b = OrderedRwLock::new(LockClass::Shard, 2u32);
        let ga = a.write();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn wal_then_shard_inversion_panics_under_debug_assertions() {
        let shard = OrderedRwLock::new(LockClass::Shard, 1u32);
        let wal = OrderedMutex::new(LockClass::Wal, 2u32);
        let result = std::panic::catch_unwind(|| {
            let _w = wal.lock();
            let _s = shard.read();
        });
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "wal → shard must panic in debug builds");
        } else {
            assert!(result.is_ok(), "release builds do not track lock order");
        }
    }

    #[test]
    fn release_unwinds_the_stack_for_later_acquisitions() {
        let shard = OrderedRwLock::new(LockClass::Shard, 1u32);
        let wal = OrderedMutex::new(LockClass::Wal, 2u32);
        {
            let _w = wal.lock();
        }
        // The WAL guard is gone, so a shard acquisition is legal again.
        let _s = shard.read();
        let _w = wal.lock();
    }

    #[test]
    fn try_read_is_untracked_and_nonblocking() {
        let shard = OrderedRwLock::new(LockClass::Shard, 7u32);
        let writer = shard.write();
        assert!(shard.try_read().is_none());
        drop(writer);
        assert_eq!(*shard.try_read().expect("uncontended"), 7);
    }

    #[test]
    fn lock_unpoisoned_recovers_after_a_panicking_holder() {
        let leaf = Mutex::new(41u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = leaf.lock().expect("first take");
            panic!("poison it");
        }));
        let mut g = lock_unpoisoned(&leaf);
        *g += 1;
        assert_eq!(*g, 42);
    }
}
