//! Event-driven connection multiplexer: the serving layer's I/O substrate.
//!
//! The first serving front end pinned one blocking pool worker to every live
//! keep-alive connection, so concurrency beyond `--workers` queued even when
//! every shard was idle. This module replaces that substrate with a small
//! reactor, the same thin-I/O-over-compute-pool split the related VectorDB
//! repo uses:
//!
//! * an **acceptor** thread blocks on the listener and deals new
//!   connections round-robin to the event loops (sockets are switched to
//!   nonblocking mode at accept time);
//! * **N I/O event loops** (`io_threads`) each multiplex *many* nonblocking
//!   `TcpStream`s via readiness polling: every connection owns a
//!   [`RequestParser`] state machine fed from partial reads and an output
//!   buffer drained by partial writes, so 10k idle keep-alive connections
//!   cost buffers, not threads;
//! * fully parsed requests are dispatched to the shared worker
//!   [`ThreadPool`] with [`ThreadPool::execute_then`]; the completion
//!   callback sends the rendered response back to the owning event loop's
//!   channel (which doubles as its wakeup), and the loop queues the bytes
//!   on the connection for writeback.
//!
//! Each connection is **pipelined**: up to [`MAX_PIPELINE`] requests may be
//! in flight at once, so a client that writes a burst of requests without
//! waiting for responses pays one round trip for the whole burst instead of
//! one per request. HTTP/1.1 requires responses in request order, and the
//! worker pool completes them in *any* order, so every dispatched request
//! takes a per-connection sequence number and completions are resequenced:
//! a response whose turn has not come waits in a small pending buffer, and
//! responses are appended to the connection's output buffer strictly in
//! sequence order. `GET` probes the server marks *fast* (liveness/stats)
//! are answered inline on the I/O thread — they take a sequence number like
//! any other request, so they cannot jump the queue ahead of an earlier
//! in-flight request on the same connection. A malformed request mid-
//! pipeline is sequenced the same way: its 400 flushes after every earlier
//! response, then the connection closes.
//!
//! Without `epoll` in `std` (and with `unsafe` forbidden workspace-wide),
//! readiness is discovered by polling: a loop that made progress spins
//! again immediately; an idle loop parks on its channel with an
//! exponentially backed-off timeout (200 µs → 10 ms), so active periods add
//! microseconds of latency while idle fleets of connections cost a few
//! wakeups per second. Worker completions land on the channel and wake the
//! loop instantly. A connection with queued work — unflushed response bytes
//! or buffered pipelined requests stalled behind in-flight ones — resets
//! the backoff to its shortest park, so queued work never waits out the
//! 10 ms idle cap.
//!
//! # Graceful shutdown
//!
//! [`Reactor::join`] returns only after a shutdown is signalled (the shared
//! `AtomicBool`) **and** every dispatched request has drained: the acceptor
//! stops, event loops stop parsing new requests but keep accepting worker
//! completions and flushing response bytes, and only when no connection has
//! a request in flight or unflushed output (or [`DRAIN_DEADLINE`] passes)
//! do the loops exit. The server layer then flushes WALs and exits cleanly.

use crate::http::{render_response, Request, RequestParser};
use crate::obs::NetMetrics;
use rayon::ThreadPool;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a shutdown waits for in-flight requests and unflushed responses
/// before abandoning them.
pub const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Read timeout for a request that has started arriving but never
/// completes: the stream position is unknown, so the connection is dropped.
const PARTIAL_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Shortest idle park (one spin after progress); doubles per idle
/// iteration.
const POLL_MIN: Duration = Duration::from_micros(200);
/// Longest idle park while connections are registered.
const POLL_MAX: Duration = Duration::from_millis(10);
/// Idle park with no connections at all (only channel traffic can matter).
const POLL_EMPTY: Duration = Duration::from_millis(50);

/// Bytes read per `read` call on a ready connection.
const READ_CHUNK: usize = 16 << 10;

/// Per-connection cap on pipelined requests in flight (dispatched but not
/// yet sequenced into the output buffer). Reads pause at the cap, so a
/// connection's parser buffer and pending-response memory stay bounded no
/// matter how deep the client pipelines.
pub const MAX_PIPELINE: usize = 32;

/// The worker-pool request handler: consumes a parsed request plus the
/// instant the I/O loop dispatched it (the difference to the handler's own
/// entry time is the trace's `queue_wait` span), returns the rendered
/// response bytes and whether to close the connection afterwards.
pub type Handler = dyn Fn(Request, Instant) -> (Vec<u8>, bool) + Send + Sync;

/// Inline fast-path handler, run on the I/O thread itself: return `Some`
/// for requests that must stay responsive when every worker is busy
/// (liveness probes). Must not block.
pub type FastHandler = dyn Fn(&Request) -> Option<(Vec<u8>, bool)> + Send + Sync;

/// Messages delivered to an event loop's channel (which is also its waker).
enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Accept(TcpStream),
    /// A worker finished request `seq` for connection `slot` (guarded by
    /// `generation` against slot reuse).
    Response {
        slot: usize,
        generation: u64,
        seq: u64,
        bytes: Vec<u8>,
        close: bool,
    },
    /// Bare wakeup (shutdown nudge).
    Wake,
}

/// The multiplexer: acceptor + event-loop threads. See the [module
/// docs](self).
pub struct Reactor {
    acceptor: Option<JoinHandle<()>>,
    loops: Vec<JoinHandle<()>>,
}

impl Reactor {
    /// Spawn the acceptor and `io_threads` event loops over `listener`.
    /// Parsed requests run on `pool` through `handler`; `fast` requests are
    /// answered inline. Setting `shutdown` and poking the listener with a
    /// connect (to unblock the acceptor) begins the drain; the acceptor
    /// relays the wakeup to every event loop on its way out.
    pub fn start(
        listener: TcpListener,
        io_threads: usize,
        pool: Arc<ThreadPool>,
        handler: Arc<Handler>,
        fast: Arc<FastHandler>,
        shutdown: Arc<AtomicBool>,
        net_metrics: NetMetrics,
    ) -> io::Result<Self> {
        let io_threads = io_threads.max(1);
        let mut senders = Vec::with_capacity(io_threads);
        let mut loops = Vec::with_capacity(io_threads);
        for i in 0..io_threads {
            let (tx, rx) = mpsc::channel::<LoopMsg>();
            let event_loop = EventLoop {
                rx,
                tx: tx.clone(),
                conns: Vec::new(),
                free: Vec::new(),
                next_generation: 0,
                pool: Arc::clone(&pool),
                handler: Arc::clone(&handler),
                fast: Arc::clone(&fast),
                shutdown: Arc::clone(&shutdown),
                drain_deadline: None,
                net_metrics: net_metrics.clone(),
            };
            senders.push(tx);
            loops.push(
                std::thread::Builder::new()
                    .name(format!("multiem-io-{i}"))
                    .spawn(move || event_loop.run())?,
            );
        }

        let accept_txs = senders.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("multiem-accept".into())
            .spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Round-robin deal; a closed loop (shutdown race) just
                    // drops the connection.
                    let _ = accept_txs[next % accept_txs.len()].send(LoopMsg::Accept(stream));
                    next += 1;
                }
                // The shutdown signaller unblocked this thread with a
                // self-connect; pass the wakeup on so parked event loops
                // begin their drain immediately instead of at the next
                // poll tick.
                for tx in &accept_txs {
                    let _ = tx.send(LoopMsg::Wake);
                }
            })?;

        Ok(Self {
            acceptor: Some(acceptor),
            loops,
        })
    }

    /// Block until the acceptor and every event loop exit (which they do
    /// once shutdown is signalled and in-flight work has drained).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending response bytes (`written..` not yet on the wire). Responses
    /// are appended strictly in request order; the buffer is compacted once
    /// fully flushed (capacity is kept for reuse).
    outbuf: Vec<u8>,
    written: usize,
    /// Sequence number the next dispatched request takes.
    next_seq: u64,
    /// Sequence number the next response appended to `outbuf` must carry;
    /// completions arriving out of order wait in `pending`.
    flushed_seq: u64,
    /// Out-of-order completions `(seq, bytes, close)` waiting for their
    /// turn. At most [`MAX_PIPELINE`] entries; scanned linearly.
    pending: Vec<(u64, Vec<u8>, bool)>,
    /// No further requests will be parsed from this connection (the peer
    /// sent `Connection: close`, or a malformed request was rejected).
    /// Responses already in flight still flush in order.
    stopped: bool,
    /// Close once `outbuf` drains.
    close_after: bool,
    /// Peer closed its write half; serve what is queued, then drop.
    read_closed: bool,
    /// Guards stale completions after slot reuse.
    generation: u64,
    /// When the currently-buffered partial request started arriving.
    partial_since: Option<Instant>,
}

impl Conn {
    fn has_pending_output(&self) -> bool {
        self.written < self.outbuf.len()
    }

    /// Requests dispatched whose responses are not yet sequenced into
    /// `outbuf` (including completions parked in `pending`).
    fn inflight(&self) -> usize {
        (self.next_seq - self.flushed_seq) as usize
    }
}

struct EventLoop {
    rx: Receiver<LoopMsg>,
    /// Kept alive so `rx` never disconnects; cloned into worker completions.
    tx: Sender<LoopMsg>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    pool: Arc<ThreadPool>,
    handler: Arc<Handler>,
    fast: Arc<FastHandler>,
    shutdown: Arc<AtomicBool>,
    drain_deadline: Option<Instant>,
    net_metrics: NetMetrics,
}

impl EventLoop {
    fn run(mut self) {
        let mut idle_iters = 0u32;
        loop {
            let mut progress = false;
            while let Ok(msg) = self.rx.try_recv() {
                progress |= self.handle(msg);
            }
            progress |= self.poll_conns();

            if self.shutdown.load(Ordering::SeqCst) {
                let deadline = *self
                    .drain_deadline
                    .get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
                if self.drained() || Instant::now() >= deadline {
                    break;
                }
            }

            if progress {
                idle_iters = 0;
                continue;
            }
            // A connection with queued work — unflushed response bytes, or
            // buffered pipelined requests stalled behind in-flight ones —
            // must never wait out the exponential backoff; reset to the
            // shortest park so it is revisited immediately.
            if self.has_queued_work() {
                idle_iters = 0;
            }
            idle_iters = idle_iters.saturating_add(1);
            let park = if self.live_conns() == 0 && !self.shutdown.load(Ordering::SeqCst) {
                POLL_EMPTY
            } else {
                backoff(idle_iters)
            };
            match self.rx.recv_timeout(park) {
                Ok(msg) => {
                    if self.handle(msg) {
                        idle_iters = 0;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Shutdown: anything still open is past the drain deadline.
        for conn in self.conns.iter_mut().filter_map(Option::take) {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.net_metrics.closed.inc();
        }
    }

    fn live_conns(&self) -> usize {
        self.conns.len() - self.free.len()
    }

    /// Whether any connection has work the loop itself must push forward
    /// (as opposed to waiting on the peer or on a worker completion, both
    /// of which produce their own wakeups).
    fn has_queued_work(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .any(|c| c.has_pending_output() || (c.inflight() > 0 && !c.parser.is_empty()))
    }

    /// Whether every connection is quiescent (no request in flight, no
    /// unflushed response bytes) — the condition for a clean shutdown.
    fn drained(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .all(|c| c.inflight() == 0 && !c.has_pending_output())
    }

    fn handle(&mut self, msg: LoopMsg) -> bool {
        match msg {
            LoopMsg::Wake => false,
            LoopMsg::Accept(stream) => {
                if self.shutdown.load(Ordering::SeqCst) {
                    return false; // refused at the door during drain
                }
                self.net_metrics.accepted.inc();
                self.next_generation += 1;
                let conn = Conn {
                    stream,
                    parser: RequestParser::new(),
                    outbuf: Vec::new(),
                    written: 0,
                    next_seq: 0,
                    flushed_seq: 0,
                    pending: Vec::new(),
                    stopped: false,
                    close_after: false,
                    read_closed: false,
                    generation: self.next_generation,
                    partial_since: None,
                };
                match self.free.pop() {
                    Some(slot) => self.conns[slot] = Some(conn),
                    None => self.conns.push(Some(conn)),
                }
                true
            }
            LoopMsg::Response {
                slot,
                generation,
                seq,
                bytes,
                close,
            } => {
                {
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        return false; // connection died while the worker ran
                    };
                    if conn.generation != generation {
                        return false; // stale completion for a recycled slot
                    }
                }
                self.complete(slot, seq, bytes, close);
                self.service(slot);
                true
            }
        }
    }

    /// Sequence one finished request's response into connection `slot`'s
    /// output buffer. A completion whose turn has not come yet waits in the
    /// pending buffer; whenever the next-expected response is available,
    /// it (and any directly following ones) is appended, so pipelined
    /// responses always leave in request order.
    fn complete(&mut self, slot: usize, seq: u64, bytes: Vec<u8>, close: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.pending.push((seq, bytes, close));
        while let Some(pos) = conn
            .pending
            .iter()
            .position(|(s, _, _)| *s == conn.flushed_seq)
        {
            let (_, bytes, close) = conn.pending.swap_remove(pos);
            if !conn.has_pending_output() {
                conn.outbuf.clear();
                conn.written = 0;
            }
            conn.outbuf.extend_from_slice(&bytes);
            if close {
                conn.close_after = true;
                conn.stopped = true;
            }
            conn.flushed_seq += 1;
        }
    }

    /// Drive every connection once: flush writes, read what is ready, parse
    /// and dispatch. Returns whether any byte moved.
    fn poll_conns(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                progress |= self.service(slot);
            }
        }
        progress
    }

    /// Advance one connection's state machine as far as it can go without
    /// blocking: flush, read, parse, dispatch — looping so every complete
    /// pipelined request in the buffer dispatches on this tick (up to the
    /// in-flight cap). May drop the connection.
    fn service(&mut self, slot: usize) -> bool {
        let mut progress = false;
        loop {
            let draining = self.shutdown.load(Ordering::SeqCst);
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return progress;
            };
            let (moved, action) = advance(conn, draining);
            progress |= moved;
            match action {
                Action::Keep => return progress,
                Action::Close => {
                    self.close(slot);
                    return progress;
                }
                Action::Dispatch(request) => {
                    let (seq, generation) = {
                        // `advance` just borrowed this slot, so it is live;
                        // stay panic-free anyway — a vacated slot simply ends
                        // the connection's tick instead of killing the loop.
                        let Some(conn) = self.conns[slot].as_mut() else {
                            return progress;
                        };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        if request.close {
                            // `Connection: close`: no request after this one
                            // will be answered, so stop parsing now.
                            conn.stopped = true;
                        }
                        (seq, conn.generation)
                    };
                    if let Some((bytes, close)) = (self.fast)(&request) {
                        // Inline fast-path response: completes immediately,
                        // but still takes its sequenced turn behind earlier
                        // in-flight requests on this connection.
                        self.complete(slot, seq, bytes, close);
                        progress = true;
                        continue;
                    }
                    let tx = self.tx.clone();
                    let handler = Arc::clone(&self.handler);
                    let dispatched = Instant::now();
                    self.pool.execute_then(
                        move || handler(request, dispatched),
                        move |(bytes, close)| {
                            // The loop may be gone past the drain deadline;
                            // nothing to do with the response then.
                            let _ = tx.send(LoopMsg::Response {
                                slot,
                                generation,
                                seq,
                                bytes,
                                close,
                            });
                        },
                    );
                    progress = true;
                    continue; // keep parsing pipelined requests behind it
                }
                Action::Reject(msg) => {
                    // Terminal parse error mid-pipeline: the 400 takes the
                    // next sequence number, so every earlier response still
                    // flushes (in order) before the connection closes.
                    let seq = {
                        // Same defensive shape as the dispatch arm above.
                        let Some(conn) = self.conns[slot].as_mut() else {
                            return progress;
                        };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.stopped = true;
                        seq
                    };
                    let body = error_body(&msg);
                    let bytes = render_response(400, "Bad Request", &body, true, &[]);
                    self.complete(slot, seq, bytes, true);
                    progress = true;
                    continue;
                }
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.net_metrics.closed.inc();
            self.free.push(slot);
        }
    }
}

/// What [`advance`] decided about a connection.
enum Action {
    /// Still multiplexed; revisit on the next readiness tick.
    Keep,
    /// Drop the connection.
    Close,
    /// A complete request parsed; the caller dispatches it.
    Dispatch(Request),
    /// The parser hit a terminal error; the caller sequences a 400 behind
    /// the in-flight responses and stops parsing.
    Reject(String),
}

/// Drive one connection without blocking: flush pending output, read ready
/// bytes, try to parse the next pipelined request (the caller loops to pull
/// out the rest). Returns whether any byte moved plus the resulting
/// [`Action`].
fn advance(conn: &mut Conn, draining: bool) -> (bool, Action) {
    let mut progress = false;

    // 1. Drain pending response bytes.
    while conn.has_pending_output() {
        match conn.stream.write(&conn.outbuf[conn.written..]) {
            Ok(0) => return (progress, Action::Close),
            Ok(n) => {
                conn.written += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return (progress, Action::Close),
        }
    }
    if conn.has_pending_output() {
        return (progress, Action::Keep); // wire is full; next tick
    }
    if !conn.outbuf.is_empty() {
        conn.outbuf.clear();
        conn.written = 0;
    }
    if conn.close_after {
        return (progress, Action::Close);
    }

    // 2. Read whatever the socket has ready — not during drain (new request
    // bytes are no longer welcome), not past a close/parse-error, and not
    // beyond the pipeline cap (which bounds per-connection parser memory:
    // bytes beyond it wait in the socket buffer).
    if !draining && !conn.read_closed && !conn.stopped && conn.inflight() < MAX_PIPELINE {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.parser.feed(&chunk[..n]);
                    progress = true;
                    if n < chunk.len() {
                        break; // drained the socket buffer
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return (progress, Action::Close),
            }
        }
    }

    // 3. Parse the next pipelined request, up to the in-flight cap. The
    // caller loops, so each buffered request dispatches before the next is
    // pulled out.
    if !draining && !conn.stopped && conn.inflight() < MAX_PIPELINE {
        match conn.parser.try_next() {
            Ok(Some(request)) => {
                conn.partial_since = None;
                return (true, Action::Dispatch(request));
            }
            Ok(None) => {
                if conn.parser.has_partial() {
                    let since = *conn.partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= PARTIAL_REQUEST_TIMEOUT {
                        return (progress, Action::Close);
                    }
                } else {
                    conn.partial_since = None;
                }
            }
            Err(e) => return (true, Action::Reject(e.to_string())),
        }
    }

    // 4. A half-closed connection with nothing left to parse, execute or
    // flush is finished.
    if conn.read_closed && conn.parser.is_empty() && conn.inflight() == 0 {
        return (progress, Action::Close);
    }
    (progress, Action::Keep)
}

/// Exponential idle backoff: 200 µs doubling to the 10 ms cap.
fn backoff(idle_iters: u32) -> Duration {
    let factor = 1u32 << idle_iters.min(7).saturating_sub(1);
    POLL_MIN.saturating_mul(factor).min(POLL_MAX)
}

/// `{"error": msg}` rendered through the workspace JSON codec (same shape
/// the routed error responses use).
fn error_body(msg: &str) -> String {
    let value = serde::Value::Map(vec![(
        "error".to_string(),
        serde::Value::Str(msg.to_string()),
    )]);
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        assert_eq!(backoff(1), POLL_MIN);
        assert!(backoff(2) > backoff(1));
        assert_eq!(backoff(60), POLL_MAX);
    }

    #[test]
    fn error_bodies_escape_cleanly() {
        assert_eq!(error_body("plain"), "{\"error\":\"plain\"}");
        assert!(error_body("a\"b\\c").contains("a\\\"b\\\\c"));
    }
}
