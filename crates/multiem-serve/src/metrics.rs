//! Small latency-report helpers shared by the load generator and tests.

/// The `q`-quantile (0.0..=1.0) of an ascending-sorted slice of nanosecond
/// latencies, in milliseconds. Nearest-rank on the sorted samples: an empty
/// slice reports `0.0`, one sample reports itself for every quantile.
pub fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_sample_percentiles() {
        // 0 samples: every quantile is 0 (the loadgen report must not NaN
        // or panic when a leg issued no requests of some kind).
        assert_eq!(percentile_ms(&[], 0.0), 0.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        // 1 sample: that sample answers every quantile.
        let one = [2_000_000u64]; // 2 ms
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_ms(&one, q), 2.0);
        }
    }

    #[test]
    fn quantiles_pick_the_expected_ranks() {
        // 1..=100 ms as nanoseconds.
        let sorted: Vec<u64> = (1..=100).map(|ms| ms * 1_000_000).collect();
        assert_eq!(percentile_ms(&sorted, 0.0), 1.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        // Nearest-rank rounding: (100 - 1) * 0.5 = 49.5 rounds to index 50.
        assert_eq!(percentile_ms(&sorted, 0.5), 51.0);
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        // Two samples: the halfway quantile rounds up to the later one.
        let two = [1_000_000u64, 3_000_000];
        assert_eq!(percentile_ms(&two, 0.5), 3.0);
        assert_eq!(percentile_ms(&two, 0.49), 1.0);
    }
}
